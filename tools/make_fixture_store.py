"""Regenerate the committed sweep fixture store under ``tests/data/``.

The fixture (``tests/data/sweep_fixture_store/``) is a tiny but complete
artifact store — ``manifest.json``, ``metrics.jsonl``, ``summary.json`` —
committed to the repository so CI can run ``repro reproduce`` against a
store it did not itself create: the self-check asserts that today's engine
still regenerates, bit for bit, rows recorded by an earlier build.  A diff
in this directory is therefore a *signal*, never noise: it means the
simulation's row-determining behaviour changed and the store format's
reproducibility contract needs a deliberate decision.

Usage::

    PYTHONPATH=src python tools/make_fixture_store.py [--check]

``--check`` re-executes the committed store's cells from its manifest
(``reproduce_store``: bitwise comparison, wall-clock columns aside) and
re-derives ``summary.json`` from the committed rows, exiting 1 on any drift
without touching the committed files.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import ModelConfig  # noqa: E402
from repro.experiments.parallel import run_sweep_parallel  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "sweep_fixture_store"


def fixture_sweep() -> SweepSpec:
    """The frozen sweep the fixture records — change it only deliberately."""
    return SweepSpec(
        name="fixture",
        base_config=ModelConfig.square(side=12, horizon=1, tau=0.3),
        taus=(0.3, 0.45),
        densities=(0.4, 0.6),
        n_replicates=2,
        seed=20260808,
    )


def build_store(directory: Path) -> None:
    """Run the fixture sweep with checkpointing into ``directory``."""
    run_sweep_parallel(fixture_sweep(), workers=1, checkpoint_dir=directory)


def check() -> int:
    """Re-execute the committed fixture and assert nothing drifted.

    Two independent probes: ``reproduce_store`` reruns every cell from the
    committed manifest and compares rows bitwise (wall-clock columns
    excluded — they are the one honest source of run-to-run variation), and
    ``write_summary`` on a copy of the committed rows must reproduce the
    committed ``summary.json`` byte for byte.
    """
    import json

    from repro.experiments.checkpoint import write_summary
    from repro.serving import reproduce_store

    if not FIXTURE_DIR.exists():
        print(f"committed fixture missing: {FIXTURE_DIR}", file=sys.stderr)
        return 1
    problems = []
    report = reproduce_store(FIXTURE_DIR)
    if not report.ok or report.counts() != {"match": 4}:
        problems.append(
            "reproduce_store did not match every cell: "
            + json.dumps(report.as_dict()["counts"])
        )
        for result in report.results:
            if result.status != "match":
                problems.append(f"  {result.name}: {result.status} {result.diffs}")
    with tempfile.TemporaryDirectory() as scratch:
        copy = Path(scratch) / "store"
        shutil.copytree(FIXTURE_DIR, copy)
        (copy / "summary.json").unlink()
        regenerated = write_summary(copy).read_bytes()
        if regenerated != (FIXTURE_DIR / "summary.json").read_bytes():
            problems.append("summary.json is not byte-reproducible from the rows")
    for problem in problems:
        print(f"FIXTURE DRIFT: {problem}", file=sys.stderr)
    if problems:
        print(
            "the engine no longer regenerates the committed store; if this "
            "change is intentional, rerun tools/make_fixture_store.py and "
            "commit the refreshed fixture",
            file=sys.stderr,
        )
        return 1
    print("fixture store reproduces bitwise: OK")
    return 0


def main(argv=None) -> int:
    """Entry point: regenerate the fixture in place, or ``--check`` it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-execute the committed fixture and exit 1 on any drift "
        "instead of overwriting it",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    if FIXTURE_DIR.exists():
        shutil.rmtree(FIXTURE_DIR)
    build_store(FIXTURE_DIR)
    names = sorted(p.name for p in FIXTURE_DIR.iterdir())
    print(f"wrote {FIXTURE_DIR} ({', '.join(names)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
