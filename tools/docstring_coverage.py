"""Docstring-coverage gate (a dependency-free stand-in for ``interrogate``).

Walks the given source trees with :mod:`ast`, counts docstrings on modules,
classes and functions, and exits non-zero when coverage falls below the
``--fail-under`` threshold — CI runs it so the documentation surface cannot
rot silently.

Counting rules (matching interrogate's spirit):

* modules, classes, and functions/methods (sync and async) all count;
* private helpers (a leading underscore) still count — this repo documents
  them — but ``__dunder__`` methods are skipped (``__init__`` parameters are
  documented on the class docstring here, as interrogate's
  ``--ignore-init-method`` assumes);
* nested functions are skipped (they are implementation detail);
* an overload/stub body of just ``...``/``pass`` with no docstring is still
  counted as missing, because the gate guards real code here.

Usage::

    python tools/docstring_coverage.py src/repro --fail-under 95 [-v]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def iter_definitions(tree: ast.Module):
    """Yield ``(kind, qualified_name, node)`` for every countable definition."""
    yield "module", "<module>", tree

    def walk(node: ast.AST, prefix: str, depth: int) -> object:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                name = f"{prefix}{child.name}"
                yield "class", name, child
                yield from walk(child, f"{name}.", depth)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                if child.name.startswith("__") and child.name.endswith("__"):
                    continue
                yield "function", name, child
                # Do not descend: nested defs are implementation detail.

    yield from walk(tree, "", 0)


def scan_file(path: Path) -> list[tuple[str, str, bool]]:
    """Return ``(kind, name, documented)`` for every definition in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        (kind, name, ast.get_docstring(node) is not None)
        for kind, name, node in iter_definitions(tree)
    ]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="+", type=Path, help="files or directories to scan")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=95.0,
        help="minimum coverage percentage (default: 95)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list every undocumented definition"
    )
    args = parser.parse_args(argv)

    files: list[Path] = []
    for root in args.roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    if not files:
        print("error: no Python files found", file=sys.stderr)
        return 2

    total = documented = 0
    missing: list[str] = []
    for path in files:
        for kind, name, has_doc in scan_file(path):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(f"{path}:{name} ({kind})")

    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} definitions "
        f"({coverage:.1f}%), threshold {args.fail_under:.1f}%"
    )
    if missing and (args.verbose or coverage < args.fail_under):
        shown = missing if args.verbose else missing[:20]
        for entry in shown:
            print(f"  missing: {entry}")
        if len(shown) < len(missing):
            print(f"  ... and {len(missing) - len(shown)} more (use -v)")
    if coverage < args.fail_under:
        print("FAILED: documentation coverage below threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
