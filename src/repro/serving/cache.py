"""Bounded thread-safe LRU cache with single-flight computation de-duplication.

The query service (:mod:`repro.serving.query`) sits in front of the artifact
store the way an inference cache sits in front of a model: most traffic
repeats a small working set of parameter points, so answers are kept in a
bounded least-recently-used cache and the counters are exported at the HTTP
``/stats`` endpoint.  The implementation is deliberately stdlib-only — an
``OrderedDict`` under one re-entrant lock — because the critical section is a
dict move, far cheaper than the JSON encode that follows it on every request.

Concurrency contract: every public method is atomic under the internal lock.
:meth:`LRUCache.get_or_compute` is **single-flight**: concurrent misses on
the same key share one in-flight computation.  The first caller (the
*leader*) registers a per-key flight and runs ``compute`` outside the lock;
every concurrent caller for the same key (a *follower*) blocks on the
flight's event and receives the leader's value — or the leader's exception —
without computing anything.  Under ``--on-miss compute`` every cache miss is
a full simulation, so N identical concurrent requests must run exactly one.

Counters are exact: every ``get`` is classified as exactly one hit or miss;
every :meth:`~LRUCache.get_or_compute` call as exactly one of hit, miss
(leader) or coalesced (follower); and every capacity displacement as exactly
one eviction.  ``inflight`` is a gauge: the number of leader computations
currently running.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from repro.errors import ConfigurationError, DeadlineExceeded

#: Sentinel distinguishing "absent" from a cached ``None`` value.
_ABSENT = object()

#: The three exact-accounting outcomes of :meth:`LRUCache.get_or_compute`.
GET_OR_COMPUTE_OUTCOMES = ("hit", "miss", "coalesced")


class _Flight:
    """One in-flight computation, shared by its leader and followers."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = _ABSENT
        self.error: Optional[BaseException] = None


class LRUCache:
    """A bounded LRU map with exact hit/miss/eviction/coalesce accounting.

    Reads (:meth:`get`, :meth:`get_or_compute`) refresh recency; writes
    (:meth:`put`) insert or update at most-recent position and evict the
    least-recently-used entry once ``len > capacity``.  ``__contains__`` and
    :meth:`peek` are observational: they touch neither recency nor counters,
    so tests and stats endpoints can inspect the cache without perturbing it.
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or capacity <= 0:
            raise ConfigurationError(
                f"cache capacity must be a positive int, got {capacity!r}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._flights: dict[Hashable, _Flight] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0

    # ------------------------------------------------------------------ reads

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (refreshing recency) or ``default``.

        Counts one hit or one miss.
        """
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: object = None) -> object:
        """Return the cached value without touching recency or counters."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            return default if value is _ABSENT else value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ----------------------------------------------------------------- writes

    def put(self, key: Hashable, value: object) -> None:
        """Insert or update ``key`` at most-recent position, evicting if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], object],
        timeout: Optional[float] = None,
    ) -> tuple[object, str]:
        """Return ``(value, outcome)``, computing once per key across threads.

        ``outcome`` is exactly one of :data:`GET_OR_COMPUTE_OUTCOMES`:

        - ``"hit"`` — the key was cached; no computation.
        - ``"miss"`` — this caller was the flight leader: it ran ``compute``
          outside the lock and cached the result.
        - ``"coalesced"`` — another thread's flight for the same key was
          already running; this caller waited and shares its value.

        A leader's exception propagates to the leader *and* to every
        follower coalesced onto its flight (the flight is then cleared, so a
        later caller retries fresh).  ``timeout`` bounds how long a follower
        waits for the leader; expiry raises
        :class:`~repro.errors.DeadlineExceeded`.  The leader itself is never
        interrupted — its result still lands in the cache.
        """
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is not _ABSENT:
                self._entries.move_to_end(key)
                self._hits += 1
                return value, "hit"
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self._misses += 1
            else:
                leader = False
                self._coalesced += 1
        if not leader:
            if not flight.event.wait(timeout):
                raise DeadlineExceeded(
                    f"timed out after {timeout}s waiting for the in-flight "
                    f"computation of {key!r}"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, "coalesced"
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                flight.error = exc
                self._flights.pop(key, None)
            flight.event.set()
            raise
        self.put(key, value)
        with self._lock:
            flight.value = value
            self._flights.pop(key, None)
        flight.event.set()
        return value, "miss"

    def clear(self) -> None:
        """Drop every entry.  Counters are preserved (they describe traffic)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Consistent snapshot of the counters, occupancy and in-flight gauge."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "coalesced": self._coalesced,
                "inflight": len(self._flights),
            }

    def keys(self) -> list:
        """The cached keys, least- to most-recently used (a copy)."""
        with self._lock:
            return list(self._entries.keys())


def cache_key(
    params: dict[str, object], interpolate: bool, generation: int = 0
) -> tuple[Hashable, ...]:
    """Canonical cache key of one resolved query point.

    Axes are sorted by name so semantically identical queries
    (``"tau=0.4,rho=0.5"`` vs ``"rho=0.5,tau=0.4"``) share an entry;
    ``interpolate`` is part of the key because it changes the answer, and
    ``generation`` is the store-snapshot generation so entries cached
    against a superseded snapshot can never answer for a refreshed one —
    they simply age out of the LRU.
    """
    return tuple(sorted(params.items())) + (bool(interpolate), int(generation))


#: Default capacity of the query service's answer cache.
DEFAULT_CACHE_CAPACITY = 256


def make_query_cache(capacity: Optional[int] = None) -> LRUCache:
    """The query layer's answer cache with the serving default capacity."""
    return LRUCache(DEFAULT_CACHE_CAPACITY if capacity is None else capacity)
