"""Bounded thread-safe LRU cache with observable hit/miss/eviction counters.

The query service (:mod:`repro.serving.query`) sits in front of the artifact
store the way an inference cache sits in front of a model: most traffic
repeats a small working set of parameter points, so answers are kept in a
bounded least-recently-used cache and the counters are exported at the HTTP
``/stats`` endpoint.  The implementation is deliberately stdlib-only — an
``OrderedDict`` under one re-entrant lock — because the critical section is a
dict move, far cheaper than the JSON encode that follows it on every request.

Concurrency contract: every public method is atomic under the internal lock.
:meth:`LRUCache.get_or_compute` runs ``compute`` *outside* the lock, so two
racing readers of a cold key may both compute; the first insert wins and both
see a consistent cache (single-flight de-duplication is not worth a condition
variable for answers that cost milliseconds to recompute and are identical by
construction).  Counters are exact: every ``get`` is classified as exactly
one hit or miss, and every capacity displacement as exactly one eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from repro.errors import ConfigurationError

#: Sentinel distinguishing "absent" from a cached ``None`` value.
_ABSENT = object()


class LRUCache:
    """A bounded LRU map with exact hit/miss/eviction accounting.

    Reads (:meth:`get`, :meth:`get_or_compute`) refresh recency; writes
    (:meth:`put`) insert or update at most-recent position and evict the
    least-recently-used entry once ``len > capacity``.  ``__contains__`` and
    ``peek`` are observational: they touch neither recency nor counters, so
    tests and stats endpoints can inspect the cache without perturbing it.
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or capacity <= 0:
            raise ConfigurationError(
                f"cache capacity must be a positive int, got {capacity!r}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ reads

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (refreshing recency) or ``default``.

        Counts one hit or one miss.
        """
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: object = None) -> object:
        """Return the cached value without touching recency or counters."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            return default if value is _ABSENT else value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ----------------------------------------------------------------- writes

    def put(self, key: Hashable, value: object) -> None:
        """Insert or update ``key`` at most-recent position, evicting if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], object]
    ) -> tuple[object, bool]:
        """Return ``(value, was_hit)``, computing and caching on miss.

        ``compute`` runs outside the lock (see the module docstring for the
        racing-reader contract); on a lost insert race the value computed by
        this caller is still returned — both racers computed the same answer
        by construction — and exactly one miss is counted per caller.
        """
        cached = self.get(key, _ABSENT)
        if cached is not _ABSENT:
            return cached, True
        value = compute()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        """Drop every entry.  Counters are preserved (they describe traffic)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Consistent snapshot of the counters and occupancy."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def keys(self) -> list:
        """The cached keys, least- to most-recently used (a copy)."""
        with self._lock:
            return list(self._entries.keys())


def cache_key(
    params: dict[str, object], interpolate: bool
) -> tuple[Hashable, ...]:
    """Canonical cache key of one resolved query point.

    Axes are sorted by name so semantically identical queries
    (``"tau=0.4,rho=0.5"`` vs ``"rho=0.5,tau=0.4"``) share an entry;
    ``interpolate`` is part of the key because it changes the answer.
    """
    return tuple(sorted(params.items())) + (bool(interpolate),)


#: Default capacity of the query service's answer cache.
DEFAULT_CACHE_CAPACITY = 256


def make_query_cache(capacity: Optional[int] = None) -> LRUCache:
    """The query layer's answer cache with the serving default capacity."""
    return LRUCache(DEFAULT_CACHE_CAPACITY if capacity is None else capacity)
