"""One query endpoint over many sweep artifact stores.

A phase diagram rarely lives in one sweep: different runs cover different
``(rho, tau, w)`` regions, at different resolutions, on different hosts.
:class:`FederatedQueryEngine` serves them as one surface, routing each query
by **parameter coverage**:

1. **Exact match anywhere wins** — if any member store holds a cell whose
   parameters equal the query bit-for-bit, its stored aggregates answer,
   exactly as a single-store engine would.  When several stores hold the
   same point, the deterministic cell rank (params, spec hash, store tag)
   picks one — never storage or registration order.
2. **Interpolation and nearest-cell fall back over the union** — the
   bracketing corners (opt-in bilinear) and the nearest cell are found over
   the union of every member's answerable cells, with the range-normalized
   distance scales computed over that union so the metric is commensurate
   across stores.  Ties break on the same deterministic rank.
3. **Compute-on-miss routes to the owning store** — a computed answer
   inherits its methodology (replicates, budgets, variant) from the member
   store nearest to the query point (deterministic tie-break on the store
   tag), so the simulated point is comparable to the data around it.

The federated engine *is a* :class:`~repro.serving.query.QueryEngine` — it
overrides only the store-access hooks, so every resolution rule, the
single-flight cache, the compute gate and the degradation ladder are
inherited verbatim.  Each union cell is tagged with its member store's
directory, which also surfaces in answers' ``cells`` entries for
observability.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import ServingError
from repro.serving.cache import LRUCache
from repro.serving.lifecycle import ComputeGate
from repro.serving.query import (
    QueryEngine,
    _cell_rank,
    axis_scales,
    normalized_distance,
)
from repro.serving.store import ArtifactStore, PathLike


class FederatedQueryEngine(QueryEngine):
    """Parameter-point lookups routed across many artifact stores.

    Construction accepts store directories or :class:`ArtifactStore`
    handles; at least one is required, and duplicate directories are
    rejected (a store answering twice would silently double its weight in
    nothing but tie-breaks — almost certainly a CLI typo).  Thread-safety
    matches the base engine: snapshots are read-only after load and the
    cache/gate carry their own locks.
    """

    def __init__(
        self,
        stores: Sequence[Union[ArtifactStore, PathLike]],
        cache: Optional[LRUCache] = None,
        interpolate: bool = False,
        on_miss: str = "error",
        max_distance: Optional[float] = None,
        gate: Optional[ComputeGate] = None,
        generation: int = 0,
    ) -> None:
        members = [
            store
            if isinstance(store, ArtifactStore)
            else ArtifactStore(store)
            for store in stores
        ]
        if not members:
            raise ServingError(
                "a federated engine needs at least one store"
            )
        directories = [str(member.directory) for member in members]
        if len(set(directories)) != len(directories):
            raise ServingError(
                f"duplicate store directories in federation: {directories}"
            )
        # The base engine's single-store surface (``self.store``) points at
        # the first member so single-store code paths (e.g. stats headers)
        # stay meaningful; every resolution hook below uses the full list.
        super().__init__(
            members[0],
            cache=cache,
            interpolate=interpolate,
            on_miss=on_miss,
            max_distance=max_distance,
            gate=gate,
            generation=generation,
        )
        self.stores = members

    # ----------------------------------------------------------- store hooks

    def answer_cells(self) -> list[dict]:
        """The union of every member's answerable cells, store-tagged.

        Tagging happens on shallow copies — member stores cache their
        summaries, and annotating the cached dicts in place would leak the
        tag into single-store engines sharing the same handle.
        """
        union: list[dict] = []
        for member in self.stores:
            tag = str(member.directory)
            for cell in member.answerable_cells():
                tagged = dict(cell)
                tagged["store"] = tag
                union.append(tagged)
        return union

    def _sweep_for_compute(self, point: dict[str, float]):
        """The sweep of the member store that owns the query's region.

        Ownership = the member holding the nearest answerable cell under
        the union-wide normalized metric (deterministic tie-break on the
        store tag); members whose manifest cannot rebuild a sweep are
        skipped.  With no answerable cells anywhere, the first member able
        to rebuild its sweep routes the compute.
        """
        cells = self.answer_cells()
        ordered: list[ArtifactStore] = []
        if cells:
            scales = axis_scales(cells)
            best = min(
                cells,
                key=lambda cell: (
                    normalized_distance(point, cell["params"], scales),
                    _cell_rank(cell),
                ),
            )
            by_tag = {str(member.directory): member for member in self.stores}
            ordered.append(by_tag[best["store"]])
        ordered.extend(
            member for member in self.stores if member not in ordered
        )
        errors: list[str] = []
        for member in ordered:
            try:
                return member.sweep()
            except ServingError as exc:
                errors.append(f"{member.directory}: {exc}")
        raise ServingError(
            "no federation member can rebuild a sweep to compute "
            f"{point} from: " + "; ".join(errors)
        )

    def _store_stats(self) -> dict:
        """Per-member store descriptors plus federation-level counts."""
        members = [
            {
                "directory": str(member.directory),
                "n_cells": len(member.cells()),
                "n_answerable": len(member.answerable_cells()),
            }
            for member in self.stores
        ]
        return {
            "federated": True,
            "n_stores": len(members),
            "n_cells": sum(entry["n_cells"] for entry in members),
            "n_answerable": sum(entry["n_answerable"] for entry in members),
            "generation": self.generation,
            "stores": members,
        }


def build_engine(
    stores: Sequence[Union[ArtifactStore, PathLike]],
    cache: Optional[LRUCache] = None,
    interpolate: bool = False,
    on_miss: str = "error",
    max_distance: Optional[float] = None,
    gate: Optional[ComputeGate] = None,
    generation: int = 0,
) -> QueryEngine:
    """One engine over the given stores: plain for one, federated for many.

    The shared construction point for ``repro query``, ``repro serve`` and
    the refresh poller — all three must build byte-identical engines for a
    given store list so a refreshed snapshot differs from its predecessor
    only by store content and generation.
    """
    stores = list(stores)
    if not stores:
        raise ServingError("no store directories given")
    if len(stores) == 1:
        return QueryEngine(
            stores[0],
            cache=cache,
            interpolate=interpolate,
            on_miss=on_miss,
            max_distance=max_distance,
            gate=gate,
            generation=generation,
        )
    return FederatedQueryEngine(
        stores,
        cache=cache,
        interpolate=interpolate,
        on_miss=on_miss,
        max_distance=max_distance,
        gate=gate,
        generation=generation,
    )
