"""Sweep-as-a-service: the read/query side of the experiment pipeline.

The experiment layer *writes* artifact stores (checkpointed sweeps with a
provenance manifest, raw replicate rows and a ``summary.json`` of per-cell
aggregates).  This package *consumes* them:

- :mod:`repro.serving.store` — :class:`ArtifactStore` (read-side handle),
  :func:`reproduce_store` (bitwise re-execution of recorded cells) and the
  snapshot-to-spec rebuild behind both.
- :mod:`repro.serving.query` — :class:`QueryEngine`: exact / interpolated /
  nearest-cell parameter lookups with an explicit miss policy.
- :mod:`repro.serving.cache` — the bounded thread-safe LRU answer cache
  with exact hit/miss/eviction counters.
- :mod:`repro.serving.http` — the stdlib ``repro serve`` HTTP endpoint.

The split keeps the dependency direction one-way: serving imports the
experiment layer, never the reverse.
"""

from repro.serving.cache import (
    DEFAULT_CACHE_CAPACITY,
    LRUCache,
    cache_key,
    make_query_cache,
)
from repro.serving.http import make_server, serve
from repro.serving.query import (
    QueryEngine,
    axis_scales,
    bilinear_answer,
    normalized_distance,
    parse_query,
)
from repro.serving.store import (
    ArtifactStore,
    CellReproduction,
    ReproduceReport,
    reproduce_store,
    sweep_from_snapshot,
)

__all__ = [
    "ArtifactStore",
    "CellReproduction",
    "DEFAULT_CACHE_CAPACITY",
    "LRUCache",
    "QueryEngine",
    "ReproduceReport",
    "axis_scales",
    "bilinear_answer",
    "cache_key",
    "make_query_cache",
    "make_server",
    "normalized_distance",
    "parse_query",
    "reproduce_store",
    "serve",
    "sweep_from_snapshot",
]
