"""Sweep-as-a-service: the read/query side of the experiment pipeline.

The experiment layer *writes* artifact stores (checkpointed sweeps with a
provenance manifest, raw replicate rows and a ``summary.json`` of per-cell
aggregates).  This package *consumes* them:

- :mod:`repro.serving.store` — :class:`ArtifactStore` (read-side handle),
  :func:`reproduce_store` (bitwise re-execution of recorded cells) and the
  snapshot-to-spec rebuild behind both.
- :mod:`repro.serving.query` — :class:`QueryEngine`: exact / interpolated /
  nearest-cell parameter lookups with an explicit miss policy and the
  overload degradation ladder.
- :mod:`repro.serving.federation` — :class:`FederatedQueryEngine`: one
  query surface over many stores, routed by parameter coverage.
- :mod:`repro.serving.cache` — the bounded thread-safe single-flight LRU
  answer cache with exact hit/miss/eviction/coalesce counters.
- :mod:`repro.serving.lifecycle` — :class:`ComputeGate` (backpressure),
  :class:`QueryService` (snapshot swaps, readiness, graceful drain) and
  :class:`StoreWatcher` (live-store refresh polling).
- :mod:`repro.serving.http` — the stdlib ``repro serve`` HTTP endpoint.

The split keeps the dependency direction one-way: serving imports the
experiment layer, never the reverse.
"""

from repro.serving.cache import (
    DEFAULT_CACHE_CAPACITY,
    LRUCache,
    cache_key,
    make_query_cache,
)
from repro.serving.federation import FederatedQueryEngine, build_engine
from repro.serving.http import drain_server, make_server, serve
from repro.serving.lifecycle import (
    ComputeGate,
    QueryService,
    StoreWatcher,
    store_signature,
)
from repro.serving.query import (
    QueryEngine,
    axis_scales,
    bilinear_answer,
    normalized_distance,
    parse_query,
)
from repro.serving.store import (
    ArtifactStore,
    CellReproduction,
    ReproduceReport,
    reproduce_store,
    sweep_from_snapshot,
)

__all__ = [
    "ArtifactStore",
    "CellReproduction",
    "ComputeGate",
    "DEFAULT_CACHE_CAPACITY",
    "FederatedQueryEngine",
    "LRUCache",
    "QueryEngine",
    "QueryService",
    "ReproduceReport",
    "StoreWatcher",
    "axis_scales",
    "bilinear_answer",
    "build_engine",
    "cache_key",
    "drain_server",
    "make_query_cache",
    "make_server",
    "normalized_distance",
    "parse_query",
    "reproduce_store",
    "serve",
    "store_signature",
    "sweep_from_snapshot",
]
