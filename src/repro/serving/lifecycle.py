"""Operational lifecycle of the query service: backpressure, drain, refresh.

Three small, independently testable pieces turn the snapshot-at-open query
engine into an operations-grade service:

- :class:`ComputeGate` — a bounded admission gate for ``--on-miss compute``
  requests.  Each cache miss under that policy is a full simulation, so the
  gate caps how many may run concurrently; overflow feeds the degradation
  ladder (nearest-cell answers flagged ``degraded``, else ``429``) and every
  outcome is counted exactly once for ``/stats``.
- :class:`QueryService` — the mutable cell holding the *current* engine
  snapshot plus the request-lifecycle state: an in-flight request gauge,
  a draining flag, and :meth:`~QueryService.drain` which flips the service
  unready, waits for in-flight requests to finish and reports whether the
  drain completed.  Engine swaps are a single attribute assignment, so every
  request resolves entirely against exactly one snapshot.
- :class:`StoreWatcher` — a polling daemon thread that watches the store
  artifacts' ``(mtime, size)`` signatures, and on change builds a **fresh,
  eagerly loaded** engine snapshot (next generation, shared cache and gate)
  and swaps it into the service.  Building before swapping means a growing
  ``metrics.jsonl`` is only ever read in the poller; requests never observe
  a half-loaded store.

The module deliberately knows nothing about HTTP or the query engine's
internals — it holds engines behind a factory callable — so the drain and
refresh state machines are exercised by plain unit tests.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

#: Store artifacts whose ``(mtime_ns, size)`` the watcher fingerprints.
WATCHED_ARTIFACTS = ("manifest.json", "metrics.jsonl", "summary.json")

#: Default seconds a rejected (429) client is told to wait before retrying.
DEFAULT_RETRY_AFTER = 1.0


class ComputeGate:
    """Bounded admission for concurrent compute-on-miss simulations.

    ``limit=None`` leaves admission unbounded but still tracks the in-flight
    gauge.  :meth:`admit` is non-blocking — an over-limit request is refused
    immediately so the caller can degrade or reject rather than queue
    unboundedly (queueing simulations behind a saturated gate only converts
    overload into latency).  Counters are exact: every refused admission is
    later accounted as exactly one ``degraded`` (answered from the nearest
    stored cell) or one ``rejected`` (429) by the caller, and every admitted
    compute increments/decrements the gauge exactly once.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if limit is not None and (not isinstance(limit, int) or limit <= 0):
            raise ConfigurationError(
                f"compute limit must be a positive int or None, got {limit!r}"
            )
        self.limit = limit
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0
        self._rejected = 0
        self._degraded = 0
        self._timeouts = 0

    def admit(self) -> bool:
        """Try to admit one compute; ``False`` means the gate is full."""
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Release one previously admitted compute."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("ComputeGate.release without admit")
            self._inflight -= 1

    def note_rejected(self) -> None:
        """Count one refused admission that ended as a 429 rejection."""
        with self._lock:
            self._rejected += 1

    def note_degraded(self) -> None:
        """Count one degraded (nearest-cell fallback) answer."""
        with self._lock:
            self._degraded += 1

    def note_timeout(self) -> None:
        """Count one request whose deadline expired while waiting."""
        with self._lock:
            self._timeouts += 1

    def stats(self) -> dict[str, object]:
        """Consistent snapshot of the gate's gauge and counters."""
        with self._lock:
            return {
                "limit": self.limit,
                "inflight": self._inflight,
                "rejected": self._rejected,
                "degraded": self._degraded,
                "timeouts": self._timeouts,
            }


class QueryService:
    """The swappable engine snapshot plus request-lifecycle state.

    One instance backs all request threads.  ``service.engine`` is read once
    per request — attribute reads are atomic, so a concurrent
    :meth:`swap_engine` gives each request entirely the old or entirely the
    new snapshot, never a blend.  Liveness (:meth:`alive`) is distinct from
    readiness (:meth:`ready`): a draining service is alive but unready, so
    an orchestrator stops routing new traffic while in-flight requests
    finish.
    """

    def __init__(self, engine: object) -> None:
        self._engine = engine
        self._condition = threading.Condition()
        self._inflight_requests = 0
        self._requests_total = 0
        self._draining = False
        self._refreshes = 0
        self._refresh_errors = 0

    # ------------------------------------------------------------- snapshots

    @property
    def engine(self) -> object:
        """The current engine snapshot (grab once per request)."""
        return self._engine

    def swap_engine(self, engine: object) -> None:
        """Atomically publish a new engine snapshot."""
        self._engine = engine
        with self._condition:
            self._refreshes += 1

    # -------------------------------------------------------------- requests

    def begin_request(self) -> bool:
        """Admit one request; ``False`` once draining has begun."""
        with self._condition:
            if self._draining:
                return False
            self._inflight_requests += 1
            self._requests_total += 1
            return True

    def end_request(self) -> None:
        """Mark one admitted request finished (wakes a waiting drain)."""
        with self._condition:
            if self._inflight_requests <= 0:
                raise RuntimeError("end_request without begin_request")
            self._inflight_requests -= 1
            self._condition.notify_all()

    # ----------------------------------------------------------------- state

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun."""
        with self._condition:
            return self._draining

    def alive(self) -> bool:
        """Liveness: the process is up (always true in-process)."""
        return True

    def ready(self) -> bool:
        """Readiness: a loaded engine snapshot exists and we are not draining."""
        with self._condition:
            return self._engine is not None and not self._draining

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting requests; wait for in-flight ones to finish.

        Returns ``True`` when the last in-flight request completed within
        ``timeout`` (``None`` waits indefinitely), ``False`` on expiry —
        the caller decides whether to exit anyway.  Idempotent.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            self._draining = True
            while self._inflight_requests > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._condition.wait(remaining)
            return True

    def note_refresh_error(self) -> None:
        """Count one failed snapshot rebuild (the old snapshot stays live)."""
        with self._condition:
            self._refresh_errors += 1

    def stats(self) -> dict[str, object]:
        """Request/drain/refresh gauges for ``/stats``."""
        with self._condition:
            return {
                "draining": self._draining,
                "inflight_requests": self._inflight_requests,
                "requests_total": self._requests_total,
                "refreshes": self._refreshes,
                "refresh_errors": self._refresh_errors,
            }


def store_signature(
    directories: Sequence[PathLike],
) -> tuple[tuple[object, ...], ...]:
    """Fingerprint of the watched artifacts across the store directories.

    One ``(name, mtime_ns, size)`` triple per artifact per directory;
    a missing artifact contributes ``(name, None, None)``.  Any append to
    ``metrics.jsonl`` or atomic replace of ``summary.json`` changes the
    signature, which is all the watcher needs — content is only re-read
    when the signature moved.
    """
    signature = []
    for directory in directories:
        directory = Path(directory)
        for name in WATCHED_ARTIFACTS:
            path = directory / name
            try:
                stat = path.stat()
                signature.append((str(path), stat.st_mtime_ns, stat.st_size))
            except OSError:
                signature.append((str(path), None, None))
    return tuple(signature)


class StoreWatcher(threading.Thread):
    """Polls store artifacts and swaps refreshed engine snapshots in.

    ``build_engine(generation)`` must return a **fully loaded** engine over
    a fresh read of the store directories — the watcher calls it only after
    the signature moved, and swaps the result into ``service`` in one
    assignment.  Generations increase monotonically, and the engine folds
    its generation into every cache key, so entries cached against the old
    snapshot are unreachable from the new one (they age out of the LRU).
    A build that raises keeps the previous snapshot serving and is counted
    on the service's ``refresh_errors``.
    """

    def __init__(
        self,
        service: QueryService,
        directories: Sequence[PathLike],
        build_engine: Callable[[int], object],
        interval: float = 2.0,
        initial_generation: int = 0,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"watch interval must be positive, got {interval!r}"
            )
        super().__init__(name="repro-store-watcher", daemon=True)
        self.service = service
        self.directories = [Path(directory) for directory in directories]
        self.build_engine = build_engine
        self.interval = float(interval)
        self.generation = int(initial_generation)
        self._stop_event = threading.Event()
        self._last_signature = store_signature(self.directories)

    def poll_once(self) -> bool:
        """One poll step: swap in a new snapshot if the artifacts moved.

        Returns ``True`` when a swap happened.  Public so tests (and the
        drain path) can drive the state machine without timing games.
        """
        signature = store_signature(self.directories)
        if signature == self._last_signature:
            return False
        next_generation = self.generation + 1
        try:
            engine = self.build_engine(next_generation)
        except Exception:
            # A torn mid-append read or transient damage must never take
            # down the service: keep serving the last good snapshot and
            # retry on the next poll (the signature is left stale on
            # purpose so the retry actually happens).
            self.service.note_refresh_error()
            return False
        self.generation = next_generation
        self._last_signature = signature
        self.service.swap_engine(engine)
        return True

    def run(self) -> None:
        """Poll until :meth:`stop`; exceptions never escape the thread."""
        while not self._stop_event.wait(self.interval):
            self.poll_once()

    def stop(self, join_timeout: Optional[float] = 5.0) -> None:
        """Stop polling and join the thread."""
        self._stop_event.set()
        if self.is_alive():
            self.join(join_timeout)
