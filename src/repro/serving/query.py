"""Parameter-point queries against a sweep artifact store.

The store holds aggregates at the sweep's grid points; consumers ask for
arbitrary ``(rho, tau, w)`` points.  :class:`QueryEngine` resolves a query in
a fixed priority order:

1. **Exact match** — a summary cell whose parameters equal the query point
   bit-for-bit returns its stored aggregates unchanged.
2. **Bilinear interpolation** (opt-in) — for a point inside the convex hull
   of the ``(rho, tau)`` grid at an exactly-matching horizon ``w``, the four
   bracketing corner cells are blended with the standard bilinear weights.
   Every interpolated metric is a convex combination of the corner values,
   so it is bounded by the corners' extremes (the property the differential
   test suite asserts).
3. **Nearest cell** — the cell minimising the *normalized Euclidean
   distance* ``d(q, c) = sqrt(sum_a ((q_a - c_a) / s_a)^2)`` over the axes
   ``a in (rho, tau, w)``, where the scale ``s_a`` is the range
   (``max - min``) of axis ``a`` over the store's answerable cells, or 1.0
   for a degenerate axis.  Normalizing by range makes the axes commensurate
   (a horizon step of 1 is not drowned out by a density step of 0.05) and
   depends only on the *set* of cells, so the lookup is deterministic under
   any shuffling of store rows; ties break lexicographically on the cell's
   ``(params, spec_hash)``, never on storage order.  ``max_distance`` can
   bound how far an answer may be from the query.
4. **Miss policy** — with no answer within bounds, ``on_miss="error"``
   raises :class:`~repro.errors.QueryMiss`; ``on_miss="compute"`` schedules
   a fresh simulation of the point (deterministically seeded from the
   store's sweep) and answers from its aggregates.

Resolved answers flow through a bounded thread-safe **single-flight** LRU
cache (:mod:`repro.serving.cache`) keyed on the resolved point and the
store-snapshot generation, so a service under repeated traffic answers from
memory and N concurrent misses on the same point run exactly one
computation; hit/miss/eviction/coalesce counters are exposed via
:meth:`QueryEngine.stats` and the HTTP ``/stats`` endpoint.

Under load, compute-on-miss admission is bounded by an optional
:class:`~repro.serving.lifecycle.ComputeGate`.  A saturated gate triggers
the **degradation ladder**: the request is answered from the nearest stored
cell flagged ``degraded`` (with a
:class:`~repro.errors.ServingDegradationWarning`, mirroring the sweep
supervisor's pattern); when the store has no cells at all to fall back on,
the request fails with :class:`~repro.errors.ServiceOverload`, which the
HTTP layer maps to ``429`` with ``Retry-After``.  Degraded answers are
never cached — they are a capacity artifact, not the point's true answer.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Union

from repro.errors import (
    DeadlineExceeded,
    QueryMiss,
    ServiceOverload,
    ServingDegradationWarning,
    ServingError,
)
from repro.serving.cache import LRUCache, cache_key, make_query_cache
from repro.serving.lifecycle import ComputeGate
from repro.serving.store import ArtifactStore, PathLike, query_spec_for_point

#: Canonical query axes, in documentation order.
AXES = ("rho", "tau", "w")

#: Accepted spellings for each axis (the sweep rows call them
#: ``density``/``tau``/``horizon``; the paper's figures use ``p``/``tau``/``w``).
AXIS_ALIASES = {
    "rho": "rho",
    "density": "rho",
    "p": "rho",
    "tau": "tau",
    "w": "w",
    "horizon": "w",
}

#: Valid values of the engine's miss policy.
ON_MISS_POLICIES = ("error", "compute")


def parse_query(text: str) -> dict[str, float]:
    """Parse ``"rho=0.4,tau=0.55,w=2"`` into a partial axis → value map.

    Accepts the aliases in :data:`AXIS_ALIASES`, rejects unknown axes,
    duplicates and non-numeric values.  Axes may be omitted — the engine
    fills an omitted axis when the store pins it to a single value.
    """
    point: dict[str, float] = {}
    for part in str(text).split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, raw = part.partition("=")
        name = name.strip().lower()
        if not sep:
            raise ServingError(
                f"query term {part!r} is not of the form axis=value"
            )
        axis = AXIS_ALIASES.get(name)
        if axis is None:
            known = ", ".join(sorted(AXIS_ALIASES))
            raise ServingError(
                f"unknown query axis {name!r} (known: {known})"
            )
        if axis in point:
            raise ServingError(f"query names axis {axis!r} more than once")
        try:
            point[axis] = float(raw.strip())
        except ValueError:
            raise ServingError(
                f"query value {raw.strip()!r} for axis {axis!r} is not a "
                "number"
            ) from None
    if not point:
        raise ServingError("empty query — name at least one axis=value term")
    return point


def axis_scales(cells: list[dict]) -> dict[str, float]:
    """Per-axis normalization scales over the answerable cells.

    ``s_a = max_a - min_a`` over the cells' parameter points, with 1.0 for a
    degenerate axis (single value) so a division never blows up.  A pure
    function of the cell *set* — invariant under storage order, and in a
    federation computed over the union of every member store's cells so the
    metric is commensurate across stores.
    """
    scales: dict[str, float] = {}
    for axis in AXES:
        values = [float(cell["params"][axis]) for cell in cells]
        span = max(values) - min(values) if values else 0.0
        scales[axis] = span if span > 0.0 else 1.0
    return scales


def normalized_distance(
    point: dict[str, float], params: dict, scales: dict[str, float]
) -> float:
    """Normalized Euclidean distance between a query point and a cell."""
    return math.sqrt(
        sum(
            ((point[axis] - float(params[axis])) / scales[axis]) ** 2
            for axis in AXES
        )
    )


def _cell_rank(cell: dict) -> tuple:
    """Deterministic tie-break rank: parameter point, spec hash, then store.

    The trailing store tag (set by the federated engine, empty for a single
    store) makes ties deterministic even when two member stores hold cells
    with identical parameters and hashes.
    """
    params = cell["params"]
    return (
        float(params["rho"]),
        float(params["tau"]),
        float(params["w"]),
        str(cell.get("spec_hash", "")),
        str(cell.get("store", "")),
    )


def _answer_cell_entry(cell: dict, weight: float) -> dict:
    """One contributing-cell entry of an answer payload."""
    entry = {
        "index": cell.get("index"),
        "name": cell.get("name"),
        "spec_hash": cell.get("spec_hash"),
        "params": cell.get("params"),
        "weight": weight,
    }
    if cell.get("store") is not None:
        entry["store"] = cell["store"]
    return entry


def _blend(corners: list[tuple[float, dict]]) -> dict[str, dict[str, float]]:
    """Convex combination of corner metrics.

    Blends only the metric columns (and per-column stat fields) present in
    *every* contributing corner, so a ragged store cannot produce a value
    that silently mixes populations.
    """
    metric_names = set(corners[0][1]["metrics"])
    for _, cell in corners[1:]:
        metric_names &= set(cell["metrics"])
    blended: dict[str, dict[str, float]] = {}
    for name in sorted(metric_names):
        fields = set(corners[0][1]["metrics"][name])
        for _, cell in corners[1:]:
            fields &= set(cell["metrics"][name])
        blended[name] = {
            field: sum(
                weight * float(cell["metrics"][name][field])
                for weight, cell in corners
            )
            for field in sorted(fields)
        }
    return blended


def bilinear_answer(
    cells: list[dict], point: dict[str, float]
) -> Optional[dict]:
    """Bilinear interpolation over ``(rho, tau)`` at an exact horizon.

    Returns ``None`` unless the store has, at the query's exact ``w``, the
    four grid corners bracketing the query in both ``rho`` and ``tau`` (a
    bracket may be degenerate when the query lies exactly on a grid line).
    The result's metrics are convex combinations of the corner metrics with
    the standard bilinear weights, hence bounded by the corner extremes.
    """
    at_w = {}
    for cell in cells:
        params = cell["params"]
        if float(params["w"]) != point["w"]:
            continue
        key = (float(params["tau"]), float(params["rho"]))
        best = at_w.get(key)
        if best is None or _cell_rank(cell) < _cell_rank(best):
            at_w[key] = cell
    if not at_w:
        return None
    taus = sorted({key[0] for key in at_w})
    rhos = sorted({key[1] for key in at_w})
    tau_lo = max((t for t in taus if t <= point["tau"]), default=None)
    tau_hi = min((t for t in taus if t >= point["tau"]), default=None)
    rho_lo = max((r for r in rhos if r <= point["rho"]), default=None)
    rho_hi = min((r for r in rhos if r >= point["rho"]), default=None)
    if None in (tau_lo, tau_hi, rho_lo, rho_hi):
        return None  # outside the grid's convex hull
    weight_tau = (
        0.0
        if tau_hi == tau_lo
        else (point["tau"] - tau_lo) / (tau_hi - tau_lo)
    )
    weight_rho = (
        0.0
        if rho_hi == rho_lo
        else (point["rho"] - rho_lo) / (rho_hi - rho_lo)
    )
    # Accumulated, not a dict literal: with a degenerate bracket
    # (lo == hi) two corner labels collapse onto one grid point, and their
    # weights must add up rather than overwrite each other.
    corner_weights: dict[tuple[float, float], float] = {}
    for key, weight in (
        ((tau_lo, rho_lo), (1.0 - weight_tau) * (1.0 - weight_rho)),
        ((tau_hi, rho_lo), weight_tau * (1.0 - weight_rho)),
        ((tau_lo, rho_hi), (1.0 - weight_tau) * weight_rho),
        ((tau_hi, rho_hi), weight_tau * weight_rho),
    ):
        corner_weights[key] = corner_weights.get(key, 0.0) + weight
    corners: list[tuple[float, dict]] = []
    for key, weight in corner_weights.items():
        if weight <= 0.0:
            continue
        cell = at_w.get(key)
        if cell is None:
            return None  # ragged grid: a needed corner was never swept
        corners.append((weight, cell))
    if not corners:
        return None
    return {
        "source": "interpolated",
        "metrics": _blend(corners),
        "cells": [
            _answer_cell_entry(cell, weight) for weight, cell in corners
        ],
    }


class QueryEngine:
    """Cached parameter-point lookups against one artifact store.

    Thread-safe: resolution state is read-only after construction and the
    answer cache takes its own lock, so one engine instance backs the
    threaded HTTP server directly.  An engine is a *snapshot*: it answers
    from the store state it first loaded.  The refresh poller
    (:class:`~repro.serving.lifecycle.StoreWatcher`) replaces the whole
    engine with a successor of the next ``generation`` rather than mutating
    one in place; ``generation`` is folded into every cache key so a shared
    cache never serves a superseded snapshot's answer.

    The store-access points (:meth:`answer_cells`,
    :meth:`_sweep_for_compute`, :meth:`_store_stats`) are overridable hooks —
    :class:`~repro.serving.federation.FederatedQueryEngine` reroutes them
    over many stores while inheriting every resolution rule unchanged.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, PathLike],
        cache: Optional[LRUCache] = None,
        interpolate: bool = False,
        on_miss: str = "error",
        max_distance: Optional[float] = None,
        gate: Optional[ComputeGate] = None,
        generation: int = 0,
    ) -> None:
        if on_miss not in ON_MISS_POLICIES:
            raise ServingError(
                f"on_miss must be one of {ON_MISS_POLICIES}, got {on_miss!r}"
            )
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.cache = cache if cache is not None else make_query_cache()
        self.interpolate = bool(interpolate)
        self.on_miss = on_miss
        self.max_distance = max_distance
        self.gate = gate
        self.generation = int(generation)

    # ----------------------------------------------------------- store hooks

    def answer_cells(self) -> list[dict]:
        """The answerable cells this snapshot resolves against."""
        return self.store.answerable_cells()

    def _sweep_for_compute(self, point: dict[str, float]):
        """The sweep spec computed answers inherit their parameters from."""
        return self.store.sweep()

    def _store_stats(self) -> dict:
        """The ``store`` section of :meth:`stats`."""
        return {
            "directory": str(self.store.directory),
            "n_cells": len(self.store.cells()),
            "n_answerable": len(self.store.answerable_cells()),
            "generation": self.generation,
        }

    def load(self) -> "QueryEngine":
        """Eagerly read the store so this snapshot never touches disk again.

        The refresh poller builds successors with this before swapping them
        in: the (possibly mid-append) disk read happens in the poller
        thread, and requests only ever see fully loaded snapshots.
        """
        self.answer_cells()
        return self

    # ------------------------------------------------------------ resolution

    def resolve_point(
        self, query: Union[str, dict[str, float]]
    ) -> dict[str, float]:
        """Normalize a query into a full ``{rho, tau, w}`` point.

        String queries go through :func:`parse_query`; dict queries accept
        the same aliases.  An omitted axis is filled from the store when the
        answerable cells pin it to a single value, and is an error (the
        query is ambiguous) otherwise.
        """
        if isinstance(query, str):
            partial = parse_query(query)
        else:
            partial = {}
            for name, value in dict(query).items():
                axis = AXIS_ALIASES.get(str(name).lower())
                if axis is None:
                    known = ", ".join(sorted(AXIS_ALIASES))
                    raise ServingError(
                        f"unknown query axis {name!r} (known: {known})"
                    )
                if axis in partial:
                    raise ServingError(
                        f"query names axis {axis!r} more than once"
                    )
                try:
                    partial[axis] = float(value)
                except (TypeError, ValueError):
                    raise ServingError(
                        f"query value {value!r} for axis {axis!r} is not a "
                        "number"
                    ) from None
            if not partial:
                raise ServingError(
                    "empty query — name at least one axis=value term"
                )
        point: dict[str, float] = {}
        for axis in AXES:
            if axis in partial:
                point[axis] = partial[axis]
                continue
            pinned = {
                float(cell["params"][axis]) for cell in self.answer_cells()
            }
            if len(pinned) == 1:
                point[axis] = pinned.pop()
            else:
                raise ServingError(
                    f"query omits axis {axis!r} and the store does not pin "
                    f"it to a single value ({len(pinned)} distinct values) "
                    "— specify it explicitly"
                )
        return point

    def _nearest_answer(
        self, point: dict[str, float], cells: list[dict]
    ) -> tuple[dict, float]:
        """The nearest-cell answer payload and its normalized distance."""
        scales = axis_scales(cells)
        nearest = min(
            cells,
            key=lambda cell: (
                normalized_distance(point, cell["params"], scales),
                _cell_rank(cell),
            ),
        )
        distance = normalized_distance(point, nearest["params"], scales)
        answer = {
            "point": point,
            "source": "nearest",
            "distance": distance,
            "metrics": nearest["metrics"],
            "cells": [_answer_cell_entry(nearest, 1.0)],
        }
        return answer, distance

    def _lookup(self, point: dict[str, float], interpolate: bool) -> dict:
        """Resolve one full point against the store (uncached)."""
        cells = self.answer_cells()
        if not cells:
            return self._miss(point, "the store has no answerable cells")
        for cell in sorted(cells, key=_cell_rank):
            params = cell["params"]
            if all(float(params[axis]) == point[axis] for axis in AXES):
                return {
                    "point": point,
                    "source": "exact",
                    "distance": 0.0,
                    "metrics": cell["metrics"],
                    "cells": [_answer_cell_entry(cell, 1.0)],
                }
        if interpolate:
            answer = bilinear_answer(cells, point)
            if answer is not None:
                answer["point"] = point
                answer["distance"] = None
                return answer
        answer, distance = self._nearest_answer(point, cells)
        if self.max_distance is not None and distance > self.max_distance:
            return self._miss(
                point,
                f"nearest cell is at normalized distance {distance:.4f}, "
                f"beyond the allowed {self.max_distance}",
            )
        return answer

    def _miss(self, point: dict[str, float], reason: str) -> dict:
        """Apply the miss policy: raise, or compute the point fresh."""
        if self.on_miss != "compute":
            raise QueryMiss(
                f"no stored answer for {point} ({reason}); rerun with "
                "on_miss='compute' to simulate the point"
            )
        return self._compute(point)

    def _compute(self, point: dict[str, float]) -> dict:
        """Simulate the queried point, bounded by the compute gate."""
        if self.gate is None:
            return self._compute_ungated(point)
        if not self.gate.admit():
            # Not yet counted: answer() classifies the overload as exactly
            # one degraded fallback or one rejection.
            raise ServiceOverload(
                f"compute capacity exhausted ({self.gate.limit} concurrent "
                f"simulation(s) already running) for {point}",
                retry_after=self.gate.retry_after,
            )
        try:
            return self._compute_ungated(point)
        finally:
            self.gate.release()

    def _compute_ungated(self, point: dict[str, float]) -> dict:
        """Simulate the queried point and answer from fresh aggregates."""
        from repro.experiments.checkpoint import VOLATILE_ROW_COLUMNS
        from repro.experiments.results import ResultTable
        from repro.experiments.runner import run_experiment

        sweep = self._sweep_for_compute(point)
        w = point["w"]
        if w != int(w):
            raise ServingError(
                f"cannot compute a non-integer horizon w={w!r}"
            )
        spec = query_spec_for_point(
            sweep, tau=point["tau"], rho=point["rho"], w=int(w)
        )
        # Wall-clock columns are stripped so a computed answer is a pure
        # function of (store, point) — rerunning the query reproduces it.
        table = ResultTable(
            [
                {
                    key: value
                    for key, value in row.items()
                    if key not in VOLATILE_ROW_COLUMNS
                }
                for row in run_experiment(spec).rows
            ]
        )
        return {
            "point": point,
            "source": "computed",
            "distance": None,
            "metrics": table.numeric_summary(),
            "cells": [
                {
                    "index": None,
                    "name": spec.name,
                    "spec_hash": None,
                    "params": dict(point),
                    "weight": 1.0,
                }
            ],
        }

    def _degrade(self, point: dict[str, float]) -> Optional[dict]:
        """The overload fallback: nearest stored cell, flagged ``degraded``.

        Ignores ``max_distance`` on purpose — under overload a far answer
        honestly flagged beats a 429 — and is never cached.  Returns
        ``None`` when the store holds nothing to fall back on.
        """
        cells = self.answer_cells()
        if not cells:
            return None
        answer, _ = self._nearest_answer(point, cells)
        answer["degraded"] = True
        return answer

    # ---------------------------------------------------------------- public

    def answer(
        self,
        query: Union[str, dict[str, float]],
        interpolate: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Answer a query through the single-flight cache.

        Returns the answer payload (point, source, contributing cells,
        metrics) plus a ``cached`` flag for this call.  Concurrent misses on
        the same resolved point share one computation; ``deadline`` bounds
        (in seconds) how long this request may wait on another request's
        in-flight computation, raising
        :class:`~repro.errors.DeadlineExceeded` on expiry.  Misses under
        ``on_miss="error"`` raise :class:`~repro.errors.QueryMiss` and are
        never cached; computed answers are cached like any other.  When the
        compute gate is saturated the degradation ladder applies (see the
        module docstring).
        """
        use_interpolation = (
            self.interpolate if interpolate is None else bool(interpolate)
        )
        point = self.resolve_point(query)
        key = cache_key(point, use_interpolation, self.generation)
        try:
            value, outcome = self.cache.get_or_compute(
                key,
                lambda: self._lookup(point, use_interpolation),
                timeout=deadline,
            )
        except ServiceOverload:
            fallback = self._degrade(point)
            if fallback is None:
                if self.gate is not None:
                    self.gate.note_rejected()
                raise
            if self.gate is not None:
                self.gate.note_degraded()
            warnings.warn(
                ServingDegradationWarning(
                    f"compute gate saturated: answered {point} from the "
                    "nearest stored cell (flagged degraded) instead of "
                    "simulating it"
                ),
                stacklevel=2,
            )
            fallback = dict(fallback)
            fallback["cached"] = False
            return fallback
        except DeadlineExceeded:
            if self.gate is not None:
                self.gate.note_timeout()
            raise
        answer = dict(value)
        answer["cached"] = outcome == "hit"
        return answer

    def stats(self) -> dict:
        """Cache counters plus store and policy descriptors (for ``/stats``)."""
        stats = {
            "cache": self.cache.stats(),
            "store": self._store_stats(),
            "policy": {
                "interpolate": self.interpolate,
                "on_miss": self.on_miss,
                "max_distance": self.max_distance,
            },
        }
        if self.gate is not None:
            stats["compute"] = self.gate.stats()
        return stats
