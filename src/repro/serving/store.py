"""Read-side handle on a sweep artifact store, plus ``repro reproduce``.

A checkpointed sweep leaves a directory with ``manifest.json`` (provenance:
config snapshot, seeds, versions, per-cell spec hashes), ``metrics.jsonl``
(raw replicate rows, streamed as cells completed) and ``summary.json``
(per-cell aggregates — written at sweep completion, regenerable offline).
:class:`ArtifactStore` wraps such a directory for the serving layer: it loads
the summary (deriving it in memory when the file is absent) and rebuilds the
original :class:`~repro.experiments.spec.SweepSpec` from the manifest
snapshot.

On top of that sits **reproduction**: :func:`reproduce_store` re-executes any
recorded cell from nothing but the manifest — the snapshot expands back into
frozen specs, each spec re-derives its replicate seeds, and the regenerated
rows are compared against the stored ones column by column.  Everything a row
contains is pinned by the spec hash except wall-clock timings
(:data:`~repro.experiments.checkpoint.VOLATILE_ROW_COLUMNS`), so the
comparison is *bitwise*: a single differing bit in any stored value is a
named diff and a non-zero exit from ``repro reproduce``.  This turns every
archived sweep into a regression test — rerun the reproduction after any
engine change and the store itself asserts nothing drifted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.variants import VariantSpec
from repro.errors import ServingError
from repro.experiments.checkpoint import (
    MANIFEST_NAME,
    SUMMARY_FORMAT,
    SUMMARY_NAME,
    VOLATILE_ROW_COLUMNS,
    load_manifest,
    scan_records,
    summarize_store,
    write_summary,
)
from repro.experiments.io import config_from_dict, json_default
from repro.experiments.spec import ExperimentSpec, SweepSpec, spec_hash
from repro.types import VariantKind

PathLike = Union[str, Path]

#: Derived :class:`~repro.core.config.ModelConfig` fields a manifest snapshot
#: carries (``dataclasses.asdict`` keeps them) but the constructor recomputes.
_DERIVED_CONFIG_FIELDS = ("neighborhood_agents", "happiness_threshold")


def resolve_store_path(path: PathLike) -> Path:
    """The store directory for ``path`` — a directory or its manifest file.

    ``repro reproduce`` accepts either spelling (the ISSUE contract names the
    manifest; operators usually have the directory).
    """
    path = Path(path)
    if path.name == MANIFEST_NAME:
        return path.parent
    return path


def sweep_from_snapshot(snapshot: object) -> SweepSpec:
    """Rebuild the executable :class:`SweepSpec` from a manifest snapshot.

    The snapshot is ``dataclasses.asdict(sweep)`` JSON-roundtripped (enums as
    their values), so the inverse rebuilds the nested ``ModelConfig`` and
    ``VariantSpec`` and re-freezes the dataclass.  Raises
    :class:`~repro.errors.ServingError` for stores written without a usable
    snapshot (e.g. a duck-typed sweep recorded only by ``repr``): such stores
    remain queryable, but cannot be reproduced.
    """
    if not isinstance(snapshot, dict) or "base_config" not in snapshot:
        raise ServingError(
            "the manifest's sweep snapshot is missing or not a full "
            "SweepSpec serialisation — this store cannot be re-executed"
        )
    try:
        config_data = {
            key: value
            for key, value in dict(snapshot["base_config"]).items()
            if key not in _DERIVED_CONFIG_FIELDS
        }
        base_config = config_from_dict(config_data)
        variant_data = snapshot.get("variant") or {}
        variant = VariantSpec(
            kind=VariantKind(variant_data.get("kind", "base")),
            tau_high=variant_data.get("tau_high"),
            tau_minus=variant_data.get("tau_minus"),
        )
        return SweepSpec(
            name=snapshot["name"],
            base_config=base_config,
            taus=tuple(snapshot.get("taus") or ()),
            horizons=tuple(snapshot.get("horizons") or ()),
            densities=tuple(snapshot.get("densities") or ()),
            n_replicates=snapshot.get("n_replicates", 3),
            seed=snapshot.get("seed", 0),
            max_flips=snapshot.get("max_flips"),
            max_steps=snapshot.get("max_steps"),
            max_region_radius=snapshot.get("max_region_radius"),
            record_trajectory=snapshot.get("record_trajectory", False),
            record_every=snapshot.get("record_every", 100),
            variant=variant,
            backend=snapshot.get("backend"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError(
            f"the manifest's sweep snapshot could not be rebuilt into a "
            f"SweepSpec: {type(exc).__name__}: {exc}"
        ) from exc


class ArtifactStore:
    """Read-side handle on one checkpoint directory.

    Loads lazily and caches: the manifest, the parsed ``summary.json``
    (derived in memory via :func:`summarize_store` when the file is absent
    or stale-formatted, so a store that was never summarised is still
    queryable) and the rebuilt sweep spec.  All reads are snapshot-at-open:
    a long-lived query service re-opens the store (or calls
    :meth:`refresh`) to observe cells appended by a concurrently running
    sweep.
    """

    def __init__(
        self, directory: PathLike, trust_summary: bool = True
    ) -> None:
        self.directory = resolve_store_path(directory)
        if not self.directory.is_dir():
            raise ServingError(f"{self.directory} is not a directory")
        #: With ``trust_summary=False`` the on-disk ``summary.json`` is
        #: ignored and aggregates are always re-derived from the records
        #: that pass the line-level integrity checks — the ``repro serve
        #: --allow-damaged`` mode, which serves only verified-clean cells.
        self.trust_summary = bool(trust_summary)
        self._manifest: Optional[dict] = None
        self._manifest_loaded = False
        self._summary: Optional[dict] = None

    # ------------------------------------------------------------- artifacts

    @property
    def manifest(self) -> Optional[dict]:
        """The parsed manifest, or ``None`` when missing/foreign/corrupt."""
        if not self._manifest_loaded:
            self._manifest = load_manifest(self.directory)
            self._manifest_loaded = True
        return self._manifest

    def summary(self) -> dict:
        """The store's summary payload (from disk, else derived in memory)."""
        if self._summary is None:
            summary_path = self.directory / SUMMARY_NAME
            if self.trust_summary and summary_path.exists():
                try:
                    loaded = json.loads(summary_path.read_text())
                except ValueError:
                    loaded = None
                if (
                    isinstance(loaded, dict)
                    and loaded.get("format") == SUMMARY_FORMAT
                ):
                    self._summary = loaded
            if self._summary is None:
                self._summary = summarize_store(self.directory)
        return self._summary

    def ensure_summary(self) -> Path:
        """Write ``summary.json`` if needed and return its path."""
        summary_path = self.directory / SUMMARY_NAME
        if not summary_path.exists():
            write_summary(self.directory)
            self._summary = None
        return summary_path

    def refresh(self) -> None:
        """Drop every cached artifact so the next read hits the disk."""
        self._manifest = None
        self._manifest_loaded = False
        self._summary = None

    # ----------------------------------------------------------------- cells

    def cells(self) -> list[dict]:
        """Every summary cell entry, in manifest (or record) order."""
        return list(self.summary().get("cells") or [])

    def answerable_cells(self) -> list[dict]:
        """Summary cells that can answer parameter queries.

        A cell qualifies when it has aggregated metrics and a parsed
        ``(tau, w, rho)`` parameter point — quarantined failures and
        never-recorded cells are excluded.
        """
        return [
            cell
            for cell in self.cells()
            if cell.get("metrics") and isinstance(cell.get("params"), dict)
        ]

    def sweep(self) -> SweepSpec:
        """The original sweep, rebuilt from the manifest snapshot."""
        if self.manifest is None:
            raise ServingError(
                f"{self.directory / MANIFEST_NAME} is missing or unreadable "
                "— cannot rebuild the sweep"
            )
        return sweep_from_snapshot(self.manifest.get("sweep"))


# ------------------------------------------------------------- reproduction


def canonical_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """Rows coerced exactly as the checkpoint writer persists them.

    Regenerated rows carry numpy scalars; stored rows went through JSON.
    One round-trip through the shared ``json_default`` hook puts both sides
    in the same representation, so ``==`` on the result is a bitwise
    comparison of what the store actually holds (Python's JSON float
    round-trip is exact).
    """
    return json.loads(json.dumps(rows, default=json_default))


def comparable_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """Canonical rows with the volatile (wall-clock) columns stripped."""
    return [
        {
            key: value
            for key, value in row.items()
            if key not in VOLATILE_ROW_COLUMNS
        }
        for row in canonical_rows(rows)
    ]


def diff_rows(
    stored: list[dict[str, object]],
    regenerated: list[dict[str, object]],
    max_diffs: int = 5,
) -> list[dict[str, object]]:
    """Named value-level differences between two comparable row lists.

    Each diff names the replicate row, the column and both values; the list
    is truncated at ``max_diffs`` entries (a count diff is always first when
    the row counts disagree).  Empty means bitwise identical.
    """
    diffs: list[dict[str, object]] = []
    if len(stored) != len(regenerated):
        diffs.append(
            {
                "row": None,
                "column": "<row count>",
                "stored": len(stored),
                "regenerated": len(regenerated),
            }
        )
    for row_index, (old, new) in enumerate(zip(stored, regenerated)):
        for column in list(old.keys()) + [k for k in new if k not in old]:
            stored_value = old.get(column, "<absent>")
            new_value = new.get(column, "<absent>")
            if stored_value != new_value or type(stored_value) is not type(
                new_value
            ):
                diffs.append(
                    {
                        "row": row_index,
                        "column": column,
                        "stored": stored_value,
                        "regenerated": new_value,
                    }
                )
                if len(diffs) >= max_diffs:
                    return diffs
    return diffs


@dataclass
class CellReproduction:
    """Verdict of reproducing one manifest cell against its stored rows."""

    index: int
    name: str
    spec_hash: str
    #: ``match`` | ``mismatch`` | ``backend-drift`` | ``spec-drift`` |
    #: ``missing`` | ``recorded-failure``
    status: str
    detail: str = ""
    diffs: list = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        """Whether this verdict should fail ``repro reproduce``.

        ``missing`` (never recorded — an interrupted sweep) and
        ``recorded-failure`` (quarantined, reported verbatim) are honest
        store states, not reproduction failures.  ``backend-drift`` is a
        mismatch whose record was produced by a *different* flip-loop
        backend than the one reproducing it — still a failure (backends are
        pinned bitwise identical, so even then rows must match), but named,
        so the operator immediately sees the one variable that changed.
        """
        return self.status in ("mismatch", "spec-drift", "backend-drift")


@dataclass
class ReproduceReport:
    """Outcome of :func:`reproduce_store` across the selected cells."""

    directory: str
    results: list[CellReproduction]

    @property
    def ok(self) -> bool:
        """True when no selected cell mismatched or drifted."""
        return not any(result.damaged for result in self.results)

    def counts(self) -> dict[str, int]:
        """Number of cells per verdict status."""
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly report (what ``repro reproduce`` prints)."""
        return {
            "directory": self.directory,
            "ok": self.ok,
            "counts": self.counts(),
            "cells": [
                {
                    "index": result.index,
                    "name": result.name,
                    "spec_hash": result.spec_hash,
                    "status": result.status,
                    "detail": result.detail,
                    "diffs": result.diffs,
                }
                for result in self.results
            ],
        }


def _manifest_cell_entries(manifest: dict, n_cells: int) -> list[dict]:
    """The manifest's per-cell entries, validated against the expanded count."""
    entries = manifest.get("cells")
    if not isinstance(entries, list) or any(
        not isinstance(entry, dict) for entry in entries
    ):
        raise ServingError("the manifest's cell list is missing or malformed")
    if len(entries) != n_cells:
        raise ServingError(
            f"the manifest lists {len(entries)} cells but its sweep snapshot "
            f"expands to {n_cells} — the manifest is internally inconsistent"
        )
    return entries


def reproduce_store(
    directory: PathLike,
    cell: Optional[str] = None,
    ensemble_size: Optional[int] = None,
    max_diffs: int = 5,
    backend: Optional[str] = None,
) -> ReproduceReport:
    """Re-execute recorded cells from the manifest and compare rows bitwise.

    For every selected cell (all of them, or the one named ``cell``): the
    manifest snapshot is expanded back into the cell's frozen spec, its
    content hash is checked against the manifest's recorded hash (a
    mismatch is ``spec-drift`` — the manifest was edited or the library's
    row-determining behaviour changed), the cell is re-run through the
    ordinary runner, and the regenerated rows are compared against the
    stored record with :func:`diff_rows` (wall-clock columns excluded, all
    else bitwise).  Quarantined cells report their recorded failure;
    never-recorded cells report ``missing``.  ``ensemble_size`` picks the
    vectorized engine — rows are engine-independent, so reproduction under
    either engine must (and does) match.  ``backend`` requests a flip-loop
    backend for ensemble reproduction (full CLI > env > spec > auto
    precedence); backends are likewise bitwise-pinned, but when rows *do*
    differ and the record names a different backend than the one that
    reproduced it, the verdict is the named ``backend-drift`` diagnostic
    rather than a bare ``mismatch``.
    """
    directory = resolve_store_path(directory)
    store = ArtifactStore(directory)
    if store.manifest is None:
        raise ServingError(
            f"{directory / MANIFEST_NAME} is missing or unreadable — "
            "reproduction needs the provenance manifest"
        )
    sweep = sweep_from_snapshot(store.manifest.get("sweep"))
    cells = list(sweep.cells())
    entries = _manifest_cell_entries(store.manifest, len(cells))
    records = scan_records(directory)

    selected = list(range(len(cells)))
    if cell is not None:
        selected = [i for i in selected if cells[i].name == cell]
        if not selected:
            known = ", ".join(spec.name for spec in cells)
            raise ServingError(
                f"no manifest cell is named {cell!r} (cells: {known})"
            )

    # Imported here: reproduction is the only store operation that needs the
    # execution engine, and the serving layer stays import-light without it.
    from repro.core.backends.registry import (
        resolve_backend_name,
        select_backend_name,
    )
    from repro.experiments.runner import run_experiment

    # The concrete backend reproducing the rows, mirroring the sweep
    # runner's parent-side resolution — compared against each record's
    # provenance to tell backend drift apart from a bare mismatch.
    if ensemble_size is not None and ensemble_size > 1:
        effective_backend = resolve_backend_name(
            select_backend_name(backend, sweep.backend)
        )
    else:
        effective_backend = "scalar"
    manifest_backend = store.manifest.get("backend")

    results: list[CellReproduction] = []
    for index in selected:
        spec = cells[index]
        regenerated_hash = spec_hash(spec)
        recorded_hash = entries[index].get("spec_hash")
        if recorded_hash != regenerated_hash:
            results.append(
                CellReproduction(
                    index=index,
                    name=spec.name,
                    spec_hash=str(recorded_hash),
                    status="spec-drift",
                    detail=(
                        f"manifest records spec_hash {recorded_hash} but the "
                        f"manifest's own sweep snapshot regenerates "
                        f"{regenerated_hash} — the snapshot and the cell "
                        "list disagree (manifest edited, or the library's "
                        "row-determining behaviour changed)"
                    ),
                )
            )
            continue
        record = records.get(regenerated_hash)
        if record is None:
            results.append(
                CellReproduction(
                    index=index,
                    name=spec.name,
                    spec_hash=regenerated_hash,
                    status="missing",
                    detail="no rows recorded (interrupted sweep?); nothing "
                    "to compare against",
                )
            )
            continue
        if not isinstance(record.get("rows"), list):
            failure = record.get("failure") or {}
            results.append(
                CellReproduction(
                    index=index,
                    name=spec.name,
                    spec_hash=regenerated_hash,
                    status="recorded-failure",
                    detail=(
                        "the sweep quarantined this cell after "
                        f"{failure.get('attempts', '?')} attempt(s): "
                        f"{failure.get('error', 'unknown error')}"
                    ),
                )
            )
            continue
        stored = comparable_rows(record["rows"])
        fresh = comparable_rows(
            run_experiment(
                spec, ensemble_size=ensemble_size, backend=effective_backend
            ).rows
        )
        diffs = diff_rows(stored, fresh, max_diffs=max_diffs)
        if diffs:
            recorded_backend = record.get("backend") or manifest_backend
            if (
                isinstance(recorded_backend, str)
                and recorded_backend != effective_backend
            ):
                results.append(
                    CellReproduction(
                        index=index,
                        name=spec.name,
                        spec_hash=regenerated_hash,
                        status="backend-drift",
                        detail=(
                            f"rows were recorded by the "
                            f"{recorded_backend!r} backend but reproduced by "
                            f"{effective_backend!r}, and {len(diffs)} "
                            f"value(s) differ (showing at most {max_diffs}) "
                            "— backends are pinned bitwise identical, so "
                            "one of them violates the pin"
                        ),
                        diffs=diffs,
                    )
                )
                continue
            results.append(
                CellReproduction(
                    index=index,
                    name=spec.name,
                    spec_hash=regenerated_hash,
                    status="mismatch",
                    detail=f"{len(diffs)} differing value(s) "
                    f"(showing at most {max_diffs})",
                    diffs=diffs,
                )
            )
        else:
            results.append(
                CellReproduction(
                    index=index,
                    name=spec.name,
                    spec_hash=regenerated_hash,
                    status="match",
                )
            )
    return ReproduceReport(directory=str(directory), results=results)


def query_spec_for_point(
    sweep: SweepSpec, tau: float, rho: float, w: int
) -> ExperimentSpec:
    """The spec ``on_miss="compute"`` runs for an off-grid parameter point.

    Inherits everything except the swept parameters from the store's sweep
    (replicates, budgets, variant, measurement knobs) so a computed answer
    is methodologically comparable to the stored cells.  The seed is derived
    deterministically from the sweep seed and the point, so the same query
    against the same store always computes the same answer.
    """
    import hashlib

    config = (
        sweep.base_config.with_horizon(int(w)).with_tau(tau).with_density(rho)
    )
    payload = json.dumps(
        {"seed": sweep.seed, "tau": tau, "rho": rho, "w": int(w)},
        sort_keys=True,
    )
    seed = int.from_bytes(
        hashlib.sha256(payload.encode("utf-8")).digest()[:8], "big"
    ) % (2**63)
    return ExperimentSpec(
        name=f"query[w={int(w)},tau={tau:.4f},p={rho:.3f}]",
        config=config,
        n_replicates=sweep.n_replicates,
        seed=seed,
        max_flips=sweep.max_flips,
        max_steps=sweep.max_steps,
        max_region_radius=sweep.max_region_radius,
        record_trajectory=sweep.record_trajectory,
        record_every=sweep.record_every,
        variant=sweep.variant,
    )
