"""Stdlib HTTP endpoint over the query engine (``repro serve``).

A thin JSON facade on :class:`~repro.serving.query.QueryEngine`, built on
``http.server.ThreadingHTTPServer`` so the library adds no web-framework
dependency.  One engine instance backs all request threads — the store
snapshot is read-only and the answer cache is internally locked, so no
further synchronisation is needed.

Routes (all ``GET``, all ``application/json``):

- ``/query?point=rho=0.4,tau=0.55,w=2`` — answer a parameter-point query.
  Axes may instead be passed as individual parameters (``?rho=0.4&tau=0.55``,
  aliases accepted); ``interpolate=0|1`` overrides the engine default for
  this request.  Errors map to status codes: a malformed or ambiguous query
  is ``400``, a miss under ``on_miss="error"`` is ``404``.
- ``/stats`` — cache hit/miss/eviction counters, store shape, miss policy.
- ``/cells`` — the store's summary cells (what the service can answer from).
- ``/healthz`` — liveness: ``200 {"ok": true}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union
from urllib.parse import parse_qsl, urlsplit

from repro.errors import QueryMiss, ReproError, ServingError
from repro.experiments.io import json_default
from repro.serving.cache import LRUCache
from repro.serving.query import AXIS_ALIASES, QueryEngine
from repro.serving.store import ArtifactStore, PathLike

#: Default bind address and port of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8639


def _request_query(params: dict[str, str]) -> Union[str, dict[str, float]]:
    """The query expressed by a request's parameters.

    ``point=...`` carries a full comma-separated query string; otherwise
    every recognised axis parameter contributes one term.
    """
    if "point" in params:
        return params["point"]
    axes = {
        name: value
        for name, value in params.items()
        if name.lower() in AXIS_ALIASES
    }
    if not axes:
        raise ServingError(
            "no query given — pass ?point=rho=...,tau=...,w=... or "
            "individual axis parameters like ?rho=0.4&tau=0.55"
        )
    try:
        return {name: float(value) for name, value in axes.items()}
    except ValueError as exc:
        raise ServingError(f"non-numeric axis value: {exc}") from None


def _parse_flag(raw: str) -> bool:
    """Interpret a query-string boolean (``1/0/true/false/yes/no``)."""
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ServingError(f"boolean parameter expects 0/1, got {raw!r}")


def make_handler(engine: QueryEngine, quiet: bool = True) -> type:
    """Build the request-handler class bound to one query engine."""

    class QueryServiceHandler(BaseHTTPRequestHandler):
        """Routes GET requests into the shared :class:`QueryEngine`."""

        server_version = "repro-serve/1"

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            """Dispatch on path and reply with a JSON document."""
            url = urlsplit(self.path)
            params = dict(parse_qsl(url.query))
            try:
                if url.path == "/healthz":
                    self._reply(200, {"ok": True})
                elif url.path == "/stats":
                    self._reply(200, engine.stats())
                elif url.path == "/cells":
                    self._reply(200, {"cells": engine.store.cells()})
                elif url.path == "/query":
                    interpolate = None
                    if "interpolate" in params:
                        interpolate = _parse_flag(params["interpolate"])
                    answer = engine.answer(
                        _request_query(params), interpolate=interpolate
                    )
                    self._reply(200, answer)
                else:
                    self._reply(
                        404,
                        {
                            "error": f"unknown path {url.path!r}",
                            "routes": ["/query", "/stats", "/cells",
                                       "/healthz"],
                        },
                    )
            except QueryMiss as exc:
                self._reply(404, {"error": str(exc), "miss": True})
            except ReproError as exc:
                self._reply(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _reply(self, status: int, payload: dict) -> None:
            """Send one JSON response."""
            body = json.dumps(payload, default=json_default).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: object) -> None:
            """Suppress per-request stderr noise unless asked not to."""
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

    return QueryServiceHandler


def make_server(
    store: Union[ArtifactStore, PathLike],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache: Optional[LRUCache] = None,
    interpolate: bool = False,
    on_miss: str = "error",
    max_distance: Optional[float] = None,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-run threaded server over ``store``.

    Pass ``port=0`` to bind an ephemeral port (tests do); the bound address
    is ``server.server_address`` and the engine is reachable as
    ``server.engine``.  The caller owns the lifecycle: ``serve_forever()``
    to run, ``shutdown()`` + ``server_close()`` to stop.
    """
    engine = QueryEngine(
        store,
        cache=cache,
        interpolate=interpolate,
        on_miss=on_miss,
        max_distance=max_distance,
    )
    server = ThreadingHTTPServer(
        (host, port), make_handler(engine, quiet=quiet)
    )
    server.engine = engine
    return server


def serve(
    store: Union[ArtifactStore, PathLike],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **engine_options: object,
) -> None:
    """Blocking convenience wrapper: build a server and run it forever."""
    server = make_server(store, host=host, port=port, **engine_options)
    try:
        server.serve_forever()
    finally:
        server.server_close()
