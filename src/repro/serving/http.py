"""Stdlib HTTP endpoint over the query engine (``repro serve``).

A thin JSON facade on :class:`~repro.serving.query.QueryEngine`, built on
``http.server.ThreadingHTTPServer`` so the library adds no web-framework
dependency.  The handler holds a :class:`~repro.serving.lifecycle.QueryService`
and reads ``service.engine`` exactly once per request — engine swaps by the
refresh poller are a single attribute assignment, so every request resolves
against exactly one store snapshot.

Routes (all ``GET``, all ``application/json``):

- ``/query?point=rho=0.4,tau=0.55,w=2`` — answer a parameter-point query.
  Axes may instead be passed as individual parameters (``?rho=0.4&tau=0.55``,
  aliases accepted); ``interpolate=0|1`` overrides the engine default and
  ``deadline=SECONDS`` bounds how long this request may wait on another
  request's in-flight computation.  Errors map to status codes: a malformed
  or ambiguous query is ``400``, a miss under ``on_miss="error"`` is ``404``,
  a saturated compute gate with nothing to degrade to is ``429`` with a
  ``Retry-After`` header, an expired deadline is ``504``, and a draining
  service is ``503``.
- ``/stats`` — cache hit/miss/eviction/coalesce counters, compute-gate
  counters (inflight/rejected/degraded/timeouts), store shape and
  generation, miss policy, and the service lifecycle gauges.
- ``/cells`` — the store's summary cells (what the service can answer from).
- ``/healthz`` — liveness: ``200 {"ok": true}`` whenever the process is up,
  draining included.
- ``/readyz`` — readiness: ``200`` only while a loaded store snapshot is
  serving and the service is not draining; ``503`` otherwise.  Split from
  liveness so an orchestrator drains traffic without restarting the pod.

Every error response is a structured JSON document — including the paths
``http.server`` normally answers with HTML error pages (oversized request
lines, unsupported methods), via the :meth:`send_error` override — so a
client never has to parse a traceback.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence, Union
from urllib.parse import parse_qsl, urlsplit

from repro.errors import (
    DeadlineExceeded,
    QueryMiss,
    ReproError,
    ServiceOverload,
    ServingError,
)
from repro.experiments.io import json_default
from repro.serving.cache import LRUCache, make_query_cache
from repro.serving.federation import build_engine
from repro.serving.lifecycle import (
    DEFAULT_RETRY_AFTER,
    ComputeGate,
    QueryService,
    StoreWatcher,
)
from repro.serving.query import AXIS_ALIASES
from repro.serving.store import ArtifactStore, PathLike

#: Default bind address and port of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8639

#: The routes the service answers (listed in 404 responses).
ROUTES = ("/query", "/stats", "/cells", "/healthz", "/readyz")


def _request_query(params: dict[str, str]) -> Union[str, dict[str, float]]:
    """The query expressed by a request's parameters.

    ``point=...`` carries a full comma-separated query string; otherwise
    every recognised axis parameter contributes one term.
    """
    if "point" in params:
        return params["point"]
    axes = {
        name: value
        for name, value in params.items()
        if name.lower() in AXIS_ALIASES
    }
    if not axes:
        raise ServingError(
            "no query given — pass ?point=rho=...,tau=...,w=... or "
            "individual axis parameters like ?rho=0.4&tau=0.55"
        )
    try:
        return {name: float(value) for name, value in axes.items()}
    except ValueError as exc:
        raise ServingError(f"non-numeric axis value: {exc}") from None


def _parse_flag(raw: str) -> bool:
    """Interpret a query-string boolean (``1/0/true/false/yes/no``)."""
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ServingError(f"boolean parameter expects 0/1, got {raw!r}")


def _parse_deadline(raw: str) -> float:
    """Interpret the per-request ``deadline`` parameter (positive seconds)."""
    try:
        deadline = float(raw)
    except ValueError:
        raise ServingError(
            f"deadline expects seconds, got {raw!r}"
        ) from None
    if deadline <= 0:
        raise ServingError(f"deadline must be positive, got {deadline}")
    return deadline


class QueryHTTPServer(ThreadingHTTPServer):
    """Threaded server carrying the service state and optional watcher."""

    #: Request threads must not block interpreter exit after a drain.
    daemon_threads = True

    service: QueryService
    watcher: Optional[StoreWatcher] = None

    @property
    def engine(self):
        """The *current* engine snapshot (swapped live by the watcher)."""
        return self.service.engine


def make_handler(service: QueryService, quiet: bool = True) -> type:
    """Build the request-handler class bound to one query service."""

    class QueryServiceHandler(BaseHTTPRequestHandler):
        """Routes GET requests into the shared :class:`QueryService`."""

        server_version = "repro-serve/2"

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            """Dispatch on path and reply with a JSON document."""
            url = urlsplit(self.path)
            # Liveness answers even while draining: the process is up.
            if url.path == "/healthz":
                self._reply(200, {"ok": True, "draining": service.draining})
                return
            if url.path == "/readyz":
                if service.ready():
                    self._reply(200, {"ready": True})
                else:
                    self._reply(
                        503,
                        {"ready": False, "draining": service.draining},
                        close=True,
                    )
                return
            if not service.begin_request():
                self._reply(
                    503,
                    {"error": "service is draining", "draining": True},
                    close=True,
                )
                return
            try:
                self._dispatch(url)
            finally:
                service.end_request()

        def _dispatch(self, url) -> None:
            """Serve one admitted request against one engine snapshot."""
            engine = service.engine
            try:
                params = dict(parse_qsl(url.query))
            except (UnicodeDecodeError, ValueError):
                self._reply(400, {"error": "undecodable query string"})
                return
            try:
                if url.path == "/stats":
                    stats = engine.stats()
                    stats["service"] = service.stats()
                    self._reply(200, stats)
                elif url.path == "/cells":
                    self._reply(200, {"cells": engine.answer_cells()})
                elif url.path == "/query":
                    interpolate = None
                    if "interpolate" in params:
                        interpolate = _parse_flag(params["interpolate"])
                    deadline = None
                    if "deadline" in params:
                        deadline = _parse_deadline(params["deadline"])
                    answer = engine.answer(
                        _request_query(params),
                        interpolate=interpolate,
                        deadline=deadline,
                    )
                    self._reply(200, answer)
                else:
                    self._reply(
                        404,
                        {
                            "error": f"unknown path {url.path!r}",
                            "routes": list(ROUTES),
                        },
                    )
            except QueryMiss as exc:
                self._reply(404, {"error": str(exc), "miss": True})
            except ServiceOverload as exc:
                self._reply(
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={
                        "Retry-After": str(
                            max(1, math.ceil(exc.retry_after))
                        )
                    },
                )
            except DeadlineExceeded as exc:
                self._reply(504, {"error": str(exc), "deadline": True})
            except ReproError as exc:
                self._reply(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                # Still structured JSON, still no traceback on the wire.
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _reply(
            self,
            status: int,
            payload: dict,
            headers: Optional[dict[str, str]] = None,
            close: bool = False,
        ) -> None:
            """Send one JSON response."""
            body = json.dumps(payload, default=json_default).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if close:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)

        def send_error(  # noqa: D102 - http.server API
            self, code, message=None, explain=None
        ) -> None:
            """JSON replacement for ``http.server``'s HTML error pages.

            Covers the failure paths the base class answers before our
            routing runs — oversized request lines (414), malformed request
            syntax (400), unsupported methods (501) — so *every* byte this
            service emits is structured JSON, never a traceback or HTML.
            """
            status = int(code)
            short = self.responses.get(code, ("error",))[0]
            payload = {"error": message or short, "status": status}
            try:
                body = json.dumps(payload).encode("utf-8")
                self.send_response_only(status, short)
                self.send_header("Server", self.version_string())
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.send_header("Connection", "close")
                self.end_headers()
                if self.command != "HEAD" and body:
                    self.wfile.write(body)
            except OSError:  # pragma: no cover - peer already gone
                pass
            self.close_connection = True

        def log_message(self, format: str, *args: object) -> None:
            """Suppress per-request stderr noise unless asked not to."""
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

    return QueryServiceHandler


def make_server(
    store: Union[ArtifactStore, PathLike, Sequence],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache: Optional[LRUCache] = None,
    interpolate: bool = False,
    on_miss: str = "error",
    max_distance: Optional[float] = None,
    quiet: bool = True,
    max_compute: Optional[int] = None,
    retry_after: float = DEFAULT_RETRY_AFTER,
    refresh_interval: Optional[float] = None,
    trust_summary: bool = True,
) -> QueryHTTPServer:
    """A ready-to-run threaded server over one store or a federation.

    ``store`` may be a single directory/:class:`ArtifactStore` or a sequence
    of them (a federation).  ``max_compute`` bounds concurrent on-miss
    simulations (``None`` = unbounded, still counted), ``refresh_interval``
    (seconds) starts the live-store poller that swaps refreshed snapshots
    in, and ``trust_summary=False`` re-derives aggregates from verified
    records only.  Pass ``port=0`` to bind an ephemeral port (tests do); the
    bound address is ``server.server_address``, the live snapshot is
    ``server.engine`` and the lifecycle state ``server.service``.  The
    caller owns the lifecycle: ``serve_forever()`` to run,
    :func:`drain_server` (or ``shutdown()`` + ``server_close()``) to stop.
    """
    if isinstance(store, (ArtifactStore, str)) or hasattr(store, "__fspath__"):
        stores = [store]
    else:
        stores = list(store)
    # An ArtifactStore handle carries its own trust decision (the CLI's
    # --allow-damaged opens damaged stores with trust_summary=False);
    # path-like entries fall back to the keyword.
    members = [
        (s.directory, s.trust_summary)
        if isinstance(s, ArtifactStore)
        else (s, trust_summary)
        for s in stores
    ]
    directories = [directory for directory, _ in members]
    if cache is None:
        cache = make_query_cache()
    gate = ComputeGate(limit=max_compute, retry_after=retry_after)

    def fresh_engine(generation: int):
        """A fully loaded snapshot of the stores at the next generation."""
        return build_engine(
            [
                ArtifactStore(directory, trust_summary=trust)
                for directory, trust in members
            ],
            cache=cache,
            interpolate=interpolate,
            on_miss=on_miss,
            max_distance=max_distance,
            gate=gate,
            generation=generation,
        ).load()

    service = QueryService(fresh_engine(0))
    server = QueryHTTPServer((host, port), make_handler(service, quiet=quiet))
    server.service = service
    server.watcher = None
    if refresh_interval:
        server.watcher = StoreWatcher(
            service,
            directories,
            fresh_engine,
            interval=refresh_interval,
        )
        server.watcher.start()
    return server


def drain_server(
    server: QueryHTTPServer, timeout: Optional[float] = None
) -> bool:
    """Gracefully drain and stop a running server.

    Flips the service unready (new requests get 503, ``/readyz`` fails),
    waits up to ``timeout`` for in-flight requests to finish, then stops the
    accept loop and closes the socket.  Returns whether the drain completed
    before the timeout; the server is stopped either way.  Must be called
    from a different thread than ``serve_forever()``.
    """
    drained = server.service.drain(timeout)
    if server.watcher is not None:
        server.watcher.stop()
    server.shutdown()
    server.server_close()
    return drained


def serve(
    store: Union[ArtifactStore, PathLike, Sequence],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **engine_options: object,
) -> None:
    """Blocking convenience wrapper: build a server and run it forever."""
    server = make_server(store, host=host, port=port, **engine_options)
    try:
        server.serve_forever()
    finally:
        if server.watcher is not None:
            server.watcher.stop()
        server.server_close()
