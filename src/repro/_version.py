"""Version information for the ``repro`` package."""

__version__ = "1.0.0"

#: Short identifier of the reproduced paper.
PAPER = "Omidvar & Franceschetti, Self-organized Segregation on the Grid, PODC 2017"
