"""Initial configuration generators.

Besides the paper's i.i.d. Bernoulli initialisation this module offers the
planted configurations used by the substrate benchmarks: monochromatic blocks
and annuli (firewall experiments), radical regions with a controlled minority
count (Lemma 5 / Lemma 10 experiments) and a couple of classical patterns
(stripes, checkerboard) that are convenient in tests because their happiness
structure is known in closed form.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.neighborhood import annulus_mask, neighborhood_size, square_mask
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.types import AgentType


def random_configuration(config: ModelConfig, seed: SeedLike = None) -> TorusGrid:
    """The paper's initial state: i.i.d. Bernoulli(``config.density``) types."""
    rng = make_rng(seed)
    return TorusGrid.from_random(config.n_rows, config.n_cols, config.density, rng)


def uniform_configuration(config: ModelConfig, agent_type: AgentType) -> TorusGrid:
    """A completely segregated grid of a single agent type."""
    return TorusGrid.filled(config.n_rows, config.n_cols, agent_type)


def checkerboard_configuration(config: ModelConfig) -> TorusGrid:
    """Alternating +1/-1 agents; maximally mixed, useful as a worst case."""
    rows = np.arange(config.n_rows)[:, None]
    cols = np.arange(config.n_cols)[None, :]
    spins = np.where((rows + cols) % 2 == 0, 1, -1).astype(np.int8)
    return TorusGrid(spins)


def striped_configuration(config: ModelConfig, stripe_width: int) -> TorusGrid:
    """Horizontal stripes of alternating type, each ``stripe_width`` rows tall."""
    if stripe_width <= 0:
        raise ConfigurationError(f"stripe_width must be positive, got {stripe_width}")
    rows = np.arange(config.n_rows)[:, None]
    bands = (rows // stripe_width) % 2
    spins = np.where(bands == 0, 1, -1).astype(np.int8)
    spins = np.broadcast_to(spins, (config.n_rows, config.n_cols)).copy()
    return TorusGrid(spins)


def planted_block_configuration(
    config: ModelConfig,
    center: tuple[int, int],
    block_radius: int,
    block_type: AgentType = AgentType.PLUS,
    seed: SeedLike = None,
) -> TorusGrid:
    """Bernoulli background with a monochromatic square block planted at ``center``.

    Used by the firewall / region-of-expansion experiments: the planted block
    plays the role of the monochromatic ``N_{w/2}`` produced by an expandable
    radical region (Lemma 5).
    """
    grid = random_configuration(config, seed)
    grid.set_square(center, block_radius, block_type)
    return grid


def planted_annulus_configuration(
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
    annulus_type: AgentType = AgentType.PLUS,
    interior_type: Optional[AgentType] = None,
    seed: SeedLike = None,
) -> TorusGrid:
    """Bernoulli background with a monochromatic annular firewall planted.

    ``width`` defaults to the paper's firewall width ``sqrt(2) * w``.  When
    ``interior_type`` is given the interior disc is also made monochromatic,
    which reproduces the post-cascade state of Lemma 10.
    """
    if width is None:
        width = math.sqrt(2.0) * config.horizon
    inner_radius = outer_radius - width
    if inner_radius <= 0:
        raise ConfigurationError(
            f"firewall outer radius {outer_radius} is smaller than its width {width}"
        )
    grid = random_configuration(config, seed)
    mask = annulus_mask(
        config.n_rows, config.n_cols, center, inner_radius, outer_radius
    )
    grid.set_mask(mask, annulus_type)
    if interior_type is not None:
        interior = annulus_mask(config.n_rows, config.n_cols, center, 0.0, inner_radius)
        interior &= ~mask
        grid.set_mask(interior, interior_type)
    return grid


def planted_radical_region_configuration(
    config: ModelConfig,
    center: tuple[int, int],
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
    minority_count: Optional[int] = None,
    seed: SeedLike = None,
) -> TorusGrid:
    """Bernoulli background with a radical region planted at ``center``.

    A radical region of the paper is a neighbourhood of radius
    ``(1 + eps') * w`` containing *fewer than* ``tau_hat (1 + eps')^2 N``
    agents of the minority type.  This generator places exactly
    ``minority_count`` minority agents (default: just below the radical
    threshold) uniformly at random inside that window and fills the rest with
    the majority type, giving a configuration from which the cascade of
    Lemma 5 can ignite.
    """
    if epsilon_prime <= 0:
        raise ConfigurationError(
            f"epsilon_prime must be positive, got {epsilon_prime}"
        )
    radius = int(math.floor((1.0 + epsilon_prime) * config.horizon))
    if 2 * radius + 1 > min(config.n_rows, config.n_cols):
        raise ConfigurationError(
            f"radical region of radius {radius} does not fit on the grid"
        )
    n_inside = neighborhood_size(radius)
    threshold = radical_region_threshold(config, epsilon_prime)
    if minority_count is None:
        minority_count = max(threshold - 1, 0)
    if minority_count >= n_inside:
        raise ConfigurationError(
            f"minority_count {minority_count} exceeds the region size {n_inside}"
        )
    rng = make_rng(seed)
    grid = random_configuration(config, rng)
    mask = square_mask(config.n_rows, config.n_cols, center, radius)
    grid.set_mask(mask, majority_type)
    minority_type = majority_type.opposite
    positions = np.flatnonzero(mask.ravel())
    chosen = rng.choice(positions, size=minority_count, replace=False)
    flat = grid.spins.ravel()
    flat[chosen] = int(minority_type)
    return grid


def radical_region_threshold(config: ModelConfig, epsilon_prime: float) -> int:
    """Maximum minority count of a radical region (exclusive bound).

    The paper defines ``tau_hat = tau * (1 - 1 / (tau * N^{1/2 - eps}))`` and a
    radical region as a radius ``(1 + eps') w`` neighbourhood holding fewer
    than ``tau_hat (1 + eps')^2 N`` minority agents.  The technical ``eps``
    exponent only matters asymptotically; we use ``eps = 0`` which gives the
    most conservative (smallest) threshold at finite ``N``.
    """
    n = config.neighborhood_agents
    tau = config.tau
    if tau <= 0:
        return 0
    tau_hat = tau * (1.0 - 1.0 / (tau * math.sqrt(n)))
    tau_hat = max(tau_hat, 0.0)
    return int(math.floor(tau_hat * (1.0 + epsilon_prime) ** 2 * n))


def density_sweep_configurations(
    config: ModelConfig, densities: list[float], seed: SeedLike = None
) -> list[TorusGrid]:
    """One Bernoulli configuration per density, with independent seeds.

    Used by the complete-segregation contrast experiment (E13): the paper
    cites Fontes et al. showing complete segregation for ``p`` close to 1 at
    ``tau = 1/2``, while its own bounds rule it out w.h.p. at ``p = 1/2``.
    """
    rng = make_rng(seed)
    grids = []
    for density in densities:
        child = np.random.default_rng(int(rng.integers(0, 2**63 - 1)))
        grids.append(
            TorusGrid.from_random(config.n_rows, config.n_cols, density, child)
        )
    return grids
