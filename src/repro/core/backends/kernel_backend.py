"""Wrapper turning the single-source kernels into a full backend.

:class:`KernelLoopBackend` owns everything a kernel cannot do itself: the
one-time capture of the engine's flat arrays (refreshed when the engine
rebuilds its runtime tables — tracked by ``engine._runtime_generation``),
the scratch buffers, and the slow-path event loop around
:func:`~repro.core.backends.kernels.step_round_kernel`.  The kernel handles
every fast path; on a block refill or a ziggurat slow path it returns a
status code and this wrapper services the event through
:class:`~repro.rng.BlockedReplicaStreams`' own methods (the same ones the
numpy backend calls), then resumes the kernel at the exact phase it left —
so the rare paths are *shared* with the reference, not reimplemented.

:class:`PythonKernelBackend` runs the kernels interpreted.  It is far
slower than the numpy backend (its value is that it executes the exact
code ``numba`` compiles, so the kernel logic is testable on hosts without
numba) and is therefore never chosen by ``auto`` selection.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.backends import kernels
from repro.core.backends.base import FlipLoopBackend
from repro.errors import StateError
from repro.types import FlipRule, SchedulerKind
from repro.utils.indexset import BatchedIndexSet


class KernelLoopBackend(FlipLoopBackend):
    """Backend driving the three flip-loop kernels over captured arrays.

    Subclasses plug in an execution engine two ways: kernel-dialect
    implementations (interpreted or njit) override :meth:`_get_kernels`;
    foreign implementations (the C backend) override the narrower
    ``_invoke_step`` / ``_invoke_flips`` / ``_invoke_ops`` call seam and keep
    the slow-path event loop — the part that must stay bit-for-bit shared —
    in this one class.
    """

    name = "kernel"

    def _get_kernels(self) -> tuple[Callable, Callable, Callable]:
        """Return ``(step_round, apply_flips, coded_ops)`` callables."""
        raise NotImplementedError

    def attach(self, engine) -> None:
        super().attach(engine)
        self._step_kernel, self._flips_kernel, self._ops_kernel = (
            self._get_kernels()
        )
        r = engine.n_replicas
        area = engine._window_area
        self._out_reps = np.empty(r, dtype=np.int64)
        self._out_flats = np.empty(r, dtype=np.int64)
        self._event = np.empty(3, dtype=np.int64)
        self._win_buf = np.empty(area, dtype=np.int64)
        self._spin_buf = np.empty(area, dtype=np.int8)
        self._same_buf = np.empty(area, dtype=np.int64)
        self._old_code_buf = np.empty(area, dtype=np.int8)
        self._new_code_buf = np.empty(area, dtype=np.int8)
        self._op_rows = np.empty(r * area, dtype=np.int64)
        self._op_indices = np.empty(r * area, dtype=np.int64)
        self._op_toggled = np.empty(r * area, dtype=np.int64)
        self._op_members = np.empty(r * area, dtype=np.int64)
        only_if_happy = engine.flip_rule is FlipRule.ONLY_IF_HAPPY
        self._continuous = engine.scheduler is SchedulerKind.CONTINUOUS
        self._discrete_gate = only_if_happy and not self._continuous
        self._term_offset = r if only_if_happy else 0
        self._sampler_offset = r if (only_if_happy and self._continuous) else 0
        self._captured_generation = -1
        self._capture()

    def _capture(self) -> None:
        """(Re)bind the flat array views the kernels consume.

        Most of the engine's buffers are allocated once and mutated in
        place, but ``recompute_all`` rebuilds the classification LUT, so the
        capture re-runs whenever the engine bumps its runtime generation.
        """
        engine = self.engine
        streams = engine._streams
        self._members_flat, self._positions_flat, self._counts = (
            engine._sets.storage()
        )
        self._words_flat = streams._words.reshape(-1)
        self._pos = streams._pos
        self._has32 = streams._has32
        self._buf32 = streams._buf32
        self._ke = streams._ke
        self._we = streams._we
        if engine._code_lut is None:  # pragma: no cover - no shipped rule
            raise StateError(
                "compiled flip-loop backends require an elementwise "
                "classification rule (code LUT); this variant must use the "
                "numpy backend"
            )
        # Contiguous copy: recompute_all rebinds the LUT, and compiled
        # kernels want one stable 2-row table either way.
        self._code_lut2 = np.ascontiguousarray(engine._code_lut, dtype=np.int8)
        if engine._window_lut is not None:
            self._full_lut = 1
            self._window_lut_flat = engine._window_lut.reshape(-1)
            self._row_lut_flat = np.zeros(1, dtype=np.int64)
            self._col_lut_flat = np.zeros(1, dtype=np.int64)
        else:
            self._full_lut = 0
            self._window_lut_flat = np.zeros(1, dtype=np.int32)
            self._row_lut_flat = engine._row_lut.reshape(-1)
            self._col_lut_flat = engine._col_lut.reshape(-1)
        self._window_side = 2 * engine.config.horizon + 1
        self._captured_generation = engine._runtime_generation

    def _refresh(self) -> None:
        if self._captured_generation != self.engine._runtime_generation:
            self._capture()

    def _invoke_step(
        self, cand: np.ndarray, index: int, phase: int, collected: int
    ) -> int:
        """Run the step kernel over captured arrays; return its status."""
        engine = self.engine
        return self._step_kernel(
            cand,
            cand.size,
            index,
            phase,
            collected,
            self._counts,
            self._members_flat,
            engine._times,
            engine._n_steps,
            engine._code_flat,
            self._words_flat,
            self._pos,
            self._has32,
            self._buf32,
            self._ke,
            self._we,
            engine._streams.block_words,
            engine._n_sites,
            self._term_offset,
            self._sampler_offset,
            1 if self._continuous else 0,
            1 if self._discrete_gate else 0,
            self._out_reps,
            self._out_flats,
            self._event,
        )

    def step_round(self, candidates: np.ndarray) -> np.ndarray:
        self._refresh()
        engine = self.engine
        streams = engine._streams
        cand = np.ascontiguousarray(candidates, dtype=np.int64)
        event = self._event
        index = 0
        phase = kernels.PHASE_START
        collected = 0
        while True:
            status = self._invoke_step(cand, index, phase, collected)
            if status == kernels.STATUS_DONE:
                collected = int(event[2])
                break
            replica = int(event[0])
            index = int(event[1])
            collected = int(event[2])
            if status == kernels.STATUS_ZIGGURAT_SLOW:
                # The kernel consumed the word and bailed before the clock
                # update; replay the draw bitwise and apply the update the
                # way the reference loop does, then resume at the candidate
                # draw.  The sampler size is unchanged — flips land only
                # after the whole round's draws.
                wait = streams._replay_exponential(replica)
                size = int(self._counts[replica + self._sampler_offset])
                engine._times[replica] += (1.0 / size) * wait
                engine._n_steps[replica] += 1
                phase = kernels.PHASE_CANDIDATE
            else:
                streams._refill_until_ready(replica)
                phase = (
                    kernels.PHASE_START
                    if status == kernels.STATUS_REFILL_START
                    else kernels.PHASE_CANDIDATE
                )
        if collected == 0:
            return np.empty(0, dtype=np.int64)
        reps = self._out_reps[:collected].copy()
        flats = self._out_flats[:collected]
        self._apply_flips_captured(reps, flats)
        engine._n_flips[reps] += 1
        return reps

    def apply_flips(
        self,
        reps: np.ndarray,
        flats: np.ndarray,
        bases: Optional[np.ndarray] = None,
    ) -> None:
        self._refresh()
        self._apply_flips_captured(
            np.ascontiguousarray(reps, dtype=np.int64),
            np.ascontiguousarray(flats, dtype=np.int64),
        )

    def _invoke_flips(self, reps: np.ndarray, flats: np.ndarray) -> int:
        """Run the window-update kernel; return the streamed op count."""
        engine = self.engine
        return self._flips_kernel(
            reps,
            flats,
            reps.size,
            engine._spins_flat,
            engine._same_flat,
            engine._code_flat,
            self._full_lut,
            self._window_lut_flat,
            self._row_lut_flat,
            self._col_lut_flat,
            engine.config.n_cols,
            self._window_side,
            engine._window_area,
            engine._center_col,
            engine.config.neighborhood_agents,
            self._code_lut2,
            engine._energies,
            engine._n_plus,
            1 if engine._track_counters else 0,
            self._win_buf,
            self._spin_buf,
            self._same_buf,
            self._old_code_buf,
            self._new_code_buf,
            self._op_rows,
            self._op_indices,
            self._op_toggled,
            self._op_members,
            engine._n_sites,
        )

    def _invoke_ops(self, n_ops: int) -> None:
        """Apply the first ``n_ops`` streamed coded ops to the samplers."""
        engine = self.engine
        self._ops_kernel(
            self._op_rows,
            self._op_indices,
            self._op_toggled,
            self._op_members,
            n_ops,
            self._members_flat,
            self._positions_flat,
            self._counts,
            engine._n_sites,
            engine.n_replicas,
        )

    def _apply_flips_captured(self, reps: np.ndarray, flats: np.ndarray) -> None:
        engine = self.engine
        n_ops = self._invoke_flips(reps, flats)
        if not engine._track_counters:
            engine._counters_stale = True
        if n_ops:
            self._invoke_ops(n_ops)

    def apply_coded_ops(
        self,
        sets: BatchedIndexSet,
        rows: Sequence[int],
        indices: Sequence[int],
        toggled: Sequence[int],
        members: Sequence[int],
        row_offset: int,
    ) -> None:
        step_kernel, flips_kernel, ops_kernel = self._get_kernels()
        members_flat, positions_flat, counts = sets.storage()
        ops_kernel(
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(toggled, dtype=np.int64),
            np.ascontiguousarray(members, dtype=np.int64),
            len(rows),
            members_flat,
            positions_flat,
            counts,
            sets.capacity,
            row_offset,
        )


class PythonKernelBackend(KernelLoopBackend):
    """The kernels run interpreted — slow, universal, and numba's oracle."""

    name = "python"

    def _get_kernels(self) -> tuple[Callable, Callable, Callable]:
        return (
            kernels.step_round_kernel,
            kernels.apply_flips_kernel,
            kernels.coded_ops_kernel,
        )
