"""Pluggable execution backends for the flip-loop hot path.

The engine's innermost layer — the scalar round control plane, the fused
window update, and the coded-op sampler maintenance — runs behind the
:class:`~repro.core.backends.base.FlipLoopBackend` seam.  Four
implementations ship: ``numpy`` (the always-available reference),
``numba`` (JIT of the single-source kernels), ``cffi`` (the same kernels
as compiled C) and ``python`` (the kernels interpreted, for testing the
compiled dialect without a compiler).  All are pinned bitwise identical;
see :mod:`repro.core.backends.registry` for probing and selection.
"""

from repro.core.backends.base import FlipLoopBackend
from repro.core.backends.cffi_backend import CffiBackend, cffi_available
from repro.core.backends.kernel_backend import (
    KernelLoopBackend,
    PythonKernelBackend,
)
from repro.core.backends.numba_backend import NumbaBackend, numba_available
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.backends.registry import (
    AUTO_PREFERENCE,
    BACKEND_ENV_VAR,
    KNOWN_BACKENDS,
    available_backends,
    create_backend,
    default_backend_name,
    resolve_backend_name,
    select_backend_name,
)

__all__ = [
    "AUTO_PREFERENCE",
    "BACKEND_ENV_VAR",
    "KNOWN_BACKENDS",
    "CffiBackend",
    "FlipLoopBackend",
    "KernelLoopBackend",
    "NumbaBackend",
    "NumpyBackend",
    "PythonKernelBackend",
    "available_backends",
    "cffi_available",
    "create_backend",
    "default_backend_name",
    "numba_available",
    "resolve_backend_name",
    "select_backend_name",
]
