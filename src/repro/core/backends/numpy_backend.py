"""The always-available pure-NumPy flip-loop backend.

This is the reference implementation every other backend is pinned against,
extracted verbatim from the pre-seam ``EnsembleDynamics._step_all_scalar`` /
``_apply_flips`` hot path: a scalar round loop over memoryviews of the
batched state (list-speed element access; the per-call dispatch of ~15 tiny
array ops would dominate small rounds), the fused gather-classify-scatter
window kernel as array code, and the sequential coded-op loop on
:class:`~repro.utils.indexset.BatchedIndexSet`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.backends.base import FlipLoopBackend
from repro.types import FlipRule, SchedulerKind
from repro.utils.indexset import BatchedIndexSet


class NumpyBackend(FlipLoopBackend):
    """Pure-NumPy execution of the flip-loop hot path (the reference)."""

    name = "numpy"

    def step_round(self, candidates: np.ndarray) -> np.ndarray:
        """One round's control plane as a single scalar loop (small batches).

        Termination/sampler filtering, the blocked RNG draws (ziggurat fast
        path and Lemire candidate, inlined from
        :meth:`repro.rng.BlockedReplicaStreams.draw_step`), the clock updates
        and the candidate gather all run in one Python loop over memoryviews
        of the batched state.  Draw-for-draw identical to the engine's
        vectorized path — both consume the same blocked buffers the same
        way — so the regimes are interchangeable mid-run.
        """
        engine = self.engine
        only_if_happy = engine.flip_rule is FlipRule.ONLY_IF_HAPPY
        continuous = engine.scheduler is SchedulerKind.CONTINUOUS
        discrete_gate = only_if_happy and not continuous
        n_rep = engine.n_replicas
        n_sites = engine._n_sites
        counts_mv = engine._sets.counts_view()
        members_mv = engine._sets.members_view()
        times_mv = engine._times_mv
        steps_mv = engine._steps_mv
        code_mv = engine._code_mv
        streams = engine._streams
        words_mv, pos_mv, has32_mv, buf32_mv = streams.scalar_views()
        ke_list, we_list = streams.ziggurat_lists()
        block = streams.block_words
        term_offset = n_rep if only_if_happy else 0
        sampler_offset = n_rep if (only_if_happy and continuous) else 0
        reps: list[int] = []
        flats: list[int] = []
        for replica in candidates.tolist():
            if counts_mv[replica + term_offset] == 0:
                continue
            sampler_row = replica + sampler_offset
            size = counts_mv[sampler_row]
            if size == 0:
                continue
            word_base = replica * block
            # Same draw order as GlauberDynamics.step: waiting time first
            # (continuous scheduler only), then the candidate index.
            if continuous:
                position = pos_mv[replica]
                if position >= block:
                    streams._refill_until_ready(replica)
                    position = pos_mv[replica]
                word = words_mv[word_base + position]
                pos_mv[replica] = position + 1
                significand = word >> 11
                layer = (word >> 3) & 0xFF
                if significand < ke_list[layer]:
                    wait = significand * we_list[layer]
                else:
                    wait = streams._replay_exponential(replica)
                times_mv[replica] += (1.0 / size) * wait
            else:
                times_mv[replica] += 1.0
            steps_mv[replica] += 1
            if size > 1:
                if has32_mv[replica]:
                    candidate = buf32_mv[replica]
                    has32_mv[replica] = False
                else:
                    position = pos_mv[replica]
                    if position >= block:
                        streams._refill_until_ready(replica)
                        position = pos_mv[replica]
                    word = words_mv[word_base + position]
                    pos_mv[replica] = position + 1
                    candidate = word & 0xFFFFFFFF
                    buf32_mv[replica] = word >> 32
                    has32_mv[replica] = True
                scaled = candidate * size
                leftover = scaled & 0xFFFFFFFF
                if leftover < size:
                    threshold = ((1 << 32) - size) % size
                    while leftover < threshold:
                        scaled = streams._next32_scalar(replica) * size
                        leftover = scaled & 0xFFFFFFFF
                draw = scaled >> 32
            else:
                draw = 0
            flat = members_mv[sampler_row * n_sites + draw]
            if discrete_gate and not code_mv[replica * n_sites + flat] & 2:
                # Discrete scheduler samples unhappy agents, which may
                # refuse to flip.
                continue
            reps.append(replica)
            flats.append(flat)
        if not reps:
            return np.empty(0, dtype=np.int64)
        rep_arr = np.asarray(reps, dtype=np.int64)
        self.apply_flips(rep_arr, np.asarray(flats, dtype=np.int64))
        engine._n_flips[rep_arr] += 1
        return rep_arr

    def apply_flips(
        self,
        reps: np.ndarray,
        flats: np.ndarray,
        bases: Optional[np.ndarray] = None,
    ) -> None:
        """Flip one site per listed replica — the fused window kernel.

        One gather–classify–scatter pass over all flipping replicas: flat
        window indices come from the precomputed lookup, the incremental
        same-type counts are updated in place (neighbours move by
        ``spin * delta``, the flipped agent is re-scored as
        ``total + 1 - old``), the variant hook reclassifies every touched
        window, and the packed happy/flippable bit codes turn the membership
        delta into one coded operation stream for the batched samplers.
        The (replica, site) pairs are distinct — one flip per replica — so
        the in-place scatters never collide.
        """
        engine = self.engine
        config = engine.config
        total = config.neighborhood_agents

        if bases is None:
            bases = reps * engine._n_sites
        centers = bases + flats
        spins_flat = engine._spins_flat
        new_values = -spins_flat[centers]
        spins_flat[centers] = new_values

        if engine._window_lut is not None:
            win = engine._window_lut[flats]
        else:
            n_cols = config.n_cols
            rows = flats // n_cols
            cols = flats - rows * n_cols
            win = (
                engine._row_lut[rows][:, :, None]
                + engine._col_lut[cols][:, None, :]
            ).reshape(reps.size, engine._window_area)
        gwin = win + bases[:, None]

        sub_spins = spins_flat[gwin]
        sub_same = engine._same_flat[gwin]
        center = engine._center_col
        old_same_center = sub_same[:, center]
        # Incremental per-replica counters, mirroring the O(1) delta of
        # ModelState.apply_flip: every *other* window agent moves by
        # spin * delta and the flipped agent is re-scored under its new type
        # (total + 1 - old same count, for either flip direction).  Both the
        # energy delta and the new centre score read the pre-update centre
        # count, so they are computed before the in-place window update.
        if engine._track_counters:
            engine._energies[reps] += (
                new_values * sub_spins.sum(axis=1, dtype=np.int64)
                + total
                - 2 * old_same_center
            )
            engine._n_plus[reps] += new_values
        else:
            engine._counters_stale = True
        new_center_same = total + 1 - old_same_center
        sub_same += new_values[:, None] * sub_spins
        sub_same[:, center] = new_center_same
        engine._same_flat[gwin] = sub_same

        if engine._code_lut_flat is not None:
            new_code = engine._code_lut_flat[sub_same]
        elif engine._code_lut is not None:
            new_code = engine._code_lut[(sub_spins > 0).view(np.int8), sub_same]
        else:  # pragma: no cover - non-elementwise subclass rules only
            sub_happy, sub_flippable = engine._classify(sub_spins, sub_same)
            new_code = sub_flippable.view(np.int8) << 1
            new_code |= sub_happy.view(np.int8)
        old_code = engine._code_flat[gwin]
        changed = old_code != new_code
        engine._code_flat[gwin] = new_code

        # changed.nonzero() walks the (flip, window) grid row-major: per
        # replica this is exactly ModelState._refresh_window's update order,
        # which keeps the sampler layouts scalar-identical.  Each changed
        # site carries its two-bit toggle/state codes into the samplers'
        # coded-op loop (unhappy op before flippable op, as the scalar
        # update_membership pair does); ``code ^ 1`` turns the happy bit
        # into an unhappy-membership bit so both bits mean "member".
        flip_slot, window_slot = changed.nonzero()
        if flip_slot.size == 0:
            return
        code = new_code[flip_slot, window_slot]
        engine._sets.apply_coded_ops(
            reps[flip_slot].tolist(),
            win[flip_slot, window_slot].tolist(),
            (old_code[flip_slot, window_slot] ^ code).tolist(),
            (code ^ 1).tolist(),
            engine.n_replicas,
        )

    def apply_coded_ops(
        self,
        sets: BatchedIndexSet,
        rows: Sequence[int],
        indices: Sequence[int],
        toggled: Sequence[int],
        members: Sequence[int],
        row_offset: int,
    ) -> None:
        """Delegate to the sequential memoryview loop on the set family."""
        sets.apply_coded_ops(
            list(rows), list(indices), list(toggled), list(members), row_offset
        )
