"""The flip-loop backend protocol.

The ensemble engine's innermost layer — one round's scalar control plane
(termination/sampler filtering, blocked RNG draws, clock updates, candidate
gathers), the fused gather-classify-scatter window kernel, and the coded-op
membership updates on :class:`~repro.utils.indexset.BatchedIndexSet`
storage — is pluggable.  A :class:`FlipLoopBackend` implements exactly those
three operations over the engine's batched arrays; everything above them
(seeding, the run loop, budgets, trajectories, the public result surface)
is shared, so backends can only differ in *how* a round executes, never in
what a round means.

The contract is bitwise: every backend must consume the pre-drawn
:class:`~repro.rng.BlockedReplicaStreams` words in exactly the reference
order and produce bit-identical spins, clocks, counters and sampler layouts
— the same guarantee `ReferenceEnsembleDynamics` pins for the fused engine
itself.  The cross-backend suite in ``tests/test_backends.py`` enforces it
for every backend the host can run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.ensemble import EnsembleDynamics
    from repro.utils.indexset import BatchedIndexSet


class FlipLoopBackend:
    """One execution strategy for the engine's per-round hot path.

    Lifecycle: the registry constructs backends unattached (so capability
    probes and the standalone :meth:`apply_coded_ops` entry point need no
    engine), then :meth:`attach` binds one to a live
    :class:`~repro.core.ensemble.EnsembleDynamics` whose batched arrays it
    will mutate in place.  A backend instance serves exactly one engine.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def attach(self, engine: "EnsembleDynamics") -> None:
        """Bind this backend to ``engine``'s runtime arrays."""
        self.engine = engine

    def step_round(self, candidates: np.ndarray) -> np.ndarray:
        """Advance every candidate replica by one scheduler step.

        The scalar-regime round: per listed replica, termination and sampler
        checks, the blocked RNG draws (waiting time under the continuous
        scheduler, then the Lemire candidate), clock/step updates, the member
        gather and the discrete-scheduler flip gate — then the fused window
        update and per-flip bookkeeping for every replica that flips.
        Returns the array of replica indices that flipped.
        """
        raise NotImplementedError

    def apply_flips(
        self,
        reps: np.ndarray,
        flats: np.ndarray,
        bases: Optional[np.ndarray] = None,
    ) -> None:
        """Flip one site per listed replica — the fused window kernel.

        Gather each flip's neighbourhood window, update the incremental
        same-type counts, reclassify via the engine's code LUT, maintain the
        deferred energy/magnetization counters, and stream the resulting
        membership deltas into the samplers as coded operations.  Used both
        by :meth:`step_round` and by the engine's vectorized large-round
        path.
        """
        raise NotImplementedError

    def apply_coded_ops(
        self,
        sets: "BatchedIndexSet",
        rows: Sequence[int],
        indices: Sequence[int],
        toggled: Sequence[int],
        members: Sequence[int],
        row_offset: int,
    ) -> None:
        """Apply one coded membership-op stream to ``sets``, strictly in order.

        Semantics are exactly
        :meth:`~repro.utils.indexset.BatchedIndexSet.apply_coded_ops` — bit 0
        of ``toggled[k]`` updates row ``rows[k]``, bit 1 updates row
        ``rows[k] + row_offset``, bit 0 before bit 1, ``k`` order preserved.
        Engine-independent so the edge-case suite can drive every backend's
        membership loop against the scalar oracle directly.
        """
        raise NotImplementedError
