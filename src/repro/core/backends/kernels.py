"""Single-source flip-loop kernels: plain Python, numba-compilable.

These functions are the compiled backends' ground truth.  They are written
in the restricted dialect numba's ``njit`` accepts — flat numpy arrays,
explicit ``np.uint64``/``np.int64`` casts (mixed signed/unsigned arithmetic
would silently promote to float64 under numpy's rules, which numba follows),
``while`` loops, no Python objects — and they run unmodified in two modes:

* interpreted, as the ``python`` backend (slow, always available, and what
  the test suite uses to pin the kernel *logic* even on hosts without
  numba);
* JIT-compiled, as the ``numba`` backend (the same bytecode handed to
  ``numba.njit``).

The C implementation in :mod:`repro.core.backends.cffi_backend` mirrors
these functions statement for statement.

Bitwise-exactness rules the kernels obey:

* RNG words are consumed in exactly the order of
  :meth:`repro.rng.BlockedReplicaStreams.draw_step`'s scalar loop — the
  fourth implementation of that word-consumption protocol (see the NOTE
  there); the cross-backend boundary tests pin this copy too.
* The rare slow paths (block refill, ziggurat slow path) are *not*
  reimplemented: the step kernel returns a status code and the Python
  wrapper (:class:`~repro.core.backends.kernel_backend.KernelLoopBackend`)
  services the event through the stream's own methods, then resumes the
  kernel at the exact phase it left.  Fast paths therefore never diverge
  from numpy's own bit streams.
* Floating-point updates use the same IEEE-754 double operations in the
  same order as the numpy reference (``significand * we[layer]``,
  ``times += (1.0 / size) * wait``); no fused or reassociated arithmetic.
"""

from __future__ import annotations

import numpy as np

# Step-kernel status codes: why the kernel returned.
STATUS_DONE = 0
#: Block exhausted before the waiting-time word; nothing consumed yet.
STATUS_REFILL_START = 1
#: Ziggurat fast test failed; the word is consumed, the wrapper replays the
#: draw through the scratch generator and applies the clock update itself.
STATUS_ZIGGURAT_SLOW = 2
#: Block exhausted inside the candidate draw; clock already updated.
STATUS_REFILL_CANDIDATE = 3

# Resume phases: where to re-enter the interrupted replica.
PHASE_START = 0
PHASE_CANDIDATE = 1

# uint64-typed constants: keep every shift/mask in the unsigned domain so
# the interpreted and njit-compiled executions share one promotion story.
_U3 = np.uint64(3)
_U11 = np.uint64(11)
_U32 = np.uint64(32)
_UFF = np.uint64(0xFF)
_U32_MASK = np.uint64(0xFFFFFFFF)
_U32_SPAN = np.uint64(1 << 32)


def step_round_kernel(
    candidates,
    n_candidates,
    start,
    phase,
    n_out,
    counts,
    members,
    times,
    steps,
    code,
    words,
    pos,
    has32,
    buf32,
    ke,
    we,
    block,
    n_sites,
    term_offset,
    sampler_offset,
    continuous,
    discrete_gate,
    out_reps,
    out_flats,
    event,
):
    """One round's scalar control plane over the engine's flat arrays.

    Processes ``candidates[start:n_candidates]`` (resuming at ``phase`` for
    the first one), collecting flips into ``out_reps``/``out_flats`` from
    slot ``n_out``.  Returns a ``STATUS_*`` code; on any non-DONE status
    ``event`` holds ``(replica, candidate_index, n_out)`` so the wrapper can
    service the slow path and resume.  All state mutations (``times``,
    ``steps``, ``pos``, ``has32``/``buf32``) land in place and are exact at
    every return point.
    """
    i = start
    while i < n_candidates:
        replica = candidates[i]
        if counts[replica + term_offset] == 0:
            i += 1
            phase = PHASE_START
            continue
        sampler_row = replica + sampler_offset
        size = counts[sampler_row]
        if size == 0:
            i += 1
            phase = PHASE_START
            continue
        word_base = replica * block
        if phase == PHASE_START:
            # Same draw order as GlauberDynamics.step: waiting time first
            # (continuous scheduler only), then the candidate index.
            if continuous != 0:
                position = pos[replica]
                if position >= block:
                    event[0] = replica
                    event[1] = i
                    event[2] = n_out
                    return STATUS_REFILL_START
                word = words[word_base + position]
                pos[replica] = position + 1
                significand = word >> _U11
                layer = (word >> _U3) & _UFF
                if significand < ke[layer]:
                    wait = np.float64(significand) * we[layer]
                else:
                    event[0] = replica
                    event[1] = i
                    event[2] = n_out
                    return STATUS_ZIGGURAT_SLOW
                times[replica] += (1.0 / np.float64(size)) * wait
            else:
                times[replica] += 1.0
            steps[replica] += 1
        phase = PHASE_START
        if size > 1:
            usize = np.uint64(size)
            scaled = np.uint64(0)
            threshold = np.uint64(0)
            threshold_ready = False
            while True:
                if has32[replica]:
                    cand32 = buf32[replica]
                    has32[replica] = False
                else:
                    position = pos[replica]
                    if position >= block:
                        event[0] = replica
                        event[1] = i
                        event[2] = n_out
                        return STATUS_REFILL_CANDIDATE
                    word = words[word_base + position]
                    pos[replica] = position + 1
                    cand32 = word & _U32_MASK
                    buf32[replica] = word >> _U32
                    has32[replica] = True
                scaled = cand32 * usize
                leftover = scaled & _U32_MASK
                if not threshold_ready:
                    if leftover >= usize:
                        break
                    threshold = (_U32_SPAN - usize) % usize
                    threshold_ready = True
                if leftover >= threshold:
                    break
            draw = np.int64(scaled >> _U32)
        else:
            draw = np.int64(0)
        flat = members[sampler_row * n_sites + draw]
        if discrete_gate != 0 and (code[replica * n_sites + flat] & 2) == 0:
            # Discrete scheduler samples unhappy agents, which may refuse
            # to flip.
            i += 1
            continue
        out_reps[n_out] = replica
        out_flats[n_out] = flat
        n_out += 1
        i += 1
    event[0] = -1
    event[1] = n_candidates
    event[2] = n_out
    return STATUS_DONE


def apply_flips_kernel(
    reps,
    flats,
    n_flips,
    spins,
    same,
    code,
    full_lut,
    window_lut,
    row_lut,
    col_lut,
    n_cols,
    window_side,
    window_area,
    center_col,
    total,
    code_lut,
    energies,
    n_plus,
    track,
    win_buf,
    spin_buf,
    same_buf,
    old_code_buf,
    new_code_buf,
    op_rows,
    op_indices,
    op_toggled,
    op_members,
    n_sites,
):
    """The fused gather-classify-scatter window update, one flip at a time.

    Flips are on distinct replicas (one per round each), so sequential
    per-flip processing is state-identical to the numpy backend's batched
    pass; within a flip the window is snapshot-gathered first and scattered
    in window order, replicating numpy's gather/scatter sequencing exactly.
    The membership deltas are streamed into ``op_*`` (coded-op quadruples in
    the numpy backend's ``(flip, window)`` row-major order) for
    :func:`coded_ops_kernel`; returns the op count.
    """
    n_ops = 0
    for k in range(n_flips):
        rep = reps[k]
        flat = flats[k]
        base = rep * n_sites
        center = base + flat
        new_value = spins[center]
        new_value = -new_value
        spins[center] = new_value
        if full_lut != 0:
            wbase = flat * window_area
            for j in range(window_area):
                win_buf[j] = window_lut[wbase + j]
        else:
            row = flat // n_cols
            col = flat - row * n_cols
            rbase = row * window_side
            cbase = col * window_side
            for a in range(window_side):
                roff = row_lut[rbase + a]
                abase = a * window_side
                for b in range(window_side):
                    win_buf[abase + b] = roff + col_lut[cbase + b]
        dv = np.int64(new_value)
        spin_sum = np.int64(0)
        for j in range(window_area):
            g = base + win_buf[j]
            s = spins[g]
            spin_buf[j] = s
            same_buf[j] = same[g]
            spin_sum += s
        old_center = same_buf[center_col]
        # Incremental per-replica counters: the O(1) delta of
        # ModelState.apply_flip, computed from the pre-update centre count.
        if track != 0:
            energies[rep] += dv * spin_sum + total - 2 * old_center
            n_plus[rep] += dv
        for j in range(window_area):
            same_buf[j] = same_buf[j] + dv * spin_buf[j]
        same_buf[center_col] = total + 1 - old_center
        for j in range(window_area):
            g = base + win_buf[j]
            same[g] = same_buf[j]
            spin_row = 1 if spin_buf[j] > 0 else 0
            new_code = code_lut[spin_row, same_buf[j]]
            new_code_buf[j] = new_code
            old_code_buf[j] = code[g]
            code[g] = new_code
        for j in range(window_area):
            old_code = old_code_buf[j]
            new_code = new_code_buf[j]
            if old_code == new_code:
                continue
            op_rows[n_ops] = rep
            op_indices[n_ops] = win_buf[j]
            op_toggled[n_ops] = old_code ^ new_code
            op_members[n_ops] = new_code ^ 1
            n_ops += 1
    return n_ops


def coded_ops_kernel(
    rows,
    indices,
    toggled,
    member_codes,
    n_ops,
    members,
    positions,
    counts,
    capacity,
    row_offset,
):
    """Paired swap-remove membership updates driven by two-bit codes.

    Statement-for-statement the loop of
    :meth:`repro.utils.indexset.BatchedIndexSet.apply_coded_ops` over the
    flat backing arrays: for op ``k``, bit ``b`` of ``toggled[k]`` sets the
    membership of ``indices[k]`` in row ``rows[k] + b * row_offset`` to bit
    ``b`` of ``member_codes[k]``, ``k`` order preserved, bit 0 before bit 1.
    """
    offset_base = row_offset * capacity
    for k in range(n_ops):
        row = rows[k]
        index = indices[k]
        toggle = toggled[k]
        member = member_codes[k]
        base = row * capacity
        if toggle & 1:
            target = base + index
            position = positions[target]
            if member & 1:
                if position < 0:
                    count = counts[row]
                    members[base + count] = index
                    positions[target] = count
                    counts[row] = count + 1
            elif position >= 0:
                count = counts[row] - 1
                counts[row] = count
                last = members[base + count]
                members[base + position] = last
                positions[base + last] = position
                positions[target] = -1
        if toggle & 2:
            pair_row = row + row_offset
            pair_base = base + offset_base
            target = pair_base + index
            position = positions[target]
            if member & 2:
                if position < 0:
                    count = counts[pair_row]
                    members[pair_base + count] = index
                    positions[target] = count
                    counts[pair_row] = count + 1
            elif position >= 0:
                count = counts[pair_row] - 1
                counts[pair_row] = count
                last = members[pair_base + count]
                members[pair_base + position] = last
                positions[pair_base + last] = position
                positions[target] = -1
    return 0
