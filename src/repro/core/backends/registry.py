"""Backend registry: capability probing, selection precedence, fallback.

The registry is the single decision point for which
:class:`~repro.core.backends.base.FlipLoopBackend` a run uses:

* :func:`available_backends` probes what this host can actually run —
  ``numpy`` and ``python`` always, ``numba`` when the package imports,
  ``cffi`` when a C compiler can build and load the kernel library.
* :func:`select_backend_name` applies the selection precedence
  **CLI > environment (``REPRO_BACKEND``) > spec > auto** and returns the
  winning *request*.
* :func:`resolve_backend_name` turns a request into a concrete available
  backend: ``auto`` prefers compiled backends (``numba`` then ``cffi``)
  and otherwise takes ``numpy``; a known-but-unavailable request degrades
  to ``numpy`` with a single warning per process per name — never an
  exception — while an unknown name is a hard
  :class:`~repro.errors.ConfigurationError` (typo, not capability).

``python`` is deliberately excluded from ``auto``: it exists to execute
the numba kernel source interpreted (testability), not to win races.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.core.backends.base import FlipLoopBackend
from repro.core.backends.cffi_backend import CffiBackend, cffi_available
from repro.core.backends.kernel_backend import PythonKernelBackend
from repro.core.backends.numba_backend import NumbaBackend, numba_available
from repro.core.backends.numpy_backend import NumpyBackend
from repro.errors import ConfigurationError

#: Environment variable consulted between the CLI flag and the spec field.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Every name the registry understands, in documentation order.
KNOWN_BACKENDS = ("auto", "numpy", "numba", "cffi", "python")

#: ``auto``'s preference order among available backends.
AUTO_PREFERENCE = ("numba", "cffi", "numpy")

_BACKEND_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cffi": CffiBackend,
    "python": PythonKernelBackend,
}

_warned_fallbacks: set[str] = set()


def available_backends() -> tuple[str, ...]:
    """Names of the backends this host can run, in registry order."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    if cffi_available():
        names.append("cffi")
    names.append("python")
    return tuple(names)


def default_backend_name() -> str:
    """The backend ``auto`` resolves to on this host."""
    available = available_backends()
    for name in AUTO_PREFERENCE:
        if name in available:
            return name
    return "numpy"


def select_backend_name(
    requested: Optional[str] = None, spec: Optional[str] = None
) -> str:
    """Apply the selection precedence CLI > env > spec > auto.

    ``requested`` is the strongest channel (a CLI flag or an explicit
    keyword argument), the ``REPRO_BACKEND`` environment variable comes
    next, then the spec's persisted ``backend`` field; empty strings count
    as unset at every level.  The returned name is a *request* — pass it
    through :func:`resolve_backend_name` to land on something runnable.
    """
    for value in (requested, os.environ.get(BACKEND_ENV_VAR), spec):
        if value:
            return value
    return "auto"


def resolve_backend_name(name: Optional[str]) -> str:
    """Concretize a backend request into an available backend's name.

    ``None``/empty/``auto`` take the host's best available backend.  A
    known backend that this host cannot run degrades to ``numpy`` and
    warns once per process per name; an unknown name raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if not name or name == "auto":
        return default_backend_name()
    if name not in _BACKEND_CLASSES:
        raise ConfigurationError(
            f"unknown backend {name!r}; known backends: "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    if name not in available_backends():
        if name not in _warned_fallbacks:
            _warned_fallbacks.add(name)
            warnings.warn(
                f"backend {name!r} is not available on this host; "
                f"falling back to 'numpy'",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    return name


def create_backend(name: Optional[str]) -> FlipLoopBackend:
    """Instantiate the backend for ``name`` (resolving requests first).

    Every call returns a fresh, unattached instance: a backend serves
    exactly one engine, so engines never share capture state.
    """
    return _BACKEND_CLASSES[resolve_backend_name(name)]()
