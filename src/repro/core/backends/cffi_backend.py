"""Ahead-of-time C flip-loop backend (``cffi`` ABI mode + the system cc).

The container this project targets ships a C toolchain but not numba, so
the compiled-backend acceptance bar is carried by a small C translation
unit that mirrors :mod:`repro.core.backends.kernels` statement for
statement (same draw order, same IEEE-754 double expressions, no
``-ffast-math``).  At first use the source is compiled with the system C
compiler into a shared object cached under a per-user temp directory keyed
by the source hash — so the compile cost is paid once per machine, not per
process — and loaded through ``cffi``'s ABI-mode ``dlopen``.

The hot-call overhead problem (a round at R=8 lasts microseconds; marshaling
~30 array arguments through cffi per call would swamp the kernel) is solved
with a pointer-capture struct: :class:`CffiBackend` fills a ``repro_state``
struct with raw pointers into the engine's arrays once per runtime
generation, and each round passes that single struct pointer.  The struct is
rebuilt by the :class:`~repro.core.backends.kernel_backend.KernelLoopBackend`
capture hook whenever the engine bumps ``_runtime_generation``, which is
what makes holding raw pointers safe.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.backends.kernel_backend import KernelLoopBackend
from repro.utils.indexset import BatchedIndexSet

_CDEF = """
typedef struct {
    int64_t *counts;
    int64_t *members;
    int64_t *positions;
    double *times;
    int64_t *steps;
    int8_t *code;
    uint64_t *words;
    int64_t *pos;
    uint8_t *has32;
    uint64_t *buf32;
    uint64_t *ke;
    double *we;
    int64_t block;
    int64_t n_sites;
    int64_t n_replicas;
    int64_t term_offset;
    int64_t sampler_offset;
    int64_t continuous;
    int64_t discrete_gate;
    int64_t *out_reps;
    int64_t *out_flats;
    int64_t *event;
    int8_t *spins;
    int64_t *same;
    int64_t full_lut;
    int32_t *window_lut;
    int64_t *row_lut;
    int64_t *col_lut;
    int64_t n_cols;
    int64_t window_side;
    int64_t window_area;
    int64_t center_col;
    int64_t total;
    int8_t *code_lut;
    int64_t lut_stride;
    int64_t *energies;
    int64_t *n_plus;
    int64_t *win_buf;
    int8_t *spin_buf;
    int64_t *same_buf;
    int8_t *old_code_buf;
    int8_t *new_code_buf;
    int64_t *op_rows;
    int64_t *op_indices;
    int64_t *op_toggled;
    int64_t *op_members;
} repro_state;

int64_t repro_step_round(repro_state *st, const int64_t *candidates,
                         int64_t n_candidates, int64_t start, int64_t phase,
                         int64_t n_out);
int64_t repro_apply_flips(repro_state *st, const int64_t *reps,
                          const int64_t *flats, int64_t n_flips,
                          int64_t track);
void repro_coded_ops(const int64_t *rows, const int64_t *indices,
                     const int64_t *toggled, const int64_t *member_codes,
                     int64_t n_ops, int64_t *members, int64_t *positions,
                     int64_t *counts, int64_t capacity, int64_t row_offset);
int64_t repro_selfcheck(void);
"""

# The C mirror of kernels.py.  Any change here must change kernels.py too
# (and vice versa) — the cross-backend bitwise suite is the enforcement.
_SOURCE = (
    "#include <stdint.h>\n"
    + _CDEF
    + r"""
#define STATUS_DONE 0
#define STATUS_REFILL_START 1
#define STATUS_ZIGGURAT_SLOW 2
#define STATUS_REFILL_CANDIDATE 3
#define PHASE_START 0

int64_t repro_step_round(repro_state *st, const int64_t *candidates,
                         int64_t n_candidates, int64_t start, int64_t phase,
                         int64_t n_out)
{
    int64_t i = start;
    while (i < n_candidates) {
        int64_t replica = candidates[i];
        if (st->counts[replica + st->term_offset] == 0) {
            i += 1;
            phase = PHASE_START;
            continue;
        }
        int64_t sampler_row = replica + st->sampler_offset;
        int64_t size = st->counts[sampler_row];
        if (size == 0) {
            i += 1;
            phase = PHASE_START;
            continue;
        }
        int64_t word_base = replica * st->block;
        if (phase == PHASE_START) {
            /* Waiting time first (continuous scheduler), then candidate. */
            if (st->continuous != 0) {
                int64_t position = st->pos[replica];
                if (position >= st->block) {
                    st->event[0] = replica;
                    st->event[1] = i;
                    st->event[2] = n_out;
                    return STATUS_REFILL_START;
                }
                uint64_t word = st->words[word_base + position];
                st->pos[replica] = position + 1;
                uint64_t significand = word >> 11;
                uint64_t layer = (word >> 3) & 0xFFu;
                double wait;
                if (significand < st->ke[layer]) {
                    wait = (double)significand * st->we[layer];
                } else {
                    st->event[0] = replica;
                    st->event[1] = i;
                    st->event[2] = n_out;
                    return STATUS_ZIGGURAT_SLOW;
                }
                st->times[replica] += (1.0 / (double)size) * wait;
            } else {
                st->times[replica] += 1.0;
            }
            st->steps[replica] += 1;
        }
        phase = PHASE_START;
        int64_t draw;
        if (size > 1) {
            uint64_t usize = (uint64_t)size;
            uint64_t scaled = 0;
            uint64_t threshold = 0;
            int threshold_ready = 0;
            for (;;) {
                uint64_t cand32;
                if (st->has32[replica]) {
                    cand32 = st->buf32[replica];
                    st->has32[replica] = 0;
                } else {
                    int64_t position = st->pos[replica];
                    if (position >= st->block) {
                        st->event[0] = replica;
                        st->event[1] = i;
                        st->event[2] = n_out;
                        return STATUS_REFILL_CANDIDATE;
                    }
                    uint64_t word = st->words[word_base + position];
                    st->pos[replica] = position + 1;
                    cand32 = word & 0xFFFFFFFFULL;
                    st->buf32[replica] = word >> 32;
                    st->has32[replica] = 1;
                }
                scaled = cand32 * usize;
                uint64_t leftover = scaled & 0xFFFFFFFFULL;
                if (!threshold_ready) {
                    if (leftover >= usize)
                        break;
                    threshold = (0x100000000ULL - usize) % usize;
                    threshold_ready = 1;
                }
                if (leftover >= threshold)
                    break;
            }
            draw = (int64_t)(scaled >> 32);
        } else {
            draw = 0;
        }
        int64_t flat = st->members[sampler_row * st->n_sites + draw];
        if (st->discrete_gate != 0
            && (st->code[replica * st->n_sites + flat] & 2) == 0) {
            /* Discrete scheduler samples unhappy agents; may refuse. */
            i += 1;
            continue;
        }
        st->out_reps[n_out] = replica;
        st->out_flats[n_out] = flat;
        n_out += 1;
        i += 1;
    }
    st->event[0] = -1;
    st->event[1] = n_candidates;
    st->event[2] = n_out;
    return STATUS_DONE;
}

int64_t repro_apply_flips(repro_state *st, const int64_t *reps,
                          const int64_t *flats, int64_t n_flips,
                          int64_t track)
{
    int64_t n_ops = 0;
    for (int64_t k = 0; k < n_flips; k++) {
        int64_t rep = reps[k];
        int64_t flat = flats[k];
        int64_t base = rep * st->n_sites;
        int64_t center = base + flat;
        int8_t new_value = (int8_t)(-st->spins[center]);
        st->spins[center] = new_value;
        if (st->full_lut != 0) {
            int64_t wbase = flat * st->window_area;
            for (int64_t j = 0; j < st->window_area; j++)
                st->win_buf[j] = st->window_lut[wbase + j];
        } else {
            int64_t row = flat / st->n_cols;
            int64_t col = flat - row * st->n_cols;
            int64_t rbase = row * st->window_side;
            int64_t cbase = col * st->window_side;
            for (int64_t a = 0; a < st->window_side; a++) {
                int64_t roff = st->row_lut[rbase + a];
                int64_t abase = a * st->window_side;
                for (int64_t b = 0; b < st->window_side; b++)
                    st->win_buf[abase + b] = roff + st->col_lut[cbase + b];
            }
        }
        int64_t dv = (int64_t)new_value;
        int64_t spin_sum = 0;
        for (int64_t j = 0; j < st->window_area; j++) {
            int64_t g = base + st->win_buf[j];
            int8_t s = st->spins[g];
            st->spin_buf[j] = s;
            st->same_buf[j] = st->same[g];
            spin_sum += s;
        }
        int64_t old_center = st->same_buf[st->center_col];
        /* Incremental counters from the pre-update centre count. */
        if (track != 0) {
            st->energies[rep] += dv * spin_sum + st->total - 2 * old_center;
            st->n_plus[rep] += dv;
        }
        for (int64_t j = 0; j < st->window_area; j++)
            st->same_buf[j] = st->same_buf[j] + dv * st->spin_buf[j];
        st->same_buf[st->center_col] = st->total + 1 - old_center;
        for (int64_t j = 0; j < st->window_area; j++) {
            int64_t g = base + st->win_buf[j];
            st->same[g] = st->same_buf[j];
            int64_t spin_row = st->spin_buf[j] > 0 ? 1 : 0;
            int8_t new_code =
                st->code_lut[spin_row * st->lut_stride + st->same_buf[j]];
            st->new_code_buf[j] = new_code;
            st->old_code_buf[j] = st->code[g];
            st->code[g] = new_code;
        }
        for (int64_t j = 0; j < st->window_area; j++) {
            int8_t old_code = st->old_code_buf[j];
            int8_t new_code = st->new_code_buf[j];
            if (old_code == new_code)
                continue;
            st->op_rows[n_ops] = rep;
            st->op_indices[n_ops] = st->win_buf[j];
            st->op_toggled[n_ops] = old_code ^ new_code;
            st->op_members[n_ops] = new_code ^ 1;
            n_ops += 1;
        }
    }
    return n_ops;
}

void repro_coded_ops(const int64_t *rows, const int64_t *indices,
                     const int64_t *toggled, const int64_t *member_codes,
                     int64_t n_ops, int64_t *members, int64_t *positions,
                     int64_t *counts, int64_t capacity, int64_t row_offset)
{
    int64_t offset_base = row_offset * capacity;
    for (int64_t k = 0; k < n_ops; k++) {
        int64_t row = rows[k];
        int64_t index = indices[k];
        int64_t toggle = toggled[k];
        int64_t member = member_codes[k];
        int64_t base = row * capacity;
        if (toggle & 1) {
            int64_t target = base + index;
            int64_t position = positions[target];
            if (member & 1) {
                if (position < 0) {
                    int64_t count = counts[row];
                    members[base + count] = index;
                    positions[target] = count;
                    counts[row] = count + 1;
                }
            } else if (position >= 0) {
                int64_t count = counts[row] - 1;
                counts[row] = count;
                int64_t last = members[base + count];
                members[base + position] = last;
                positions[base + last] = position;
                positions[target] = -1;
            }
        }
        if (toggle & 2) {
            int64_t pair_row = row + row_offset;
            int64_t pair_base = base + offset_base;
            int64_t target = pair_base + index;
            int64_t position = positions[target];
            if (member & 2) {
                if (position < 0) {
                    int64_t count = counts[pair_row];
                    members[pair_base + count] = index;
                    positions[target] = count;
                    counts[pair_row] = count + 1;
                }
            } else if (position >= 0) {
                int64_t count = counts[pair_row] - 1;
                counts[pair_row] = count;
                int64_t last = members[pair_base + count];
                members[pair_base + position] = last;
                positions[pair_base + last] = position;
                positions[target] = -1;
            }
        }
    }
}

int64_t repro_selfcheck(void)
{
    /* Probe the double semantics the bitwise contract needs: exact
       uint64 -> double conversion below 2^53 (the ziggurat significand is
       53 bits) and a round-to-nearest reciprocal-scale product matching
       the IEEE value numpy computes for the same expression. */
    uint64_t big = ((uint64_t)1 << 53) - 1;
    if ((uint64_t)(double)big != big)
        return 1;
    double scale = 1.0 / (double)86;
    if (scale * 9007199254740991.0 != 0x1.7d05f417d05f3p+46)
        return 2;
    return 0;
}
"""
)

_CACHE: dict[str, object] = {}
_UNAVAILABLE_REASON: Optional[str] = None


def _find_compiler() -> Optional[str]:
    """Locate a C compiler, honouring ``CC`` then common names."""
    env_cc = os.environ.get("CC")
    if env_cc:
        found = shutil.which(env_cc)
        if found:
            return found
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _library_path() -> str:
    """Per-user cache path for the compiled shared object, hash-keyed."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    try:
        uid = os.getuid()
    except AttributeError:  # pragma: no cover - non-posix
        uid = 0
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-cffi-{uid}"
    )
    os.makedirs(cache_dir, mode=0o700, exist_ok=True)
    return os.path.join(cache_dir, f"libreproflip-{digest}.so")


def _load_library():
    """Compile (if needed) and dlopen the kernel library; memoized.

    Raises ``RuntimeError`` with the underlying reason on any failure; the
    availability probe converts that into a clean "not available".
    """
    if "lib" in _CACHE:
        return _CACHE["ffi"], _CACHE["lib"]
    try:
        import cffi
    except ImportError as exc:  # pragma: no cover - cffi ships with image
        raise RuntimeError(f"cffi not importable: {exc}") from exc
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    so_path = _library_path()
    if not os.path.exists(so_path):
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
        with tempfile.TemporaryDirectory(
            dir=os.path.dirname(so_path)
        ) as build_dir:
            c_path = os.path.join(build_dir, "reproflip.c")
            with open(c_path, "w", encoding="utf-8") as handle:
                handle.write(_SOURCE)
            tmp_so = os.path.join(build_dir, "libreproflip.so")
            proc = subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"C compile failed ({compiler}): {proc.stderr.strip()[:500]}"
                )
            # Atomic publish so concurrent sweep workers race benignly.
            os.replace(tmp_so, so_path)
    lib = ffi.dlopen(so_path)
    check = lib.repro_selfcheck()
    if check != 0:
        raise RuntimeError(f"compiled kernel failed self-check ({check})")
    _CACHE["ffi"] = ffi
    _CACHE["lib"] = lib
    return ffi, lib


def cffi_available() -> bool:
    """True when the C backend can compile and load on this host (memoized)."""
    global _UNAVAILABLE_REASON
    if "lib" in _CACHE:
        return True
    if _UNAVAILABLE_REASON is not None:
        return False
    try:
        _load_library()
        return True
    except (RuntimeError, OSError, subprocess.TimeoutExpired) as exc:
        _UNAVAILABLE_REASON = str(exc)
        return False


def cffi_unavailable_reason() -> Optional[str]:
    """Why the C backend is unavailable, or ``None`` when it is usable."""
    cffi_available()
    return _UNAVAILABLE_REASON


class CffiBackend(KernelLoopBackend):
    """The flip-loop kernels as compiled C behind a pointer-capture struct."""

    name = "cffi"

    def _get_kernels(self) -> tuple[Callable, Callable, Callable]:
        """The C entry points replace the kernel trio; nothing to bind."""
        return (None, None, None)

    def _capture(self) -> None:
        super()._capture()
        ffi, lib = _load_library()
        self._ffi = ffi
        self._lib = lib
        engine = self.engine
        st = ffi.new("repro_state *")
        ptr = self._ptr
        st.counts = ptr("int64_t *", self._counts)
        st.members = ptr("int64_t *", self._members_flat)
        st.positions = ptr("int64_t *", self._positions_flat)
        st.times = ptr("double *", engine._times)
        st.steps = ptr("int64_t *", engine._n_steps)
        st.code = ptr("int8_t *", engine._code_flat)
        st.words = ptr("uint64_t *", self._words_flat)
        st.pos = ptr("int64_t *", self._pos)
        st.has32 = ptr("uint8_t *", self._has32)
        st.buf32 = ptr("uint64_t *", self._buf32)
        st.ke = ptr("uint64_t *", self._ke)
        st.we = ptr("double *", self._we)
        st.block = engine._streams.block_words
        st.n_sites = engine._n_sites
        st.n_replicas = engine.n_replicas
        st.term_offset = self._term_offset
        st.sampler_offset = self._sampler_offset
        st.continuous = 1 if self._continuous else 0
        st.discrete_gate = 1 if self._discrete_gate else 0
        st.out_reps = ptr("int64_t *", self._out_reps)
        st.out_flats = ptr("int64_t *", self._out_flats)
        st.event = ptr("int64_t *", self._event)
        st.spins = ptr("int8_t *", engine._spins_flat)
        st.same = ptr("int64_t *", engine._same_flat)
        st.full_lut = self._full_lut
        st.window_lut = ptr("int32_t *", self._window_lut_flat)
        st.row_lut = ptr("int64_t *", self._row_lut_flat)
        st.col_lut = ptr("int64_t *", self._col_lut_flat)
        st.n_cols = engine.config.n_cols
        st.window_side = self._window_side
        st.window_area = engine._window_area
        st.center_col = engine._center_col
        st.total = engine.config.neighborhood_agents
        st.code_lut = ptr("int8_t *", self._code_lut2)
        st.lut_stride = self._code_lut2.shape[1]
        st.energies = ptr("int64_t *", engine._energies)
        st.n_plus = ptr("int64_t *", engine._n_plus)
        st.win_buf = ptr("int64_t *", self._win_buf)
        st.spin_buf = ptr("int8_t *", self._spin_buf)
        st.same_buf = ptr("int64_t *", self._same_buf)
        st.old_code_buf = ptr("int8_t *", self._old_code_buf)
        st.new_code_buf = ptr("int8_t *", self._new_code_buf)
        st.op_rows = ptr("int64_t *", self._op_rows)
        st.op_indices = ptr("int64_t *", self._op_indices)
        st.op_toggled = ptr("int64_t *", self._op_toggled)
        st.op_members = ptr("int64_t *", self._op_members)
        self._state = st
        self._step_fn = lib.repro_step_round
        self._flips_fn = lib.repro_apply_flips

    def _ptr(self, ctype: str, array: np.ndarray):
        """Raw pointer into ``array``'s buffer (writable, zero-copy)."""
        return self._ffi.cast(ctype, self._ffi.from_buffer(array))

    def _invoke_step(
        self, cand: np.ndarray, index: int, phase: int, collected: int
    ) -> int:
        cand_ptr = self._ffi.cast(
            "const int64_t *", self._ffi.from_buffer(cand)
        )
        return self._step_fn(
            self._state, cand_ptr, cand.size, index, phase, collected
        )

    def _invoke_flips(self, reps: np.ndarray, flats: np.ndarray) -> int:
        ffi = self._ffi
        return self._flips_fn(
            self._state,
            ffi.cast("const int64_t *", ffi.from_buffer(reps)),
            ffi.cast("const int64_t *", ffi.from_buffer(flats)),
            reps.size,
            1 if self.engine._track_counters else 0,
        )

    def _invoke_ops(self, n_ops: int) -> None:
        ffi = self._ffi
        engine = self.engine
        self._lib.repro_coded_ops(
            self._state.op_rows,
            self._state.op_indices,
            self._state.op_toggled,
            self._state.op_members,
            n_ops,
            self._state.members,
            self._state.positions,
            self._state.counts,
            engine._n_sites,
            engine.n_replicas,
        )

    def apply_coded_ops(
        self,
        sets: BatchedIndexSet,
        rows: Sequence[int],
        indices: Sequence[int],
        toggled: Sequence[int],
        members: Sequence[int],
        row_offset: int,
    ) -> None:
        ffi, lib = _load_library()
        members_flat, positions_flat, counts = sets.storage()
        row_arr = np.ascontiguousarray(rows, dtype=np.int64)
        idx_arr = np.ascontiguousarray(indices, dtype=np.int64)
        tog_arr = np.ascontiguousarray(toggled, dtype=np.int64)
        mem_arr = np.ascontiguousarray(members, dtype=np.int64)
        lib.repro_coded_ops(
            ffi.cast("const int64_t *", ffi.from_buffer(row_arr)),
            ffi.cast("const int64_t *", ffi.from_buffer(idx_arr)),
            ffi.cast("const int64_t *", ffi.from_buffer(tog_arr)),
            ffi.cast("const int64_t *", ffi.from_buffer(mem_arr)),
            len(row_arr),
            ffi.cast("int64_t *", ffi.from_buffer(members_flat)),
            ffi.cast("int64_t *", ffi.from_buffer(positions_flat)),
            ffi.cast("int64_t *", ffi.from_buffer(counts)),
            sets.capacity,
            row_offset,
        )
