"""JIT-compiled flip-loop backend (``numba``).

Hands the three single-source kernels from
:mod:`repro.core.backends.kernels` to ``numba.njit`` unchanged — no
numba-specific code paths exist, so the interpreted ``python`` backend and
this one execute literally the same function bodies.  The import is guarded:
on hosts without numba the backend reports unavailable and the registry
falls back (with a single warning when it was explicitly requested).

Compilation is lazy and cached per process: the first engine to attach pays
the JIT cost (``cache=True`` additionally persists the machine code across
processes when the filesystem allows it), later engines reuse the
dispatchers.
"""

from __future__ import annotations

import importlib.util
from typing import Callable, Optional

from repro.core.backends import kernels
from repro.core.backends.kernel_backend import KernelLoopBackend

_COMPILED: Optional[tuple[Callable, Callable, Callable]] = None


def numba_available() -> bool:
    """True when the ``numba`` package is importable on this host."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - broken metadata
        return False


def compiled_kernels() -> tuple[Callable, Callable, Callable]:
    """Return the njit-wrapped ``(step, flips, coded_ops)`` kernel triple.

    Raises ``ImportError`` when numba is missing; the registry's
    availability probe keeps that from escaping normal selection paths.
    """
    global _COMPILED
    if _COMPILED is None:
        import numba

        try:
            jit = numba.njit(cache=True)
        except TypeError:  # pragma: no cover - very old numba
            jit = numba.njit
        _COMPILED = (
            jit(kernels.step_round_kernel),
            jit(kernels.apply_flips_kernel),
            jit(kernels.coded_ops_kernel),
        )
    return _COMPILED


class NumbaBackend(KernelLoopBackend):
    """The single-source kernels, JIT-compiled by ``numba.njit``."""

    name = "numba"

    def _get_kernels(self) -> tuple[Callable, Callable, Callable]:
        return compiled_kernels()
