"""Vectorized multi-replica Glauber dynamics.

:class:`EnsembleDynamics` advances ``R`` independent replicas of the same
:class:`~repro.core.config.ModelConfig` in lockstep.  Spins are stored as one
``(R, n_rows, n_cols)`` int8 array and *every* per-flip cost — RNG draws,
candidate sampling, the neighbourhood/happiness window refresh and the
sampler membership bookkeeping — is batched across the replica axis:

* RNG draws come from :class:`~repro.rng.BlockedReplicaStreams`: each
  replica's PCG64 word stream is pre-drawn in blocks and the scalar
  ``exponential`` / ``integers`` draws are re-derived from those words in
  vectorized batches, consuming each stream exactly as the per-call scalar
  path would.
* The unhappy/flippable samplers of all replicas live in one array-backed
  :class:`~repro.utils.indexset.BatchedIndexSet` (two rows per replica),
  bulk-built at rebuild time and sampled with one gather per round.
* The post-flip window update is one fused gather–classify–scatter kernel
  over all flipping replicas: flat window indices come from a precomputed
  lookup table, same-type counts are updated in place, and one classification
  call (the variant hook, see below) refreshes every touched window.

Equivalence with the scalar engine is exact, not approximate: replica ``r``
consumes its own PCG64 stream in the same order and quantity as a scalar
:class:`~repro.core.dynamics.GlauberDynamics` would, and membership updates
of the unhappy/flippable samplers are applied in the same window order as
:meth:`repro.core.state.ModelState._refresh_window`.  As a result a replica
seeded with ``replica_seeds[r]`` reproduces the corresponding
:class:`~repro.core.simulation.Simulation` run bit for bit — same final grid,
same flip count, same termination flag, same final time — which is what
``tests/test_core_ensemble.py`` locks down.  :class:`ReferenceEnsembleDynamics`
retains the pre-fusion engine (Python-loop step, list-backed samplers,
per-flip ``Generator`` calls) as the equivalence oracle and the baseline of
``benchmarks/bench_flip_loop.py``.

Per-replica seeds are spawned from one master seed (via
:func:`repro.rng.replicate_seeds`), so any single replica can be re-run in
isolation: ``EnsembleDynamics(config, replica_seeds=[s])`` or
``Simulation(config, seed=s)`` reproduce it exactly.

Every classification of agents — the initial rebuild and the per-flip window
refresh — goes through the single overridable :meth:`EnsembleDynamics._classify`
hook, mirroring :meth:`repro.core.state.ModelState._classify` on the scalar
side.  The variant engines in :mod:`repro.core.variants`
(:class:`~repro.core.variants.TwoSidedEnsemble`,
:class:`~repro.core.variants.AsymmetricEnsemble`) override that one hook with
the same shared kernels as their scalar states, so variant ensembles inherit
the fused flip loop *and* the bitwise scalar equivalence unchanged.  The
two-sided variant has no Lyapunov function; give
:meth:`EnsembleDynamics.run` a step/flip budget and read per-replica
termination off :attr:`EnsembleRunResult.terminated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.backends.registry import create_backend
from repro.core.config import ModelConfig
from repro.core.dynamics import Trajectory
from repro.core.initializer import random_configuration
from repro.core.neighborhood import window_sums, window_sums_batch
from repro.core.state import classify_base
from repro.errors import ConfigurationError, StateError
from repro.rng import BlockedReplicaStreams, SeedLike, replicate_seeds, spawn_rngs
from repro.types import FlipRule, SchedulerKind
from repro.utils.indexset import BatchedIndexSet

#: Largest full per-site window lookup table the engine will precompute
#: (entries = n_sites * window_area; int32 entries, so 16M entries = 64 MB).
#: Bigger grids fall back to the two-gather row/column lookup path.
_FULL_WINDOW_LUT_MAX_ENTRIES = 1 << 24


class _ReplicaIndexSet:
    """List-backed randomised set — the retained scalar-loop reference.

    The pre-fusion engine (:class:`ReferenceEnsembleDynamics`) keeps one of
    these per replica per kind; the fused engine replaced them with a single
    :class:`~repro.utils.indexset.BatchedIndexSet`, whose layout-equivalence
    hypothesis suite uses this class as the oracle.  The swap-remove
    algorithm (and therefore the member ordering, which the RNG-draw
    equivalence relies on) is exactly ``IndexSampler``'s, kept in plain
    Python lists; ``sample`` consumes the generator identically too: one
    ``rng.integers(0, size)`` call per draw.
    """

    __slots__ = ("_members", "_positions", "_size")

    def __init__(self, capacity: int) -> None:
        self._members = [0] * capacity
        self._positions = [-1] * capacity
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, index: int) -> None:
        """Insert ``index``; inserting an existing element is a no-op."""
        if self._positions[index] >= 0:
            return
        self._members[self._size] = index
        self._positions[index] = self._size
        self._size += 1

    def remove(self, index: int) -> None:
        """Remove ``index``; removing a missing element is a no-op."""
        pos = self._positions[index]
        if pos < 0:
            return
        self._size -= 1
        last = self._members[self._size]
        self._members[pos] = last
        self._positions[last] = pos
        self._positions[index] = -1

    def update_membership(self, index: int, member: bool) -> None:
        """Add or remove ``index`` according to the boolean ``member``."""
        if member:
            self.add(index)
        else:
            self.remove(index)

    def sample(self, rng: np.random.Generator) -> int:
        """Uniformly random member via one ``rng.integers(0, size)`` draw."""
        if self._size == 0:
            raise IndexError("cannot sample from an empty _ReplicaIndexSet")
        pos = int(rng.integers(0, self._size))
        return self._members[pos]

    def clear(self) -> None:
        """Remove every element."""
        for index in self._members[: self._size]:
            self._positions[index] = -1
        self._size = 0

    def to_array(self) -> np.ndarray:
        """Sorted copy of the current members."""
        return np.sort(np.asarray(self._members[: self._size], dtype=np.int64))


class EnsembleTrajectory:
    """Per-replica time series sampled in lockstep rounds.

    Every property is an ``(R, samples)`` array: one row per replica, one
    column per sample.  Samples are taken every ``record_every`` *rounds* of
    :meth:`EnsembleDynamics.run` (plus the initial and final states), so the
    columns of different replicas are aligned by round rather than by flip
    count — replicas that terminate early simply repeat their final values.
    All recorded quantities are incrementally maintained counters, so one
    sample costs O(R).

    The stacked arrays are materialised once per recording generation and
    cached; properties and :meth:`replica` slice that cache, so callers
    should treat the returned arrays as read-only.
    """

    _FIELDS = (
        ("times", np.float64),
        ("n_flips", np.int64),
        ("n_unhappy", np.int64),
        ("n_flippable", np.int64),
        ("energy", np.int64),
        ("magnetization", np.float64),
    )

    def __init__(self, n_replicas: int) -> None:
        self.n_replicas = n_replicas
        self._times: list[np.ndarray] = []
        self._n_flips: list[np.ndarray] = []
        self._n_unhappy: list[np.ndarray] = []
        self._n_flippable: list[np.ndarray] = []
        self._energy: list[np.ndarray] = []
        self._magnetization: list[np.ndarray] = []
        self._stacked: Optional[dict[str, np.ndarray]] = None

    def record(self, ensemble: "EnsembleDynamics") -> None:
        """Append one sample of every replica's counters."""
        self._times.append(ensemble.times)
        self._n_flips.append(ensemble.n_flips)
        self._n_unhappy.append(ensemble.unhappy_counts())
        self._n_flippable.append(ensemble.flippable_counts())
        self._energy.append(ensemble.energies())
        self._magnetization.append(ensemble.magnetizations())
        self._stacked = None

    def __len__(self) -> int:
        return len(self._times)

    def _materialize(self) -> dict[str, np.ndarray]:
        """Stack every sample buffer into ``(R, samples)`` arrays, once.

        The cache is invalidated by :meth:`record`, so repeated property and
        :meth:`replica` reads after a run pay the stacking cost a single
        time instead of once per access.
        """
        if self._stacked is None:
            stacked: dict[str, np.ndarray] = {}
            for name, dtype in self._FIELDS:
                samples = getattr(self, f"_{name}")
                if samples:
                    stacked[name] = np.stack(samples, axis=1)
                else:
                    stacked[name] = np.zeros((self.n_replicas, 0), dtype=dtype)
            self._stacked = stacked
        return self._stacked

    @property
    def times(self) -> np.ndarray:
        """``(R, samples)`` per-replica simulation clocks."""
        return self._materialize()["times"]

    @property
    def n_flips(self) -> np.ndarray:
        """``(R, samples)`` cumulative flip counts."""
        return self._materialize()["n_flips"]

    @property
    def n_unhappy(self) -> np.ndarray:
        """``(R, samples)`` unhappy-agent counts."""
        return self._materialize()["n_unhappy"]

    @property
    def n_flippable(self) -> np.ndarray:
        """``(R, samples)`` flippable-agent counts."""
        return self._materialize()["n_flippable"]

    @property
    def energy(self) -> np.ndarray:
        """``(R, samples)`` Lyapunov energies."""
        return self._materialize()["energy"]

    @property
    def magnetization(self) -> np.ndarray:
        """``(R, samples)`` mean spins."""
        return self._materialize()["magnetization"]

    def replica(self, replica: int) -> Trajectory:
        """One replica's samples as a scalar :class:`Trajectory`.

        The view plugs directly into :mod:`repro.analysis.trajectory`
        (summaries, decay profiles) exactly like a scalar engine recording.
        The per-series lists are sliced out of the stacked sample cache in
        one ``tolist`` per field rather than rebuilt element by element.
        """
        if not 0 <= replica < self.n_replicas:
            raise StateError(
                f"replica index {replica} out of range for R={self.n_replicas}"
            )
        stacked = self._materialize()
        return Trajectory(
            times=stacked["times"][replica].tolist(),
            n_flips=stacked["n_flips"][replica].tolist(),
            n_unhappy=stacked["n_unhappy"][replica].tolist(),
            n_flippable=stacked["n_flippable"][replica].tolist(),
            energy=stacked["energy"][replica].tolist(),
            magnetization=stacked["magnetization"][replica].tolist(),
        )


@dataclass(frozen=True)
class EnsembleRunResult:
    """Per-replica outcome arrays of :meth:`EnsembleDynamics.run`.

    Every field mirrors the scalar :class:`~repro.core.dynamics.RunResult`
    with one entry per replica; counters are deltas relative to the start of
    the ``run`` call, exactly like the scalar engine reports them.
    """

    #: ``(R,)`` bool — reached the paper's termination condition.
    terminated: np.ndarray
    #: ``(R,)`` int — type flips performed during this run call.
    n_flips: np.ndarray
    #: ``(R,)`` int — scheduler steps taken during this run call.
    n_steps: np.ndarray
    #: ``(R,)`` float — per-replica simulation clock at the end of the run.
    final_time: np.ndarray
    #: ``(R, n_rows, n_cols)`` int8 — final configurations (copy).
    final_spins: np.ndarray
    #: Per-replica trajectory samples, when recording was requested.
    trajectory: Optional[EnsembleTrajectory] = None

    @property
    def n_replicas(self) -> int:
        """Number of replicas in the ensemble."""
        return int(self.terminated.shape[0])

    @property
    def all_terminated(self) -> bool:
        """True when every replica reached termination."""
        return bool(self.terminated.all())

    @property
    def total_flips(self) -> int:
        """Total flips across the ensemble (throughput bookkeeping)."""
        return int(self.n_flips.sum())


class EnsembleDynamics:
    """R lockstep replicas of the Glauber segregation process, fully fused.

    Parameters
    ----------
    config:
        The shared model configuration.
    n_replicas:
        Number of replicas ``R``; ignored when ``replica_seeds`` is given.
    seed:
        Master seed; per-replica integer seeds are derived with
        :func:`repro.rng.replicate_seeds`, matching what
        :func:`repro.experiments.runner.run_experiment` hands to scalar
        replicate runs.
    replica_seeds:
        Explicit per-replica integer seeds (overrides ``seed``/``n_replicas``).
        Each replica spawns its init and dynamics streams from its seed the
        same way :class:`~repro.core.simulation.Simulation` does.
    initial_spins:
        Optional planted ``(R, n_rows, n_cols)`` ±1 array.  When omitted every
        replica draws its own Bernoulli initial configuration from its init
        stream.
    scheduler / flip_rule:
        Overrides for the configuration's defaults, as in the scalar engine.
    rng_block_words:
        Words pre-drawn per replica per RNG block refill (see
        :class:`~repro.rng.BlockedReplicaStreams`).  Purely a performance
        knob: results are bitwise independent of it, which the boundary
        property tests assert down to one-word blocks.
    backend:
        Flip-loop backend request (``"auto"``, ``"numpy"``, ``"numba"``,
        ``"cffi"``, ``"python"`` or ``None``), resolved through
        :mod:`repro.core.backends.registry`: the hot path — the scalar
        round control plane, the fused window update and the coded-op
        sampler maintenance — executes behind the
        :class:`~repro.core.backends.base.FlipLoopBackend` seam, and every
        backend is pinned bitwise identical, so this too is purely a
        performance knob.  The resolved name is exposed as
        :attr:`backend_name`.
    """

    def __init__(
        self,
        config: ModelConfig,
        n_replicas: Optional[int] = None,
        seed: SeedLike = None,
        replica_seeds: Optional[Sequence[int]] = None,
        initial_spins: Optional[np.ndarray] = None,
        scheduler: Optional[SchedulerKind] = None,
        flip_rule: Optional[FlipRule] = None,
        rng_block_words: int = 4096,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        if replica_seeds is not None:
            seeds = [int(s) for s in replica_seeds]
            if not seeds:
                raise ConfigurationError("replica_seeds must be non-empty")
        else:
            if n_replicas is None or n_replicas <= 0:
                raise ConfigurationError(
                    f"n_replicas must be a positive int, got {n_replicas}"
                )
            seeds = replicate_seeds(seed, n_replicas)
        self.replica_seeds: tuple[int, ...] = tuple(seeds)
        self.scheduler = scheduler if scheduler is not None else config.scheduler
        self.flip_rule = flip_rule if flip_rule is not None else config.flip_rule

        n_rows, n_cols = config.shape
        r = len(seeds)
        self._rngs: list[np.random.Generator] = []
        self._spins = np.empty((r, n_rows, n_cols), dtype=np.int8)
        for index, replica_seed in enumerate(seeds):
            # Mirror Simulation: one stream for the initial grid, one for the
            # dynamics, both spawned from the replica seed.
            init_rng, dynamics_rng = spawn_rngs(replica_seed, 2)
            self._rngs.append(dynamics_rng)
            if initial_spins is None:
                self._spins[index] = random_configuration(config, init_rng).spins
        if initial_spins is not None:
            planted = np.asarray(initial_spins)
            if planted.shape != (r, n_rows, n_cols):
                raise ConfigurationError(
                    f"initial_spins shape {planted.shape} does not match "
                    f"({r}, {n_rows}, {n_cols})"
                )
            if not np.all(np.isin(planted, (-1, 1))):
                raise ConfigurationError("initial_spins entries must be +1 or -1")
            self._spins[...] = planted.astype(np.int8)
        self._initial_spins = self._spins.copy()

        self._n_flips = np.zeros(r, dtype=np.int64)
        self._energies = np.zeros(r, dtype=np.int64)
        self._n_plus = np.zeros(r, dtype=np.int64)
        self._build_runtime(rng_block_words)
        self.recompute_all()
        self._init_backend(backend)

    # ---------------------------------------------------------------- runtime

    def _build_runtime(self, rng_block_words: int) -> None:
        """Allocate the fused engine's batched runtime structures.

        :class:`ReferenceEnsembleDynamics` overrides this (and the step
        methods) with the retained pre-fusion structures; everything else —
        seeding, spin initialisation, the run loop, the public result
        surface — is shared, so the two engines can only differ in how they
        execute a round, never in what a round means.
        """
        config = self.config
        r = self.n_replicas
        n_sites = config.n_sites
        if n_sites > 2**31:
            raise ConfigurationError(
                "the fused engine indexes sites with 32-bit draws; "
                f"{n_sites} sites exceed that (use smaller grids)"
            )
        self._n_sites = n_sites
        self._times = np.zeros(r, dtype=np.float64)
        self._n_steps = np.zeros(r, dtype=np.int64)
        self._replica_ids = np.arange(r, dtype=np.int64)
        self._spins_flat = self._spins.reshape(-1)
        #: Incrementally maintained same-type counts, one flat row per replica.
        self._same_flat = np.zeros(r * n_sites, dtype=np.int64)
        #: Packed happy/flippable bits per site: bit 0 happy, bit 1 flippable.
        self._code_flat = np.zeros(r * n_sites, dtype=np.int8)
        #: Rows [0, R) hold unhappy members, rows [R, 2R) flippable members.
        self._sets = BatchedIndexSet(2 * r, n_sites)
        self._streams = BlockedReplicaStreams(
            self._rngs, block_words=rng_block_words
        )
        #: Scalar round-loop mirrors of the batched state (used by the numpy
        #: backend's step_round): list-speed element access, same buffers.
        self._times_mv = memoryview(self._times)
        self._steps_mv = memoryview(self._n_steps)
        self._code_mv = memoryview(self._code_flat)
        #: Incremental energy/magnetization tracking can be deferred while a
        #: run does not observe the counters (no trajectory recording); the
        #: stale flag triggers an exact O(R * grid) flush on the next read.
        self._track_counters = True
        self._counters_stale = False
        #: Bumped whenever runtime tables a backend may have captured raw
        #: views (or raw pointers) into are rebuilt; backends compare it
        #: against their captured generation and re-capture when it moved.
        self._runtime_generation = 0
        self._build_window_luts()

    def _init_backend(self, backend: Optional[str]) -> None:
        """Resolve, construct and attach this engine's flip-loop backend.

        Called once at the end of ``__init__`` (the backend captures runtime
        tables, so everything — including the first ``recompute_all`` — must
        exist first).  :class:`ReferenceEnsembleDynamics` overrides this with
        a no-op: its retained pre-fusion structures are not backend-shaped.
        """
        self._backend = create_backend(backend)
        #: The resolved (concrete) backend executing this engine's hot path.
        self.backend_name = self._backend.name
        self._backend.attach(self)

    def _build_window_luts(self) -> None:
        """Precompute flat window-index lookups for the fused flip kernel.

        Small grids get the full ``(n_sites, window_area)`` table — the
        per-flip window indices are then a single gather.  Large grids fall
        back to separate wrapped row/column lookups (two gathers and an
        outer add), which cost a couple extra array ops but only
        O(grid side * window side) memory.
        """
        config = self.config
        n_rows, n_cols = config.shape
        w = config.horizon
        side = 2 * w + 1
        offsets = np.arange(-w, w + 1)
        self._window_area = side * side
        self._center_col = (self._window_area - 1) // 2
        if config.n_sites * self._window_area <= _FULL_WINDOW_LUT_MAX_ENTRIES:
            rows = np.arange(config.n_sites) // n_cols
            cols = np.arange(config.n_sites) % n_cols
            wrapped_rows = (rows[:, None] + offsets[None, :]) % n_rows
            wrapped_cols = (cols[:, None] + offsets[None, :]) % n_cols
            self._window_lut: Optional[np.ndarray] = (
                wrapped_rows[:, :, None] * n_cols + wrapped_cols[:, None, :]
            ).reshape(config.n_sites, self._window_area).astype(np.int32)
            self._row_lut = None
            self._col_lut = None
        else:
            self._window_lut = None
            self._row_lut = (
                ((np.arange(n_rows)[:, None] + offsets[None, :]) % n_rows) * n_cols
            ).astype(np.int64)
            self._col_lut = (
                (np.arange(n_cols)[:, None] + offsets[None, :]) % n_cols
            ).astype(np.int64)

    # ------------------------------------------------------------- rebuilding

    def _classify(
        self, spins: np.ndarray, same: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched happy/flippable classification — the engine's variant hook.

        Every classification in the engine — the O(R * grid) rebuild and the
        fused per-flip window refresh — funnels through this one method,
        exactly as :meth:`repro.core.state.ModelState._classify` does on the
        scalar side.  Subclasses implement variant rules by overriding it
        with the shared kernels from :mod:`repro.core.variants`; the base
        implementation applies the paper's one-sided rule via
        :func:`repro.core.state.classify_base`.  The kernels are pure and
        shape-agnostic, which is what lets one hook serve both the
        ``(R, n, n)`` rebuild and the ``(flips, window)`` refresh.
        """
        return classify_base(
            same, self.config.happiness_threshold, self.config.neighborhood_agents
        )

    def recompute_all(self) -> None:
        """Rebuild counts, codes and samplers from the spins (O(R * grid)).

        Fully batched: one summed-area pass builds every replica's window
        counts, one classification call covers the whole stack, and the
        samplers are bulk-built from the masks — no Python-per-site loops.
        The insertion order (increasing flat index per replica) matches
        :meth:`repro.core.state.ModelState.recompute_all`, which keeps the
        sampler layouts (and hence RNG-draw outcomes) scalar-identical.
        """
        config = self.config
        r = self.n_replicas
        total = config.neighborhood_agents
        plus = window_sums_batch(self._spins == 1, config.horizon)
        same = np.where(self._spins == 1, plus, total - plus)
        # In place: backends may hold pointers into these counter arrays.
        same.sum(axis=(1, 2), dtype=np.int64, out=self._energies)
        self._n_plus[:] = np.count_nonzero(self._spins == 1, axis=(1, 2))
        self._counters_stale = False
        happy, flippable = self._classify(self._spins, same)
        self._same_flat[:] = same.reshape(-1)
        code = self._code_flat.reshape(r, self._n_sites)
        np.left_shift(
            flippable.reshape(r, self._n_sites).view(np.int8), 1, out=code
        )
        code |= happy.reshape(r, self._n_sites).view(np.int8)
        self._sets.fill_from_masks(
            np.concatenate(
                (
                    ~happy.reshape(r, self._n_sites),
                    flippable.reshape(r, self._n_sites),
                ),
                axis=0,
            )
        )
        self._refresh_code_lut(same, code)
        self._runtime_generation += 1

    def _refresh_code_lut(self, same: np.ndarray, code: np.ndarray) -> None:
        """Tabulate the classification hook over every possible same-count.

        The per-flip kernel then classifies a touched window with one (or,
        for spin-dependent rules, two) gathers instead of re-running the rule
        arrays.  The table is *derived from* :meth:`_classify` — the hook
        stays the single source of truth — and cross-checked here against the
        hook's full-grid output: a hypothetical subclass whose rule is not
        elementwise in ``(spin, same)`` fails the check and falls back to
        calling the hook per flip.
        """
        total = self.config.neighborhood_agents
        axis = np.arange(total + 2, dtype=np.int64)
        lut = np.empty((2, total + 2), dtype=np.int8)
        for row, spin in ((0, -1), (1, 1)):
            happy, flippable = self._classify(
                np.full(total + 2, spin, dtype=np.int8), axis
            )
            lut[row] = flippable.view(np.int8) << 1
            lut[row] |= happy.view(np.int8)
        spin_pos = (self._spins > 0).reshape(self.n_replicas, self._n_sites)
        expected = lut[spin_pos.view(np.int8), same.reshape(same.shape[0], -1)]
        if np.array_equal(expected, code):
            self._code_lut = lut
            self._code_lut_flat = None if (lut[0] != lut[1]).any() else lut[0]
        else:  # pragma: no cover - no shipped rule hits this
            self._code_lut = None
            self._code_lut_flat = None

    # ------------------------------------------------------------- inspection

    @property
    def n_replicas(self) -> int:
        """Number of replicas."""
        return len(self._rngs)

    @property
    def times(self) -> np.ndarray:
        """``(R,)`` per-replica simulation clocks (copy)."""
        return np.array(self._times, dtype=np.float64)

    @property
    def n_flips(self) -> np.ndarray:
        """``(R,)`` per-replica flip counts (copy)."""
        return self._n_flips.copy()

    @property
    def n_steps(self) -> np.ndarray:
        """``(R,)`` per-replica scheduler step counts (copy)."""
        return np.array(self._n_steps, dtype=np.int64)

    @property
    def spins(self) -> np.ndarray:
        """The ``(R, n_rows, n_cols)`` spin array (owned by the engine)."""
        return self._spins

    def replica_spins(self, replica: int) -> np.ndarray:
        """Copy of one replica's configuration."""
        return self._spins[replica].copy()

    def initial_spins(self) -> np.ndarray:
        """Copy of the initial configurations."""
        return self._initial_spins.copy()

    def unhappy_counts(self) -> np.ndarray:
        """``(R,)`` current number of unhappy agents per replica."""
        return self._sets.counts[: self.n_replicas].copy()

    def flippable_counts(self) -> np.ndarray:
        """``(R,)`` current number of flippable agents per replica."""
        return self._sets.counts[self.n_replicas :].copy()

    def _replica_code(self, replica: int) -> np.ndarray:
        """One replica's packed happy/flippable bit field (flat view)."""
        return self._code_flat[replica * self._n_sites : (replica + 1) * self._n_sites]

    def happy_mask(self, replica: int) -> np.ndarray:
        """Boolean happy mask of one replica (copy)."""
        return ((self._replica_code(replica) & 1) != 0).reshape(self.config.shape)

    def flippable_mask(self, replica: int) -> np.ndarray:
        """Boolean flippable mask of one replica (copy)."""
        return ((self._replica_code(replica) & 2) != 0).reshape(self.config.shape)

    def unhappy_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's unhappy agents."""
        return self._sets.to_array(replica)

    def flippable_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's flippable agents."""
        return self._sets.to_array(self.n_replicas + replica)

    def _flush_counters(self) -> None:
        """Recompute the deferred energy/plus counters from the live state.

        Exact by construction: the incremental same-type counts are always
        maintained, so the flush is an integer reduction over them — bitwise
        the value the per-flip deltas would have accumulated.
        """
        if self._counters_stale:
            r = self.n_replicas
            # In place: backends may hold pointers into the counter arrays.
            self._same_flat.reshape(r, self._n_sites).sum(
                axis=1, dtype=np.int64, out=self._energies
            )
            self._n_plus[:] = np.count_nonzero(self._spins == 1, axis=(1, 2))
            self._counters_stale = False

    def energies(self) -> np.ndarray:
        """``(R,)`` Lyapunov energies (total same-type neighbourhood count).

        Maintained incrementally by :meth:`_apply_flips` — an O(1)-per-flip
        window-free delta mirroring :meth:`repro.core.state.ModelState.apply_flip`
        — so reading it (e.g. from trajectory recording) is O(R); the tests
        cross-check it against the full recompute in :meth:`_energies_full`.
        Runs that never observe the counters defer the deltas and flush the
        exact values here on first read.
        """
        self._flush_counters()
        return self._energies.copy()

    def _energies_full(self) -> np.ndarray:
        """``(R,)`` energies recomputed from the spins (verification path)."""
        total = self.config.neighborhood_agents
        plus = window_sums_batch(self._spins == 1, self.config.horizon)
        same = np.where(self._spins == 1, plus, total - plus)
        return same.sum(axis=(1, 2), dtype=np.int64)

    def magnetizations(self) -> np.ndarray:
        """``(R,)`` mean spins, maintained incrementally (O(R) per read)."""
        self._flush_counters()
        n_sites = self.config.n_sites
        return (2.0 * self._n_plus - n_sites) / n_sites

    def _termination_counts(self) -> np.ndarray:
        """``(R,)`` sizes of the sets whose emptiness means termination."""
        counts = self._sets.counts
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            return counts[self.n_replicas :]
        return counts[: self.n_replicas]

    def is_replica_terminated(self, replica: int) -> bool:
        """Scalar-engine termination condition for one replica."""
        return bool(self._termination_counts()[replica] == 0)

    def terminated_mask(self) -> np.ndarray:
        """``(R,)`` bool array of terminated replicas."""
        return self._termination_counts() == 0

    @property
    def all_terminated(self) -> bool:
        """True when no replica can make further progress."""
        return bool((self._termination_counts() == 0).all())

    # ------------------------------------------------------------------ steps

    def step_all(self, active: Optional[Sequence[int]] = None) -> np.ndarray:
        """Advance every active replica by one scheduler step.

        ``active`` restricts the round to the given replica indices (the
        ``run`` loop uses it to exclude replicas that hit their budgets);
        terminated replicas are always skipped.  Returns the array of replica
        indices that actually flipped this round.

        Large rounds run as array code: termination/sampler filtering, clock
        advances, blocked RNG draws, candidate gathers and the fused window
        refresh all operate on the surviving replica axis at once.  Small
        rounds (where per-call numpy dispatch would dominate) go through the
        attached :class:`~repro.core.backends.base.FlipLoopBackend`'s scalar
        round instead; both regimes consume the blocked RNG buffers
        identically, so they are interchangeable mid-run.  The per-replica
        draw order (waiting time first under the continuous scheduler, then
        the candidate index) matches
        :meth:`repro.core.dynamics.GlauberDynamics.step` stream-exactly.
        """
        n_rep = self.n_replicas
        if active is None:
            candidates = self._replica_ids
        else:
            candidates = np.asarray(active, dtype=np.int64)
        if candidates.size <= BlockedReplicaStreams.SCALAR_PATH_MAX:
            return self._backend.step_round(candidates)
        only_if_happy = self.flip_rule is FlipRule.ONLY_IF_HAPPY
        continuous = self.scheduler is SchedulerKind.CONTINUOUS
        counts = self._sets.counts
        if only_if_happy:
            term_sizes = counts[candidates + n_rep]
        else:
            term_sizes = counts[candidates]
        alive = term_sizes > 0
        if only_if_happy and continuous:
            sampler_offset = n_rep
            sampler_sizes = term_sizes
        else:
            sampler_offset = 0
            sampler_sizes = counts[candidates]
            alive &= sampler_sizes > 0
        if alive.all():
            reps = candidates
            sizes = sampler_sizes
        else:
            reps = candidates[alive]
            if reps.size == 0:
                return np.empty(0, dtype=np.int64)
            sizes = sampler_sizes[alive]
        # Same draw order as GlauberDynamics.step: waiting time first
        # (continuous scheduler only), then the candidate index.
        waits, draws = self._streams.draw_step(reps, sizes, continuous)
        if continuous:
            self._times[reps] += (1.0 / sizes) * waits
        else:
            self._times[reps] += 1.0
        self._n_steps[reps] += 1
        flats = self._sets.sample_rows(reps + sampler_offset, draws)
        bases = reps * self._n_sites
        if only_if_happy and not continuous:
            # Discrete scheduler samples unhappy agents, which may refuse to
            # flip.  (The continuous sampler only contains flippable agents,
            # so the gather would be all-True there.)
            do_flip = (self._code_flat[bases + flats] & 2) != 0
            reps = reps[do_flip]
            flats = flats[do_flip]
            bases = bases[do_flip]
            if reps.size == 0:
                return reps
        self._apply_flips(reps, flats, bases)
        self._n_flips[reps] += 1
        return reps

    def _apply_flips(
        self, reps: np.ndarray, flats: np.ndarray, bases: Optional[np.ndarray] = None
    ) -> None:
        """Flip one site per listed replica via the attached backend.

        The fused gather-classify-scatter window kernel lives behind the
        :class:`~repro.core.backends.base.FlipLoopBackend` seam (see
        :meth:`FlipLoopBackend.apply_flips
        <repro.core.backends.base.FlipLoopBackend.apply_flips>` for the
        semantics); this shim keeps the vectorized ``step_all`` path and the
        subclass override point unchanged.
        """
        self._backend.apply_flips(reps, flats, bases)

    def run(
        self,
        max_flips: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_time: Optional[float] = None,
        record_trajectory: bool = False,
        record_every: int = 1,
    ) -> EnsembleRunResult:
        """Run every replica until termination or its per-replica budget.

        Budgets apply per replica, with the scalar engine's semantics: a
        replica stops stepping once its flip/step count within this call
        reaches the budget or its clock passes ``max_time``; the others keep
        going.  The active set is recomputed per round as a handful of array
        comparisons.

        ``record_trajectory`` samples every replica's incremental counters
        into an :class:`EnsembleTrajectory` every ``record_every`` lockstep
        *rounds* (plus the initial and final states).  One sample is O(R), so
        dense recording adds no per-site work.
        """
        if max_flips is not None and max_flips < 0:
            raise StateError(f"max_flips must be non-negative, got {max_flips}")
        if record_every <= 0:
            raise StateError("record_every must be positive")
        trajectory = EnsembleTrajectory(self.n_replicas) if record_trajectory else None
        if trajectory is not None:
            trajectory.record(self)
        start_flips = self._n_flips.copy()
        start_steps = np.array(self._n_steps, dtype=np.int64)
        rounds = 0
        # Runs that never read the energy/magnetization counters defer their
        # per-flip updates; the first post-run read flushes exact values.
        previous_tracking = self._track_counters
        self._track_counters = record_trajectory and previous_tracking
        try:
            while True:
                active_mask = self._termination_counts() != 0
                if max_flips is not None:
                    active_mask &= (self._n_flips - start_flips) < max_flips
                if max_steps is not None:
                    steps = np.asarray(self._n_steps, dtype=np.int64)
                    active_mask &= (steps - start_steps) < max_steps
                if max_time is not None:
                    active_mask &= np.asarray(self._times) < max_time
                active = np.flatnonzero(active_mask)
                if active.size == 0:
                    break
                self.step_all(active)
                rounds += 1
                if trajectory is not None and rounds % record_every == 0:
                    trajectory.record(self)
        finally:
            self._track_counters = previous_tracking
        if trajectory is not None and not (
            np.array_equal(trajectory._times[-1], self.times)
            and np.array_equal(trajectory._n_flips[-1], self._n_flips)
        ):
            trajectory.record(self)
        return EnsembleRunResult(
            terminated=self.terminated_mask(),
            n_flips=self._n_flips - start_flips,
            n_steps=self.n_steps - start_steps,
            final_time=self.times,
            final_spins=self._spins.copy(),
            trajectory=trajectory,
        )


class ReferenceEnsembleDynamics(EnsembleDynamics):
    """The pre-fusion ensemble engine, retained as oracle and baseline.

    Semantically identical to :class:`EnsembleDynamics` — both are bitwise
    equivalent to per-replica scalar runs — but executes a round the way the
    engine did before the fused flip loop landed: a Python loop over replicas
    with one ``Generator.exponential``/``integers`` call each, list-backed
    :class:`_ReplicaIndexSet` samplers updated element by element, and
    per-index insertion loops at rebuild time.  The equivalence property
    tests pit the fused engine against this one, and
    ``benchmarks/bench_flip_loop.py`` / ``bench_ensemble_throughput.py``
    report the fused engine's speedup over it.
    """

    def _init_backend(self, backend: Optional[str]) -> None:
        """The reference engine is its own hot path; no backend attaches.

        The retained pre-fusion structures (list-backed samplers, per-flip
        ``Generator`` calls) are not backend-shaped, and the point of this
        engine is to *not* share code with what it verifies.
        """
        self._backend = None
        self.backend_name = "reference"

    def _build_runtime(self, rng_block_words: int) -> None:
        """Allocate the retained scalar-loop structures (no RNG blocks)."""
        config = self.config
        r = self.n_replicas
        n_rows, n_cols = config.shape
        self._plus_counts = np.empty((r, n_rows, n_cols), dtype=np.int64)
        self._happy_mask = np.empty((r, n_rows, n_cols), dtype=bool)
        self._flippable_mask = np.empty((r, n_rows, n_cols), dtype=bool)
        self._unhappy = [_ReplicaIndexSet(config.n_sites) for _ in range(r)]
        self._flippable = [_ReplicaIndexSet(config.n_sites) for _ in range(r)]
        # Per-replica clocks/counters in plain lists: they are touched once
        # per replica per round and Python-list access is cheaper than numpy
        # scalar indexing on that path.
        self._times = [0.0] * r
        self._n_steps = [0] * r
        self._offsets = np.arange(-config.horizon, config.horizon + 1)
        # The reference engine always tracks its counters incrementally; the
        # flags exist so the shared accessors (and run()) stay inherited.
        self._track_counters = True
        self._counters_stale = False

    def recompute_all(self) -> None:
        """Rebuild counts, masks and samplers the pre-fusion way."""
        w = self.config.horizon
        total = self.config.neighborhood_agents
        for r in range(self.n_replicas):
            self._plus_counts[r] = window_sums(
                (self._spins[r] == 1).astype(np.int64), w
            )
        same = np.where(self._spins == 1, self._plus_counts, total - self._plus_counts)
        self._energies = same.sum(axis=(1, 2), dtype=np.int64)
        self._n_plus = np.count_nonzero(self._spins == 1, axis=(1, 2)).astype(np.int64)
        self._happy_mask, self._flippable_mask = self._classify(self._spins, same)
        for r in range(self.n_replicas):
            self._unhappy[r].clear()
            self._flippable[r].clear()
            # Same insertion order as ModelState.recompute_all so that the
            # samplers' internal layouts (and hence RNG-draw outcomes) match.
            for index in np.flatnonzero(~self._happy_mask[r].ravel()):
                self._unhappy[r].add(int(index))
            for index in np.flatnonzero(self._flippable_mask[r].ravel()):
                self._flippable[r].add(int(index))

    # ------------------------------------------------------------- inspection

    def unhappy_counts(self) -> np.ndarray:
        """``(R,)`` current number of unhappy agents per replica."""
        return np.array([len(s) for s in self._unhappy], dtype=np.int64)

    def flippable_counts(self) -> np.ndarray:
        """``(R,)`` current number of flippable agents per replica."""
        return np.array([len(s) for s in self._flippable], dtype=np.int64)

    def happy_mask(self, replica: int) -> np.ndarray:
        """Boolean happy mask of one replica (copy)."""
        return self._happy_mask[replica].copy()

    def flippable_mask(self, replica: int) -> np.ndarray:
        """Boolean flippable mask of one replica (copy)."""
        return self._flippable_mask[replica].copy()

    def unhappy_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's unhappy agents."""
        return self._unhappy[replica].to_array()

    def flippable_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's flippable agents."""
        return self._flippable[replica].to_array()

    def _energies_full(self) -> np.ndarray:
        """``(R,)`` energies recomputed from the window counts."""
        total = self.config.neighborhood_agents
        same = np.where(self._spins == 1, self._plus_counts, total - self._plus_counts)
        return same.sum(axis=(1, 2), dtype=np.int64)

    def _termination_counts(self) -> np.ndarray:
        """``(R,)`` sizes of the sets whose emptiness means termination."""
        sets = (
            self._flippable
            if self.flip_rule is FlipRule.ONLY_IF_HAPPY
            else self._unhappy
        )
        return np.fromiter((len(s) for s in sets), dtype=np.int64, count=len(sets))

    # ------------------------------------------------------------------ steps

    def step_all(self, active: Optional[Sequence[int]] = None) -> np.ndarray:
        """Advance every active replica by one step — the pre-fusion loop."""
        if active is None:
            candidates = range(self.n_replicas)
        else:
            candidates = active
        only_if_happy = self.flip_rule is FlipRule.ONLY_IF_HAPPY
        continuous = self.scheduler is SchedulerKind.CONTINUOUS
        termination_sets = self._flippable if only_if_happy else self._unhappy
        samplers = (
            self._flippable if only_if_happy and continuous else self._unhappy
        )
        times = self._times
        steps = self._n_steps
        rngs = self._rngs
        reps: list[int] = []
        flats: list[int] = []
        for r in candidates:
            r = int(r)
            if len(termination_sets[r]) == 0:
                continue
            sampler = samplers[r]
            if len(sampler) == 0:
                continue
            rng = rngs[r]
            # Same draw order as GlauberDynamics.step: waiting time first
            # (continuous scheduler only), then the candidate index.
            if continuous:
                times[r] += float(rng.exponential(1.0 / len(sampler)))
            else:
                times[r] += 1.0
            steps[r] += 1
            reps.append(r)
            flats.append(sampler.sample(rng))
        if not reps:
            return np.empty(0, dtype=np.int64)

        n_rows, n_cols = self.config.shape
        rep_arr = np.asarray(reps, dtype=np.int64)
        flat_arr = np.asarray(flats, dtype=np.int64)
        rows = flat_arr // n_cols
        cols = flat_arr % n_cols
        if only_if_happy and not continuous:
            do_flip = self._flippable_mask[rep_arr, rows, cols]
            rep_arr = rep_arr[do_flip]
            rows = rows[do_flip]
            cols = cols[do_flip]
            if rep_arr.size == 0:
                return rep_arr
        self._apply_flips(rep_arr, rows, cols)
        self._n_flips[rep_arr] += 1
        return rep_arr

    def _apply_flips(
        self, reps: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> None:
        """Flip one site per listed replica — the pre-fusion window update."""
        config = self.config
        n_rows, n_cols = config.shape
        total = config.neighborhood_agents

        new_values = -self._spins[reps, rows, cols]
        self._spins[reps, rows, cols] = new_values
        delta = new_values.astype(np.int64)

        offsets = self._offsets
        window_rows = (rows[:, None] + offsets[None, :]) % n_rows
        window_cols = (cols[:, None] + offsets[None, :]) % n_cols
        rep_index = reps[:, None, None]
        row_index = window_rows[:, :, None]
        col_index = window_cols[:, None, :]

        sub_plus = self._plus_counts[rep_index, row_index, col_index]
        center = config.horizon
        old_plus_center = sub_plus[:, center, center].astype(np.int64)
        old_spin = -delta
        old_same_center = np.where(
            old_spin == 1, old_plus_center, total - old_plus_center
        )
        new_plus_center = old_plus_center + delta
        new_same_center = np.where(
            delta == 1, new_plus_center, total - new_plus_center
        )
        self._energies[reps] += (
            delta * (2 * old_plus_center - total - old_spin)
            + new_same_center
            - old_same_center
        )
        self._n_plus[reps] += delta
        sub_plus += delta[:, None, None]
        self._plus_counts[rep_index, row_index, col_index] = sub_plus
        sub_spins = self._spins[rep_index, row_index, col_index]
        sub_same = np.where(sub_spins == 1, sub_plus, total - sub_plus)
        sub_happy, sub_flippable = self._classify(sub_spins, sub_same)

        old_happy = self._happy_mask[rep_index, row_index, col_index]
        old_flippable = self._flippable_mask[rep_index, row_index, col_index]
        changed = (sub_happy != old_happy) | (sub_flippable != old_flippable)
        self._happy_mask[rep_index, row_index, col_index] = sub_happy
        self._flippable_mask[rep_index, row_index, col_index] = sub_flippable
        if not changed.any():
            return

        flat = window_rows[:, :, None] * n_cols + window_cols[:, None, :]
        changed_reps = np.broadcast_to(rep_index, changed.shape)[changed].tolist()
        changed_flats = flat[changed].tolist()
        changed_happy = sub_happy[changed].tolist()
        changed_flippable = sub_flippable[changed].tolist()
        unhappy_sets = self._unhappy
        flippable_sets = self._flippable
        for replica, index, happy, flippable in zip(
            changed_reps, changed_flats, changed_happy, changed_flippable
        ):
            unhappy_sets[replica].update_membership(index, not happy)
            flippable_sets[replica].update_membership(index, flippable)


def run_ensemble(
    config: ModelConfig,
    n_replicas: int,
    seed: SeedLike = None,
    max_flips: Optional[int] = None,
    scheduler: Optional[SchedulerKind] = None,
    flip_rule: Optional[FlipRule] = None,
    record_trajectory: bool = False,
    record_every: int = 1,
    backend: Optional[str] = None,
) -> EnsembleRunResult:
    """Convenience wrapper: build an :class:`EnsembleDynamics` and run it."""
    ensemble = EnsembleDynamics(
        config,
        n_replicas=n_replicas,
        seed=seed,
        scheduler=scheduler,
        flip_rule=flip_rule,
        backend=backend,
    )
    return ensemble.run(
        max_flips=max_flips,
        record_trajectory=record_trajectory,
        record_every=record_every,
    )
