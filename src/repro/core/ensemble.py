"""Vectorized multi-replica Glauber dynamics.

:class:`EnsembleDynamics` advances ``R`` independent replicas of the same
:class:`~repro.core.config.ModelConfig` in lockstep.  Spins are stored as one
``(R, n_rows, n_cols)`` int8 array and the per-flip work — happiness
classification, incremental neighbourhood-count updates and mask refreshes —
is batched across the replica axis, so the per-call NumPy overhead that
dominates the scalar engine on small windows is paid once per *round* instead
of once per *replica*.

Equivalence with the scalar engine is exact, not approximate: replica ``r``
draws from its own :class:`numpy.random.Generator` in the same order as a
scalar :class:`~repro.core.dynamics.GlauberDynamics` would, and membership
updates of the unhappy/flippable samplers are applied in the same window
order as :meth:`repro.core.state.ModelState._refresh_window`.  As a result a
replica seeded with ``replica_seeds[r]`` reproduces the corresponding
:class:`~repro.core.simulation.Simulation` run bit for bit — same final grid,
same flip count, same termination flag, same final time — which is what
``tests/test_core_ensemble.py`` locks down.

Per-replica seeds are spawned from one master seed (via
:func:`repro.rng.replicate_seeds`), so any single replica can be re-run in
isolation: ``EnsembleDynamics(config, replica_seeds=[s])`` or
``Simulation(config, seed=s)`` reproduce it exactly.

Every classification of agents — the initial rebuild and the per-flip window
refresh — goes through the single overridable :meth:`EnsembleDynamics._classify`
hook, mirroring :meth:`repro.core.state.ModelState._classify` on the scalar
side.  The variant engines in :mod:`repro.core.variants`
(:class:`~repro.core.variants.TwoSidedEnsemble`,
:class:`~repro.core.variants.AsymmetricEnsemble`) override that one hook with
the same shared kernels as their scalar states, so variant ensembles inherit
the bitwise scalar equivalence unchanged.  The two-sided variant has no
Lyapunov function; give :meth:`EnsembleDynamics.run` a step/flip budget and
read per-replica termination off :attr:`EnsembleRunResult.terminated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import ModelConfig
from repro.core.dynamics import Trajectory
from repro.core.initializer import random_configuration
from repro.core.neighborhood import window_sums
from repro.core.state import classify_base
from repro.errors import ConfigurationError, StateError
from repro.rng import SeedLike, replicate_seeds, spawn_rngs
from repro.types import FlipRule, SchedulerKind


class _ReplicaIndexSet:
    """List-backed randomised set, layout-identical to ``IndexSampler``.

    The scalar engine's :class:`~repro.utils.indexset.IndexSampler` stores its
    members in numpy arrays; per-element scalar indexing of those arrays is
    the single hottest Python-level cost of the ensemble's membership updates,
    so this twin keeps the exact same swap-remove algorithm (and therefore the
    exact same member ordering, which the RNG-draw equivalence relies on) in
    plain Python lists.  ``sample`` consumes the generator identically too:
    one ``rng.integers(0, size)`` call per draw.
    """

    __slots__ = ("_members", "_positions", "_size")

    def __init__(self, capacity: int) -> None:
        self._members = [0] * capacity
        self._positions = [-1] * capacity
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, index: int) -> None:
        if self._positions[index] >= 0:
            return
        self._members[self._size] = index
        self._positions[index] = self._size
        self._size += 1

    def remove(self, index: int) -> None:
        pos = self._positions[index]
        if pos < 0:
            return
        self._size -= 1
        last = self._members[self._size]
        self._members[pos] = last
        self._positions[last] = pos
        self._positions[index] = -1

    def update_membership(self, index: int, member: bool) -> None:
        if member:
            self.add(index)
        else:
            self.remove(index)

    def sample(self, rng: np.random.Generator) -> int:
        if self._size == 0:
            raise IndexError("cannot sample from an empty _ReplicaIndexSet")
        pos = int(rng.integers(0, self._size))
        return self._members[pos]

    def clear(self) -> None:
        for index in self._members[: self._size]:
            self._positions[index] = -1
        self._size = 0

    def to_array(self) -> np.ndarray:
        return np.sort(np.asarray(self._members[: self._size], dtype=np.int64))


class EnsembleTrajectory:
    """Per-replica time series sampled in lockstep rounds.

    Every property is an ``(R, samples)`` array: one row per replica, one
    column per sample.  Samples are taken every ``record_every`` *rounds* of
    :meth:`EnsembleDynamics.run` (plus the initial and final states), so the
    columns of different replicas are aligned by round rather than by flip
    count — replicas that terminate early simply repeat their final values.
    All recorded quantities are incrementally maintained counters, so one
    sample costs O(R).
    """

    def __init__(self, n_replicas: int) -> None:
        self.n_replicas = n_replicas
        self._times: list[np.ndarray] = []
        self._n_flips: list[np.ndarray] = []
        self._n_unhappy: list[np.ndarray] = []
        self._n_flippable: list[np.ndarray] = []
        self._energy: list[np.ndarray] = []
        self._magnetization: list[np.ndarray] = []

    def record(self, ensemble: "EnsembleDynamics") -> None:
        """Append one sample of every replica's counters."""
        self._times.append(ensemble.times)
        self._n_flips.append(ensemble.n_flips)
        self._n_unhappy.append(ensemble.unhappy_counts())
        self._n_flippable.append(ensemble.flippable_counts())
        self._energy.append(ensemble.energies())
        self._magnetization.append(ensemble.magnetizations())

    def __len__(self) -> int:
        return len(self._times)

    def _stack(self, samples: list[np.ndarray], dtype) -> np.ndarray:
        if not samples:
            return np.zeros((self.n_replicas, 0), dtype=dtype)
        return np.stack(samples, axis=1)

    @property
    def times(self) -> np.ndarray:
        """``(R, samples)`` per-replica simulation clocks."""
        return self._stack(self._times, np.float64)

    @property
    def n_flips(self) -> np.ndarray:
        """``(R, samples)`` cumulative flip counts."""
        return self._stack(self._n_flips, np.int64)

    @property
    def n_unhappy(self) -> np.ndarray:
        """``(R, samples)`` unhappy-agent counts."""
        return self._stack(self._n_unhappy, np.int64)

    @property
    def n_flippable(self) -> np.ndarray:
        """``(R, samples)`` flippable-agent counts."""
        return self._stack(self._n_flippable, np.int64)

    @property
    def energy(self) -> np.ndarray:
        """``(R, samples)`` Lyapunov energies."""
        return self._stack(self._energy, np.int64)

    @property
    def magnetization(self) -> np.ndarray:
        """``(R, samples)`` mean spins."""
        return self._stack(self._magnetization, np.float64)

    def replica(self, replica: int) -> Trajectory:
        """One replica's samples as a scalar :class:`Trajectory`.

        The view plugs directly into :mod:`repro.analysis.trajectory`
        (summaries, decay profiles) exactly like a scalar engine recording.
        """
        if not 0 <= replica < self.n_replicas:
            raise StateError(
                f"replica index {replica} out of range for R={self.n_replicas}"
            )
        return Trajectory(
            times=[float(sample[replica]) for sample in self._times],
            n_flips=[int(sample[replica]) for sample in self._n_flips],
            n_unhappy=[int(sample[replica]) for sample in self._n_unhappy],
            n_flippable=[int(sample[replica]) for sample in self._n_flippable],
            energy=[int(sample[replica]) for sample in self._energy],
            magnetization=[float(sample[replica]) for sample in self._magnetization],
        )


@dataclass(frozen=True)
class EnsembleRunResult:
    """Per-replica outcome arrays of :meth:`EnsembleDynamics.run`.

    Every field mirrors the scalar :class:`~repro.core.dynamics.RunResult`
    with one entry per replica; counters are deltas relative to the start of
    the ``run`` call, exactly like the scalar engine reports them.
    """

    #: ``(R,)`` bool — reached the paper's termination condition.
    terminated: np.ndarray
    #: ``(R,)`` int — type flips performed during this run call.
    n_flips: np.ndarray
    #: ``(R,)`` int — scheduler steps taken during this run call.
    n_steps: np.ndarray
    #: ``(R,)`` float — per-replica simulation clock at the end of the run.
    final_time: np.ndarray
    #: ``(R, n_rows, n_cols)`` int8 — final configurations (copy).
    final_spins: np.ndarray
    #: Per-replica trajectory samples, when recording was requested.
    trajectory: Optional[EnsembleTrajectory] = None

    @property
    def n_replicas(self) -> int:
        """Number of replicas in the ensemble."""
        return int(self.terminated.shape[0])

    @property
    def all_terminated(self) -> bool:
        """True when every replica reached termination."""
        return bool(self.terminated.all())

    @property
    def total_flips(self) -> int:
        """Total flips across the ensemble (throughput bookkeeping)."""
        return int(self.n_flips.sum())


class EnsembleDynamics:
    """R lockstep replicas of the Glauber segregation process.

    Parameters
    ----------
    config:
        The shared model configuration.
    n_replicas:
        Number of replicas ``R``; ignored when ``replica_seeds`` is given.
    seed:
        Master seed; per-replica integer seeds are derived with
        :func:`repro.rng.replicate_seeds`, matching what
        :func:`repro.experiments.runner.run_experiment` hands to scalar
        replicate runs.
    replica_seeds:
        Explicit per-replica integer seeds (overrides ``seed``/``n_replicas``).
        Each replica spawns its init and dynamics streams from its seed the
        same way :class:`~repro.core.simulation.Simulation` does.
    initial_spins:
        Optional planted ``(R, n_rows, n_cols)`` ±1 array.  When omitted every
        replica draws its own Bernoulli initial configuration from its init
        stream.
    scheduler / flip_rule:
        Overrides for the configuration's defaults, as in the scalar engine.
    """

    def __init__(
        self,
        config: ModelConfig,
        n_replicas: Optional[int] = None,
        seed: SeedLike = None,
        replica_seeds: Optional[Sequence[int]] = None,
        initial_spins: Optional[np.ndarray] = None,
        scheduler: Optional[SchedulerKind] = None,
        flip_rule: Optional[FlipRule] = None,
    ) -> None:
        self.config = config
        if replica_seeds is not None:
            seeds = [int(s) for s in replica_seeds]
            if not seeds:
                raise ConfigurationError("replica_seeds must be non-empty")
        else:
            if n_replicas is None or n_replicas <= 0:
                raise ConfigurationError(
                    f"n_replicas must be a positive int, got {n_replicas!r}"
                )
            seeds = replicate_seeds(seed, n_replicas)
        self.replica_seeds: tuple[int, ...] = tuple(seeds)
        self.scheduler = scheduler if scheduler is not None else config.scheduler
        self.flip_rule = flip_rule if flip_rule is not None else config.flip_rule

        n_rows, n_cols = config.shape
        r = len(seeds)
        self._rngs: list[np.random.Generator] = []
        self._spins = np.empty((r, n_rows, n_cols), dtype=np.int8)
        for index, replica_seed in enumerate(seeds):
            # Mirror Simulation: one stream for the initial grid, one for the
            # dynamics, both spawned from the replica seed.
            init_rng, dynamics_rng = spawn_rngs(replica_seed, 2)
            self._rngs.append(dynamics_rng)
            if initial_spins is None:
                self._spins[index] = random_configuration(config, init_rng).spins
        if initial_spins is not None:
            planted = np.asarray(initial_spins)
            if planted.shape != (r, n_rows, n_cols):
                raise ConfigurationError(
                    f"initial_spins shape {planted.shape} does not match "
                    f"({r}, {n_rows}, {n_cols})"
                )
            if not np.all(np.isin(planted, (-1, 1))):
                raise ConfigurationError("initial_spins entries must be +1 or -1")
            self._spins[...] = planted.astype(np.int8)
        self._initial_spins = self._spins.copy()

        self._plus_counts = np.empty((r, n_rows, n_cols), dtype=np.int64)
        self._happy_mask = np.empty((r, n_rows, n_cols), dtype=bool)
        self._flippable_mask = np.empty((r, n_rows, n_cols), dtype=bool)
        self._unhappy = [_ReplicaIndexSet(config.n_sites) for _ in range(r)]
        self._flippable = [_ReplicaIndexSet(config.n_sites) for _ in range(r)]

        # Per-replica clocks/counters live in plain lists: they are touched
        # once per replica per round and Python-list access is measurably
        # cheaper than numpy scalar indexing on that path.
        self._times: list[float] = [0.0] * r
        self._n_steps: list[int] = [0] * r
        self._n_flips = np.zeros(r, dtype=np.int64)
        self._energies = np.zeros(r, dtype=np.int64)
        self._n_plus = np.zeros(r, dtype=np.int64)
        self._offsets = np.arange(-config.horizon, config.horizon + 1)
        self.recompute_all()

    # ------------------------------------------------------------- rebuilding

    def _classify(
        self, spins: np.ndarray, same: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched happy/flippable classification — the engine's variant hook.

        Every classification in the engine (the O(R * grid) rebuild and the
        per-flip window refresh) funnels through this one method, exactly as
        :meth:`repro.core.state.ModelState._classify` does on the scalar side.
        Subclasses implement variant rules by overriding it with the shared
        kernels from :mod:`repro.core.variants`; the base implementation
        applies the paper's one-sided rule via
        :func:`repro.core.state.classify_base`.
        """
        return classify_base(
            same, self.config.happiness_threshold, self.config.neighborhood_agents
        )

    def recompute_all(self) -> None:
        """Rebuild counts, masks and samplers from the spins (O(R * grid))."""
        w = self.config.horizon
        total = self.config.neighborhood_agents
        for r in range(self.n_replicas):
            self._plus_counts[r] = window_sums(
                (self._spins[r] == 1).astype(np.int64), w
            )
        same = np.where(self._spins == 1, self._plus_counts, total - self._plus_counts)
        self._energies = same.sum(axis=(1, 2), dtype=np.int64)
        self._n_plus = np.count_nonzero(self._spins == 1, axis=(1, 2)).astype(np.int64)
        self._happy_mask, self._flippable_mask = self._classify(self._spins, same)
        for r in range(self.n_replicas):
            self._unhappy[r].clear()
            self._flippable[r].clear()
            # Same insertion order as ModelState.recompute_all so that the
            # samplers' internal layouts (and hence RNG-draw outcomes) match.
            for index in np.flatnonzero(~self._happy_mask[r].ravel()):
                self._unhappy[r].add(int(index))
            for index in np.flatnonzero(self._flippable_mask[r].ravel()):
                self._flippable[r].add(int(index))

    # ------------------------------------------------------------- inspection

    @property
    def n_replicas(self) -> int:
        """Number of replicas."""
        return len(self._rngs)

    @property
    def times(self) -> np.ndarray:
        """``(R,)`` per-replica simulation clocks (copy)."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def n_flips(self) -> np.ndarray:
        """``(R,)`` per-replica flip counts (copy)."""
        return self._n_flips.copy()

    @property
    def n_steps(self) -> np.ndarray:
        """``(R,)`` per-replica scheduler step counts (copy)."""
        return np.asarray(self._n_steps, dtype=np.int64)

    @property
    def spins(self) -> np.ndarray:
        """The ``(R, n_rows, n_cols)`` spin array (owned by the engine)."""
        return self._spins

    def replica_spins(self, replica: int) -> np.ndarray:
        """Copy of one replica's configuration."""
        return self._spins[replica].copy()

    def initial_spins(self) -> np.ndarray:
        """Copy of the initial configurations."""
        return self._initial_spins.copy()

    def unhappy_counts(self) -> np.ndarray:
        """``(R,)`` current number of unhappy agents per replica."""
        return np.array([len(s) for s in self._unhappy], dtype=np.int64)

    def flippable_counts(self) -> np.ndarray:
        """``(R,)`` current number of flippable agents per replica."""
        return np.array([len(s) for s in self._flippable], dtype=np.int64)

    def happy_mask(self, replica: int) -> np.ndarray:
        """Boolean happy mask of one replica (copy)."""
        return self._happy_mask[replica].copy()

    def flippable_mask(self, replica: int) -> np.ndarray:
        """Boolean flippable mask of one replica (copy)."""
        return self._flippable_mask[replica].copy()

    def unhappy_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's unhappy agents."""
        return self._unhappy[replica].to_array()

    def flippable_indices(self, replica: int) -> np.ndarray:
        """Sorted flat indices of one replica's flippable agents."""
        return self._flippable[replica].to_array()

    def energies(self) -> np.ndarray:
        """``(R,)`` Lyapunov energies (total same-type neighbourhood count).

        Maintained incrementally by :meth:`_apply_flips` — an O(1)-per-flip
        window-free delta mirroring :meth:`repro.core.state.ModelState.apply_flip`
        — so reading it (e.g. from trajectory recording) is O(R); the tests
        cross-check it against the full recompute in :meth:`_energies_full`.
        """
        return self._energies.copy()

    def _energies_full(self) -> np.ndarray:
        """``(R,)`` energies recomputed from scratch (test/verification path)."""
        total = self.config.neighborhood_agents
        same = np.where(self._spins == 1, self._plus_counts, total - self._plus_counts)
        return same.sum(axis=(1, 2), dtype=np.int64)

    def magnetizations(self) -> np.ndarray:
        """``(R,)`` mean spins, maintained incrementally (O(R) per read)."""
        n_sites = self.config.n_sites
        return (2.0 * self._n_plus - n_sites) / n_sites

    def is_replica_terminated(self, replica: int) -> bool:
        """Scalar-engine termination condition for one replica."""
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            return len(self._flippable[replica]) == 0
        return len(self._unhappy[replica]) == 0

    def terminated_mask(self) -> np.ndarray:
        """``(R,)`` bool array of terminated replicas."""
        return np.array(
            [self.is_replica_terminated(r) for r in range(self.n_replicas)],
            dtype=bool,
        )

    @property
    def all_terminated(self) -> bool:
        """True when no replica can make further progress."""
        return all(self.is_replica_terminated(r) for r in range(self.n_replicas))

    def _candidate_sampler(self, replica: int) -> _ReplicaIndexSet:
        """The sampler the scheduler draws targets from (scalar-engine rule)."""
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            if self.scheduler is SchedulerKind.CONTINUOUS:
                return self._flippable[replica]
            return self._unhappy[replica]
        return self._unhappy[replica]

    # ------------------------------------------------------------------ steps

    def step_all(self, active: Optional[Sequence[int]] = None) -> np.ndarray:
        """Advance every active replica by one scheduler step.

        ``active`` restricts the round to the given replica indices (the
        ``run`` loop uses it to exclude replicas that hit their budgets);
        terminated replicas are always skipped.  Returns the array of replica
        indices that actually flipped this round.
        """
        if active is None:
            candidates = range(self.n_replicas)
        else:
            candidates = active
        only_if_happy = self.flip_rule is FlipRule.ONLY_IF_HAPPY
        continuous = self.scheduler is SchedulerKind.CONTINUOUS
        termination_sets = self._flippable if only_if_happy else self._unhappy
        samplers = (
            self._flippable if only_if_happy and continuous else self._unhappy
        )
        times = self._times
        steps = self._n_steps
        rngs = self._rngs
        reps: list[int] = []
        flats: list[int] = []
        for r in candidates:
            if len(termination_sets[r]) == 0:
                continue
            sampler = samplers[r]
            if len(sampler) == 0:
                continue
            rng = rngs[r]
            # Same draw order as GlauberDynamics.step: waiting time first
            # (continuous scheduler only), then the candidate index.
            if continuous:
                times[r] += float(rng.exponential(1.0 / len(sampler)))
            else:
                times[r] += 1.0
            steps[r] += 1
            reps.append(r)
            flats.append(sampler.sample(rng))
        if not reps:
            return np.empty(0, dtype=np.int64)

        n_rows, n_cols = self.config.shape
        rep_arr = np.asarray(reps, dtype=np.int64)
        flat_arr = np.asarray(flats, dtype=np.int64)
        rows = flat_arr // n_cols
        cols = flat_arr % n_cols
        if only_if_happy and not continuous:
            # Discrete scheduler samples unhappy agents, which may refuse to
            # flip.  (The continuous sampler only contains flippable agents,
            # so the gather would be all-True there.)
            do_flip = self._flippable_mask[rep_arr, rows, cols]
            rep_arr = rep_arr[do_flip]
            rows = rows[do_flip]
            cols = cols[do_flip]
            if rep_arr.size == 0:
                return rep_arr
        self._apply_flips(rep_arr, rows, cols)
        self._n_flips[rep_arr] += 1
        return rep_arr

    def _apply_flips(
        self, reps: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> None:
        """Flip one site per listed replica and refresh the touched windows.

        All the window arithmetic is batched over the flipping replicas: one
        fancy-indexed add updates every neighbourhood count, one classify call
        recomputes happiness for every touched window.  The (replica, row,
        col) triples are distinct — one flip per replica — so the in-place
        fancy-index updates never collide.
        """
        config = self.config
        n_rows, n_cols = config.shape
        total = config.neighborhood_agents

        new_values = -self._spins[reps, rows, cols]
        self._spins[reps, rows, cols] = new_values
        delta = new_values.astype(np.int64)

        offsets = self._offsets
        window_rows = (rows[:, None] + offsets[None, :]) % n_rows  # (F, W)
        window_cols = (cols[:, None] + offsets[None, :]) % n_cols  # (F, W)
        rep_index = reps[:, None, None]
        row_index = window_rows[:, :, None]
        col_index = window_cols[:, None, :]

        sub_plus = self._plus_counts[rep_index, row_index, col_index]
        # Incremental per-replica counters, mirroring the O(1) delta of
        # ModelState.apply_flip: neighbours move by spin(u) * delta (summing
        # to 2 * old_plus - total - old_spin) and the flipped agent is
        # re-scored under its new type.
        center = config.horizon
        old_plus_center = sub_plus[:, center, center].astype(np.int64)
        old_spin = -delta
        old_same_center = np.where(old_spin == 1, old_plus_center, total - old_plus_center)
        new_plus_center = old_plus_center + delta
        new_same_center = np.where(delta == 1, new_plus_center, total - new_plus_center)
        self._energies[reps] += (
            delta * (2 * old_plus_center - total - old_spin)
            + new_same_center
            - old_same_center
        )
        self._n_plus[reps] += delta
        sub_plus += delta[:, None, None]
        self._plus_counts[rep_index, row_index, col_index] = sub_plus
        sub_spins = self._spins[rep_index, row_index, col_index]
        sub_same = np.where(sub_spins == 1, sub_plus, total - sub_plus)
        sub_happy, sub_flippable = self._classify(sub_spins, sub_same)

        old_happy = self._happy_mask[rep_index, row_index, col_index]
        old_flippable = self._flippable_mask[rep_index, row_index, col_index]
        changed = (sub_happy != old_happy) | (sub_flippable != old_flippable)
        self._happy_mask[rep_index, row_index, col_index] = sub_happy
        self._flippable_mask[rep_index, row_index, col_index] = sub_flippable
        if not changed.any():
            return

        # Boolean-mask gathers preserve row-major (replica, window row,
        # window col) order — per replica this is exactly
        # ModelState._refresh_window's update order, which keeps the sampler
        # layouts scalar-identical.
        flat = window_rows[:, :, None] * n_cols + window_cols[:, None, :]
        changed_reps = np.broadcast_to(rep_index, changed.shape)[changed].tolist()
        changed_flats = flat[changed].tolist()
        changed_happy = sub_happy[changed].tolist()
        changed_flippable = sub_flippable[changed].tolist()
        unhappy_sets = self._unhappy
        flippable_sets = self._flippable
        for replica, index, happy, flippable in zip(
            changed_reps, changed_flats, changed_happy, changed_flippable
        ):
            unhappy_sets[replica].update_membership(index, not happy)
            flippable_sets[replica].update_membership(index, flippable)

    def run(
        self,
        max_flips: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_time: Optional[float] = None,
        record_trajectory: bool = False,
        record_every: int = 1,
    ) -> EnsembleRunResult:
        """Run every replica until termination or its per-replica budget.

        Budgets apply per replica, with the scalar engine's semantics: a
        replica stops stepping once its flip/step count within this call
        reaches the budget or its clock passes ``max_time``; the others keep
        going.

        ``record_trajectory`` samples every replica's incremental counters
        into an :class:`EnsembleTrajectory` every ``record_every`` lockstep
        *rounds* (plus the initial and final states).  One sample is O(R), so
        dense recording adds no per-site work.
        """
        if max_flips is not None and max_flips < 0:
            raise StateError(f"max_flips must be non-negative, got {max_flips}")
        if record_every <= 0:
            raise StateError("record_every must be positive")
        trajectory = EnsembleTrajectory(self.n_replicas) if record_trajectory else None
        if trajectory is not None:
            trajectory.record(self)
        start_flips = self._n_flips.copy()
        start_steps = list(self._n_steps)
        flips = self._n_flips
        steps = self._n_steps
        times = self._times
        remaining = list(range(self.n_replicas))
        rounds = 0
        while remaining:
            remaining = [
                r
                for r in remaining
                if not self.is_replica_terminated(r)
                and (max_flips is None or flips[r] - start_flips[r] < max_flips)
                and (max_steps is None or steps[r] - start_steps[r] < max_steps)
                and (max_time is None or times[r] < max_time)
            ]
            if not remaining:
                break
            self.step_all(remaining)
            rounds += 1
            if trajectory is not None and rounds % record_every == 0:
                trajectory.record(self)
        if trajectory is not None and not (
            np.array_equal(trajectory._times[-1], self.times)
            and np.array_equal(trajectory._n_flips[-1], self._n_flips)
        ):
            trajectory.record(self)
        return EnsembleRunResult(
            terminated=self.terminated_mask(),
            n_flips=self._n_flips - start_flips,
            n_steps=self.n_steps - np.asarray(start_steps, dtype=np.int64),
            final_time=self.times,
            final_spins=self._spins.copy(),
            trajectory=trajectory,
        )


def run_ensemble(
    config: ModelConfig,
    n_replicas: int,
    seed: SeedLike = None,
    max_flips: Optional[int] = None,
    scheduler: Optional[SchedulerKind] = None,
    flip_rule: Optional[FlipRule] = None,
    record_trajectory: bool = False,
    record_every: int = 1,
) -> EnsembleRunResult:
    """Convenience wrapper: build an :class:`EnsembleDynamics` and run it."""
    ensemble = EnsembleDynamics(
        config,
        n_replicas=n_replicas,
        seed=seed,
        scheduler=scheduler,
        flip_rule=flip_rule,
    )
    return ensemble.run(
        max_flips=max_flips,
        record_trajectory=record_trajectory,
        record_every=record_every,
    )
