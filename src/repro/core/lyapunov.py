"""Lyapunov (energy) functions for the segregation process.

The paper argues termination by observing that the sum over all agents of the
number of same-type agents in their neighbourhood strictly increases with
every allowed flip and is bounded above.  This module exposes that quantity
(and the equivalent pair-agreement count) as standalone functions that operate
on plain spin arrays, so analysis code can evaluate them on snapshots without
constructing a :class:`~repro.core.state.ModelState`.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighborhood import neighborhood_size, window_sums
from repro.utils.validation import require_spin_array


def same_type_count_field(spins: np.ndarray, horizon: int) -> np.ndarray:
    """Per-agent count of same-type agents (self included) within ``horizon``."""
    spins = require_spin_array(spins)
    plus_counts = window_sums((spins == 1).astype(np.int64), horizon)
    total = neighborhood_size(horizon)
    return np.where(spins == 1, plus_counts, total - plus_counts)


def lyapunov_energy(spins: np.ndarray, horizon: int) -> int:
    """The paper's Lyapunov function: total same-type neighbourhood count."""
    return int(same_type_count_field(spins, horizon).sum())


def agreement_pairs(spins: np.ndarray, horizon: int) -> int:
    """Number of unordered same-type pairs at l-infinity distance <= horizon.

    ``lyapunov_energy = n_sites + 2 * agreement_pairs`` because every agent
    agrees with itself and every agreeing pair is counted once from each end.
    The tests use this identity as a consistency check.
    """
    spins = require_spin_array(spins)
    energy = lyapunov_energy(spins, horizon)
    return (energy - spins.size) // 2


def max_energy(n_rows: int, n_cols: int, horizon: int) -> int:
    """Upper bound of the Lyapunov function (a fully monochromatic grid)."""
    return n_rows * n_cols * neighborhood_size(horizon)
