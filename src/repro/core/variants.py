"""Model variants discussed but not analysed in the paper.

Section I.A and the concluding remarks (Section V) mention several variants of
the basic model:

* **Two-sided comfort** — agents are "uncomfortable being both a minority or a
  majority in a largely segregated area": an agent is happy only when its
  same-type fraction lies in a band ``[tau_low, tau_high]``.  The paper lists
  this as a direction for further study; it is implemented here so the
  ablation benchmarks can contrast it with the one-sided model (which is
  "naturally biased towards segregation").
* **Per-type intolerances** — the Barmpalias-Elwes-Lewis-Pye model the paper
  compares against, where ``+1`` agents use ``tau_plus`` and ``-1`` agents use
  ``tau_minus`` (the paper's results cover the special case
  ``tau_plus = tau_minus``).

Each variant is one happiness rule, written once as a pure array kernel
(:func:`classify_two_sided`, :func:`classify_asymmetric`) and plugged into
*both* execution engines through their single classification hook:

* the scalar states (:class:`TwoSidedModelState`, :class:`AsymmetricModelState`)
  subclass :class:`~repro.core.state.ModelState` and run under the unmodified
  :class:`~repro.core.dynamics.GlauberDynamics` engine;
* the ensemble engines (:class:`TwoSidedEnsemble`, :class:`AsymmetricEnsemble`)
  subclass :class:`~repro.core.ensemble.EnsembleDynamics` and advance R
  lockstep replicas with the variant rule, bitwise equivalent to the scalar
  runs replica by replica (same replica seeds, same final grids, flip counts
  and trajectories).

:class:`VariantSpec` names a variant plus its parameters as a frozen,
picklable value, which is how experiment specs, the sweep runners and the CLI
select a rule without importing engine classes.

Note that the two-sided variant no longer has the paper's Lyapunov function,
so termination is not guaranteed — run it with a step or flip budget and read
per-replica termination status off the run result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics
from repro.core.grid import TorusGrid
from repro.core.state import ModelState
from repro.errors import ConfigurationError
from repro.types import VariantKind
from repro.utils.validation import require_in_range

# --------------------------------------------------------------- rule kernels


def two_sided_high_threshold(config: ModelConfig, tau_high: float) -> int:
    """Validate ``tau_high`` and return the integer upper comfort threshold.

    ``ceil`` is used for the lower threshold (as in the base model), ``floor``
    for the upper one, so the comfort band is the integer interval
    ``[config.happiness_threshold, high]``.
    """
    tau_high = require_in_range(tau_high, "tau_high", 0.0, 1.0)
    if tau_high < config.tau:
        raise ConfigurationError(
            f"tau_high={tau_high} must be at least the lower intolerance "
            f"tau={config.tau}"
        )
    return int(math.floor(tau_high * config.neighborhood_agents))


def asymmetric_minus_threshold(config: ModelConfig, tau_minus: float) -> int:
    """Validate ``tau_minus`` and return the ``-1`` agents' integer threshold."""
    tau_minus = require_in_range(tau_minus, "tau_minus", 0.0, 1.0)
    return int(math.ceil(tau_minus * config.neighborhood_agents))


def classify_two_sided(
    same: np.ndarray, low: int, high: int, total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Two-sided comfort rule as a pure array kernel.

    Happy iff the same-type count lies in the band ``[low, high]``; flippable
    iff unhappy and the post-flip count ``total - same + 1`` lands inside the
    band.  Shared by :class:`TwoSidedModelState` and :class:`TwoSidedEnsemble`
    so the two engines apply literally the same rule.
    """
    happy = (same >= low) & (same <= high)
    flipped_same = total - same + 1
    flippable = (~happy) & (flipped_same >= low) & (flipped_same <= high)
    return happy, flippable


def classify_asymmetric(
    spins: np.ndarray,
    same: np.ndarray,
    plus_threshold: int,
    minus_threshold: int,
    total: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-type intolerance rule as a pure array kernel.

    ``+1`` agents are happy at ``plus_threshold`` same-type neighbours, ``-1``
    agents at ``minus_threshold``; after a flip the agent adopts the *other*
    type, hence the other type's threshold applies to its post-flip count.
    Shared by :class:`AsymmetricModelState` and :class:`AsymmetricEnsemble`.
    """
    threshold = np.where(spins == 1, plus_threshold, minus_threshold)
    happy = same >= threshold
    flipped_threshold = np.where(spins == 1, minus_threshold, plus_threshold)
    flippable = (~happy) & (total - same + 1 >= flipped_threshold)
    return happy, flippable


# ----------------------------------------------------------------- rule mixins


class _TwoSidedRuleMixin:
    """Threshold setup + classification of the two-sided rule, written once.

    Both the scalar state and the lockstep ensemble inherit this mixin ahead
    of their engine base class, so the rule's dispatch lives in exactly one
    place and the two engines cannot drift apart.  ``_set_rule`` must run
    before the engine constructor's initial classification.
    """

    def _set_rule(self, config: ModelConfig, tau_high: float) -> None:
        """Validate ``tau_high`` and precompute the integer band bounds."""
        self.high_threshold = two_sided_high_threshold(config, tau_high)
        self.tau_high = float(tau_high)

    def _classify(self, spins: np.ndarray, same: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Two-sided comfort band, via the shared kernel."""
        return classify_two_sided(
            same,
            self.config.happiness_threshold,
            self.high_threshold,
            self.config.neighborhood_agents,
        )


class _AsymmetricRuleMixin:
    """Threshold setup + classification of the per-type rule, written once."""

    def _set_rule(self, config: ModelConfig, tau_minus: float) -> None:
        """Validate ``tau_minus`` and precompute the ``-1`` threshold."""
        self.minus_threshold = asymmetric_minus_threshold(config, tau_minus)
        self.tau_minus = float(tau_minus)

    def _classify(self, spins: np.ndarray, same: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-type thresholds, via the shared kernel."""
        return classify_asymmetric(
            spins,
            same,
            self.config.happiness_threshold,
            self.minus_threshold,
            self.config.neighborhood_agents,
        )


# -------------------------------------------------------------- scalar states


class TwoSidedModelState(_TwoSidedRuleMixin, ModelState):
    """State for the two-sided comfort variant.

    An agent is happy iff ``tau_low <= s(u) <= tau_high``.  A selected unhappy
    agent flips iff the flip lands its (new) same-type fraction inside the
    band.  With ``tau_high = 1`` this reduces exactly to the paper's model
    with ``tau = tau_low``.
    """

    def __init__(
        self,
        config: ModelConfig,
        tau_high: float,
        grid: Optional[TorusGrid] = None,
    ) -> None:
        self._set_rule(config, tau_high)
        super().__init__(config, grid)

    def would_be_happy_after_flip(self, row: int, col: int) -> bool:
        """Whether flipping would land the agent inside the comfort band."""
        same = self.same_type_count(row, col)
        flipped_same = self.config.neighborhood_agents - same + 1
        return self.config.happiness_threshold <= flipped_same <= self.high_threshold


class AsymmetricModelState(_AsymmetricRuleMixin, ModelState):
    """State for the per-type intolerance variant (Barmpalias et al. [26]).

    ``+1`` agents are happy when their same-type fraction is at least
    ``config.tau``; ``-1`` agents use ``tau_minus`` instead.  With
    ``tau_minus = config.tau`` this is exactly the base model.
    """

    def __init__(
        self,
        config: ModelConfig,
        tau_minus: float,
        grid: Optional[TorusGrid] = None,
    ) -> None:
        self._set_rule(config, tau_minus)
        super().__init__(config, grid)

    def would_be_happy_after_flip(self, row: int, col: int) -> bool:
        """Whether flipping satisfies the threshold of the agent's new type."""
        spin = self.grid.get(row, col)
        same = self.same_type_count(row, col)
        flipped_same = self.config.neighborhood_agents - same + 1
        new_threshold = (
            self.minus_threshold if spin == 1 else self.config.happiness_threshold
        )
        return flipped_same >= new_threshold

    def static_expected(self) -> bool:
        """Barmpalias et al.: for equal intolerances above 3/4 or below 1/4 the
        initial configuration stays static w.h.p.  Exposed for the ablation
        benchmark when the two intolerances coincide."""
        if self.tau_minus != self.config.tau:
            return False
        return self.config.tau < 0.25 or self.config.tau > 0.75


# ------------------------------------------------------------ ensemble engines


class TwoSidedEnsemble(_TwoSidedRuleMixin, EnsembleDynamics):
    """R lockstep replicas of the two-sided comfort variant.

    The mixin overrides the engine's single classification hook with the same
    kernel as :class:`TwoSidedModelState`, so replica ``r`` reproduces a
    scalar ``GlauberDynamics`` run over a ``TwoSidedModelState`` seeded with
    ``replica_seeds[r]`` bit for bit.  The variant has no Lyapunov function:
    always pass a ``max_steps``/``max_flips`` budget to :meth:`run` and read
    per-replica termination off the result's ``terminated`` array.
    """

    def __init__(self, config: ModelConfig, tau_high: float, **kwargs: object) -> None:
        # Thresholds must exist before the base constructor's initial
        # recompute_all() classifies the starting configurations.
        self._set_rule(config, tau_high)
        super().__init__(config, **kwargs)


class AsymmetricEnsemble(_AsymmetricRuleMixin, EnsembleDynamics):
    """R lockstep replicas of the per-type intolerance variant.

    The mixin overrides the engine's classification hook with the same kernel
    as :class:`AsymmetricModelState`; replica ``r`` is bitwise equivalent to
    the scalar variant run with seed ``replica_seeds[r]``.
    """

    def __init__(self, config: ModelConfig, tau_minus: float, **kwargs: object) -> None:
        self._set_rule(config, tau_minus)
        super().__init__(config, **kwargs)


# ---------------------------------------------------------------- variant spec


@dataclass(frozen=True)
class VariantSpec:
    """Which happiness rule a run applies, as a frozen picklable value.

    Experiment specs, the sweep runners (serial, ensemble and process-pool)
    and the CLI all carry one of these instead of engine classes; both
    execution engines are constructed from it via :meth:`make_state` (scalar)
    and :meth:`make_ensemble` (vectorized), guaranteeing the two paths apply
    the same rule with the same parameters.
    """

    kind: VariantKind = VariantKind.BASE
    #: Upper comfort bound of the two-sided band (two-sided variant only).
    tau_high: Optional[float] = None
    #: Intolerance of the ``-1`` agents (asymmetric variant only); the ``+1``
    #: agents use the configuration's ``tau`` (the paper's ``tau_plus``).
    tau_minus: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, VariantKind):
            raise ConfigurationError(
                f"kind must be a VariantKind, got {self.kind!r}"
            )
        if self.kind is VariantKind.TWO_SIDED:
            if self.tau_high is None:
                raise ConfigurationError("two-sided variant requires tau_high")
            if self.tau_minus is not None:
                raise ConfigurationError(
                    "tau_minus does not apply to the two-sided variant"
                )
            require_in_range(self.tau_high, "tau_high", 0.0, 1.0)
        elif self.kind is VariantKind.ASYMMETRIC:
            if self.tau_minus is None:
                raise ConfigurationError("asymmetric variant requires tau_minus")
            if self.tau_high is not None:
                raise ConfigurationError(
                    "tau_high does not apply to the asymmetric variant"
                )
            require_in_range(self.tau_minus, "tau_minus", 0.0, 1.0)
        else:
            if self.tau_high is not None or self.tau_minus is not None:
                raise ConfigurationError(
                    "the base model takes neither tau_high nor tau_minus"
                )

    # ------------------------------------------------------------ constructors

    @classmethod
    def base(cls) -> "VariantSpec":
        """The paper's one-sided model."""
        return cls(kind=VariantKind.BASE)

    @classmethod
    def two_sided(cls, tau_high: float) -> "VariantSpec":
        """Two-sided comfort band ``[config.tau, tau_high]``."""
        return cls(kind=VariantKind.TWO_SIDED, tau_high=tau_high)

    @classmethod
    def asymmetric(cls, tau_minus: float) -> "VariantSpec":
        """Per-type intolerances ``(config.tau, tau_minus)``."""
        return cls(kind=VariantKind.ASYMMETRIC, tau_minus=tau_minus)

    # -------------------------------------------------------------- inspection

    @property
    def is_base(self) -> bool:
        """True for the paper's unmodified rule."""
        return self.kind is VariantKind.BASE

    @property
    def guarantees_termination(self) -> bool:
        """Whether the paper's Lyapunov argument applies to this rule.

        Only the base model carries the strictly-increasing energy that proves
        termination; the two-sided band breaks it outright, and the
        asymmetric model's status depends on its thresholds, so both variants
        should be run with budgets.
        """
        return self.kind is VariantKind.BASE

    def describe(self) -> str:
        """Short human-readable tag for tables and CLI output."""
        if self.kind is VariantKind.TWO_SIDED:
            return f"two_sided[tau_high={self.tau_high:.4f}]"
        if self.kind is VariantKind.ASYMMETRIC:
            return f"asymmetric[tau_minus={self.tau_minus:.4f}]"
        return "base"

    # ------------------------------------------------------------ construction

    def make_state(
        self, config: ModelConfig, grid: Optional[TorusGrid] = None
    ) -> ModelState:
        """Build the scalar state implementing this rule."""
        if self.kind is VariantKind.TWO_SIDED:
            return TwoSidedModelState(config, tau_high=self.tau_high, grid=grid)
        if self.kind is VariantKind.ASYMMETRIC:
            return AsymmetricModelState(config, tau_minus=self.tau_minus, grid=grid)
        return ModelState(config, grid)

    def make_ensemble(self, config: ModelConfig, **kwargs: object) -> EnsembleDynamics:
        """Build the vectorized lockstep engine implementing this rule.

        ``kwargs`` are forwarded to :class:`~repro.core.ensemble.EnsembleDynamics`
        (``n_replicas``, ``seed``, ``replica_seeds``, ``initial_spins``,
        ``scheduler``, ``flip_rule``).
        """
        if self.kind is VariantKind.TWO_SIDED:
            return TwoSidedEnsemble(config, tau_high=self.tau_high, **kwargs)
        if self.kind is VariantKind.ASYMMETRIC:
            return AsymmetricEnsemble(config, tau_minus=self.tau_minus, **kwargs)
        return EnsembleDynamics(config, **kwargs)


#: The paper's unmodified rule — the default everywhere a variant is optional.
BASE_VARIANT = VariantSpec()
