"""Model variants discussed but not analysed in the paper.

Section I.A and the concluding remarks (Section V) mention several variants of
the basic model:

* **Two-sided comfort** — agents are "uncomfortable being both a minority or a
  majority in a largely segregated area": an agent is happy only when its
  same-type fraction lies in a band ``[tau_low, tau_high]``.  The paper lists
  this as a direction for further study; it is implemented here so the
  ablation benchmarks can contrast it with the one-sided model (which is
  "naturally biased towards segregation").
* **Per-type intolerances** — the Barmpalias-Elwes-Lewis-Pye model the paper
  compares against, where ``+1`` agents use ``tau_plus`` and ``-1`` agents use
  ``tau_minus`` (the paper's results cover the special case
  ``tau_plus = tau_minus``).

Both variants reuse the incremental bookkeeping of
:class:`~repro.core.state.ModelState` by overriding its single classification
hook, and run under the unmodified :class:`~repro.core.dynamics.GlauberDynamics`
engine.  Note that the two-sided variant no longer has the paper's Lyapunov
function, so termination is not guaranteed — run it with a step budget.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.state import ModelState
from repro.errors import ConfigurationError
from repro.utils.validation import require_in_range


class TwoSidedModelState(ModelState):
    """State for the two-sided comfort variant.

    An agent is happy iff ``tau_low <= s(u) <= tau_high``.  A selected unhappy
    agent flips iff the flip lands its (new) same-type fraction inside the
    band.  With ``tau_high = 1`` this reduces exactly to the paper's model
    with ``tau = tau_low``.
    """

    def __init__(
        self,
        config: ModelConfig,
        tau_high: float,
        grid: Optional[TorusGrid] = None,
    ) -> None:
        tau_high = require_in_range(tau_high, "tau_high", 0.0, 1.0)
        if tau_high < config.tau:
            raise ConfigurationError(
                f"tau_high={tau_high} must be at least the lower intolerance "
                f"tau={config.tau}"
            )
        n = config.neighborhood_agents
        # ceil for the lower threshold (as in the base model), floor for the
        # upper one so the band is the integer interval [low, high].
        self.high_threshold = int(math.floor(tau_high * n))
        self.tau_high = tau_high
        super().__init__(config, grid)

    def _classify(self, spins: np.ndarray, same: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        low = self.config.happiness_threshold
        high = self.high_threshold
        total = self.config.neighborhood_agents
        happy = (same >= low) & (same <= high)
        flipped_same = total - same + 1
        flippable = (~happy) & (flipped_same >= low) & (flipped_same <= high)
        return happy, flippable

    def would_be_happy_after_flip(self, row: int, col: int) -> bool:
        """Whether flipping would land the agent inside the comfort band."""
        same = self.same_type_count(row, col)
        flipped_same = self.config.neighborhood_agents - same + 1
        return self.config.happiness_threshold <= flipped_same <= self.high_threshold


class AsymmetricModelState(ModelState):
    """State for the per-type intolerance variant (Barmpalias et al. [26]).

    ``+1`` agents are happy when their same-type fraction is at least
    ``config.tau``; ``-1`` agents use ``tau_minus`` instead.  With
    ``tau_minus = config.tau`` this is exactly the base model.
    """

    def __init__(
        self,
        config: ModelConfig,
        tau_minus: float,
        grid: Optional[TorusGrid] = None,
    ) -> None:
        tau_minus = require_in_range(tau_minus, "tau_minus", 0.0, 1.0)
        self.tau_minus = tau_minus
        self.minus_threshold = int(math.ceil(tau_minus * config.neighborhood_agents))
        super().__init__(config, grid)

    def _threshold_for(self, spins: np.ndarray) -> np.ndarray:
        """Per-agent happiness threshold as an array aligned with ``spins``."""
        return np.where(
            spins == 1, self.config.happiness_threshold, self.minus_threshold
        )

    def _classify(self, spins: np.ndarray, same: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        total = self.config.neighborhood_agents
        threshold = self._threshold_for(spins)
        happy = same >= threshold
        # After a flip the agent adopts the *other* type, hence the other
        # type's threshold applies to its post-flip count.
        flipped_threshold = self._threshold_for(-spins)
        flippable = (~happy) & (total - same + 1 >= flipped_threshold)
        return happy, flippable

    def would_be_happy_after_flip(self, row: int, col: int) -> bool:
        """Whether flipping satisfies the threshold of the agent's new type."""
        spin = self.grid.get(row, col)
        same = self.same_type_count(row, col)
        flipped_same = self.config.neighborhood_agents - same + 1
        new_threshold = (
            self.minus_threshold if spin == 1 else self.config.happiness_threshold
        )
        return flipped_same >= new_threshold

    def static_expected(self) -> bool:
        """Barmpalias et al.: for equal intolerances above 3/4 or below 1/4 the
        initial configuration stays static w.h.p.  Exposed for the ablation
        benchmark when the two intolerances coincide."""
        if self.tau_minus != self.config.tau:
            return False
        return self.config.tau < 0.25 or self.config.tau > 0.75
