"""Model configuration.

:class:`ModelConfig` bundles the four parameters of the paper's model — grid
side ``n``, horizon ``w``, intolerance ``tau`` and initial Bernoulli density
``p`` — together with the derived quantities used throughout the proofs:
the neighbourhood size ``N = (2w+1)^2``, the integer happiness threshold
``ceil(tau * N)`` and the effective intolerance ``tau_count / N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.neighborhood import neighborhood_size
from repro.errors import ConfigurationError
from repro.types import FlipRule, SchedulerKind
from repro.utils.validation import (
    require_in_range,
    require_positive_int,
    require_probability,
)


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of the Schelling / Glauber segregation model.

    Parameters
    ----------
    n_rows, n_cols:
        Grid dimensions.  The paper uses a square ``n x n`` torus; rectangular
        tori are supported because they are occasionally convenient in tests.
    horizon:
        Neighbourhood radius ``w``; the neighbourhood of an agent is the
        ``(2w+1) x (2w+1)`` window centred at it (the agent included).
    tau:
        Intolerance ``tau ∈ [0, 1]``.  An agent is happy when the fraction of
        same-type agents in its neighbourhood is at least
        ``ceil(tau * N) / N`` — the paper rounds ``tau`` up to a multiple of
        ``1/N`` and this class performs the same rounding.
    density:
        Bernoulli parameter ``p`` of the initial distribution of ``+1`` agents
        (the paper studies ``p = 1/2``).
    scheduler / flip_rule:
        Defaults matching the paper: continuous-time Poisson clocks and
        flip-only-if-it-makes-the-agent-happy.
    """

    n_rows: int
    n_cols: int
    horizon: int
    tau: float
    density: float = 0.5
    scheduler: SchedulerKind = SchedulerKind.CONTINUOUS
    flip_rule: FlipRule = FlipRule.ONLY_IF_HAPPY
    # Derived, filled in __post_init__ (kept as fields so repr shows them).
    neighborhood_agents: int = field(init=False, default=0)
    happiness_threshold: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        n_rows = require_positive_int(self.n_rows, "n_rows")
        n_cols = require_positive_int(self.n_cols, "n_cols")
        horizon = require_positive_int(self.horizon, "horizon")
        tau = require_in_range(self.tau, "tau", 0.0, 1.0)
        density = require_probability(self.density, "density")
        if not isinstance(self.scheduler, SchedulerKind):
            raise ConfigurationError(
                f"scheduler must be a SchedulerKind, got {self.scheduler!r}"
            )
        if not isinstance(self.flip_rule, FlipRule):
            raise ConfigurationError(
                f"flip_rule must be a FlipRule, got {self.flip_rule!r}"
            )
        window_side = 2 * horizon + 1
        if window_side > min(n_rows, n_cols):
            raise ConfigurationError(
                f"neighbourhood side {window_side} does not fit on a "
                f"{n_rows}x{n_cols} torus"
            )
        n_agents = neighborhood_size(horizon)
        threshold = int(math.ceil(tau * n_agents))
        object.__setattr__(self, "n_rows", n_rows)
        object.__setattr__(self, "n_cols", n_cols)
        object.__setattr__(self, "horizon", horizon)
        object.__setattr__(self, "tau", tau)
        object.__setattr__(self, "density", density)
        object.__setattr__(self, "neighborhood_agents", n_agents)
        object.__setattr__(self, "happiness_threshold", threshold)

    # ------------------------------------------------------------------ API

    @classmethod
    def square(
        cls,
        side: int,
        horizon: int,
        tau: float,
        density: float = 0.5,
        scheduler: SchedulerKind = SchedulerKind.CONTINUOUS,
        flip_rule: FlipRule = FlipRule.ONLY_IF_HAPPY,
    ) -> "ModelConfig":
        """Create a configuration on a square ``side x side`` torus."""
        return cls(
            n_rows=side,
            n_cols=side,
            horizon=horizon,
            tau=tau,
            density=density,
            scheduler=scheduler,
            flip_rule=flip_rule,
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def n_sites(self) -> int:
        """Total number of agents on the grid."""
        return self.n_rows * self.n_cols

    @property
    def effective_tau(self) -> float:
        """The rounded intolerance ``ceil(tau * N) / N`` actually applied."""
        return self.happiness_threshold / self.neighborhood_agents

    @property
    def tau_prime(self) -> float:
        """The paper's ``tau' = (tau N - 2) / (N - 1)`` (Lemma 19)."""
        n = self.neighborhood_agents
        return (self.tau * n - 2.0) / (n - 1.0)

    def with_tau(self, tau: float) -> "ModelConfig":
        """Return a copy of this configuration with a different intolerance."""
        return replace(self, tau=tau)

    def with_horizon(self, horizon: int) -> "ModelConfig":
        """Return a copy of this configuration with a different horizon."""
        return replace(self, horizon=horizon)

    def with_density(self, density: float) -> "ModelConfig":
        """Return a copy of this configuration with a different density."""
        return replace(self, density=density)

    def describe(self) -> str:
        """One-line human-readable description (used by examples and benches)."""
        return (
            f"{self.n_rows}x{self.n_cols} torus, horizon w={self.horizon} "
            f"(N={self.neighborhood_agents}), tau={self.tau:.4f} "
            f"(threshold {self.happiness_threshold}/{self.neighborhood_agents}), "
            f"p={self.density:.2f}"
        )


def default_figure1_config(scale: Optional[float] = None) -> ModelConfig:
    """Configuration of the paper's Figure 1 (optionally scaled down).

    The paper simulates a 1000x1000 grid with neighbourhood size 441
    (``w = 10``) at ``tau = 0.42``.  ``scale`` shrinks the grid side by that
    factor for affordable test runs while keeping ``w`` and ``tau`` intact.
    """
    side = 1000
    if scale is not None:
        if scale <= 0 or scale > 1:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        side = max(int(side * scale), 21)
    return ModelConfig.square(side=side, horizon=10, tau=0.42)
