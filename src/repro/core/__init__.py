"""Core model: grid substrate, configuration, state tracking and dynamics."""

from repro.core.config import ModelConfig, default_figure1_config
from repro.core.dynamics import GlauberDynamics, RunResult, Trajectory, run_to_completion
from repro.core.ensemble import (
    EnsembleDynamics,
    EnsembleRunResult,
    EnsembleTrajectory,
    run_ensemble,
)
from repro.core.grid import TorusGrid
from repro.core.initializer import (
    checkerboard_configuration,
    density_sweep_configurations,
    planted_annulus_configuration,
    planted_block_configuration,
    planted_radical_region_configuration,
    radical_region_threshold,
    random_configuration,
    striped_configuration,
    uniform_configuration,
)
from repro.core.kawasaki import KawasakiDynamics, KawasakiRunResult
from repro.core.lyapunov import (
    agreement_pairs,
    lyapunov_energy,
    max_energy,
    same_type_count_field,
)
from repro.core.neighborhood import (
    annulus_mask,
    disc_mask,
    neighborhood_offsets,
    neighborhood_size,
    radius_for_size,
    square_mask,
    torus_euclidean_distance,
    torus_l1_distance,
    torus_linf_distance,
    window_sums,
    wrapped_window_indices,
)
from repro.core.simulation import Simulation, SimulationResult, Snapshot, simulate
from repro.core.state import ModelState, make_state
from repro.core.variants import AsymmetricModelState, TwoSidedModelState

__all__ = [
    "AsymmetricModelState",
    "EnsembleDynamics",
    "EnsembleRunResult",
    "EnsembleTrajectory",
    "GlauberDynamics",
    "TwoSidedModelState",
    "KawasakiDynamics",
    "KawasakiRunResult",
    "ModelConfig",
    "ModelState",
    "RunResult",
    "Simulation",
    "SimulationResult",
    "Snapshot",
    "TorusGrid",
    "Trajectory",
    "agreement_pairs",
    "annulus_mask",
    "checkerboard_configuration",
    "default_figure1_config",
    "density_sweep_configurations",
    "disc_mask",
    "lyapunov_energy",
    "make_state",
    "max_energy",
    "neighborhood_offsets",
    "neighborhood_size",
    "planted_annulus_configuration",
    "planted_block_configuration",
    "planted_radical_region_configuration",
    "radical_region_threshold",
    "radius_for_size",
    "random_configuration",
    "run_ensemble",
    "run_to_completion",
    "same_type_count_field",
    "simulate",
    "square_mask",
    "striped_configuration",
    "torus_euclidean_distance",
    "torus_l1_distance",
    "torus_linf_distance",
    "uniform_configuration",
    "window_sums",
    "wrapped_window_indices",
]
