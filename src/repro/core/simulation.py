"""High-level simulation facade.

:class:`Simulation` wires together configuration, initialisation, state
tracking and the Glauber dynamics engine behind a single object with a small
surface: construct it from a :class:`~repro.core.config.ModelConfig` (and an
optional planted initial grid), call :meth:`Simulation.run`, and read the
resulting :class:`SimulationResult`.  The examples and the experiment harness
are written against this facade rather than the lower-level pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics, RunResult, Trajectory
from repro.core.grid import TorusGrid
from repro.core.initializer import random_configuration
from repro.core.state import ModelState
from repro.core.variants import BASE_VARIANT, VariantSpec
from repro.errors import StateError
from repro.rng import SeedLike, spawn_rngs
from repro.types import FlipRule, SchedulerKind


@dataclass(frozen=True)
class Snapshot:
    """A copy of the configuration taken during a run."""

    time: float
    n_flips: int
    spins: np.ndarray


@dataclass(frozen=True)
class SimulationResult:
    """Everything a caller usually wants after a run."""

    config: ModelConfig
    initial_spins: np.ndarray
    final_spins: np.ndarray
    terminated: bool
    n_flips: int
    n_steps: int
    final_time: float
    snapshots: tuple[Snapshot, ...]
    trajectory: Optional[Trajectory]

    @property
    def flipped_fraction(self) -> float:
        """Fraction of sites whose final type differs from their initial type."""
        changed = np.count_nonzero(self.initial_spins != self.final_spins)
        return changed / self.initial_spins.size


class Simulation:
    """One seeded run of the Glauber segregation process.

    ``variant`` selects the happiness rule (base model, two-sided comfort or
    per-type intolerances) via :class:`~repro.core.variants.VariantSpec`; the
    seed-to-stream derivation is identical for every variant, so a variant
    ensemble replica seeded with the same integer reproduces the
    corresponding variant ``Simulation`` bit for bit.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: SeedLike = None,
        initial_grid: Optional[TorusGrid] = None,
        scheduler: Optional[SchedulerKind] = None,
        flip_rule: Optional[FlipRule] = None,
        variant: Optional[VariantSpec] = None,
    ) -> None:
        self.config = config
        self.variant = variant if variant is not None else BASE_VARIANT
        init_rng, dynamics_rng = spawn_rngs(seed, 2)
        if initial_grid is None:
            initial_grid = random_configuration(config, init_rng)
        self.state: ModelState = self.variant.make_state(config, initial_grid.copy())
        self.dynamics = GlauberDynamics(
            self.state, seed=dynamics_rng, scheduler=scheduler, flip_rule=flip_rule
        )
        self._initial_spins = self.state.snapshot()
        self._has_run = False

    # ------------------------------------------------------------------- API

    @property
    def initial_spins(self) -> np.ndarray:
        """Copy of the initial configuration."""
        return self._initial_spins.copy()

    def run(
        self,
        max_flips: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_time: Optional[float] = None,
        snapshot_flip_counts: Optional[Sequence[int]] = None,
        record_trajectory: bool = False,
        record_every: int = 100,
    ) -> SimulationResult:
        """Run the dynamics (to termination unless a budget is given).

        ``max_steps`` bounds scheduler steps (flips *and* no-op selections) —
        essential for the two-sided variant, which has no Lyapunov function
        and may never terminate.  ``snapshot_flip_counts`` requests
        configuration snapshots after the given cumulative flip counts — this
        is how the Figure 1 benchmark collects its intermediate panels.
        """
        if self._has_run:
            raise StateError("Simulation.run may only be called once per instance")
        self._has_run = True

        snapshots: list[Snapshot] = []
        pending = sorted(set(snapshot_flip_counts)) if snapshot_flip_counts else []
        if pending and pending[0] == 0:
            snapshots.append(Snapshot(0.0, 0, self.state.snapshot()))
            pending = pending[1:]

        def callback(dynamics: GlauberDynamics, event: object) -> None:
            while pending and dynamics.n_flips >= pending[0]:
                snapshots.append(
                    Snapshot(dynamics.time, dynamics.n_flips, dynamics.state.snapshot())
                )
                pending.pop(0)

        result: RunResult = self.dynamics.run(
            max_flips=max_flips,
            max_steps=max_steps,
            max_time=max_time,
            record_trajectory=record_trajectory,
            record_every=record_every,
            callback=callback if snapshot_flip_counts else None,
        )
        if not snapshots or snapshots[-1].n_flips != self.dynamics.n_flips:
            snapshots.append(
                Snapshot(self.dynamics.time, self.dynamics.n_flips, self.state.snapshot())
            )
        return SimulationResult(
            config=self.config,
            initial_spins=self._initial_spins.copy(),
            final_spins=self.state.snapshot(),
            terminated=result.terminated,
            n_flips=result.n_flips,
            n_steps=result.n_steps,
            final_time=result.final_time,
            snapshots=tuple(snapshots),
            trajectory=result.trajectory,
        )


def simulate(
    config: ModelConfig,
    seed: SeedLike = None,
    initial_grid: Optional[TorusGrid] = None,
    max_flips: Optional[int] = None,
    max_steps: Optional[int] = None,
    record_trajectory: bool = False,
    variant: Optional[VariantSpec] = None,
) -> SimulationResult:
    """One-call helper: build a :class:`Simulation` and run it."""
    simulation = Simulation(config, seed=seed, initial_grid=initial_grid, variant=variant)
    return simulation.run(
        max_flips=max_flips, max_steps=max_steps, record_trajectory=record_trajectory
    )
