"""Geometry of extended Moore neighbourhoods on the torus.

The paper's neighbourhood of radius ``rho`` around an agent ``u`` is the set
of all agents at l-infinity distance at most ``rho`` from ``u`` — a
``(2 rho + 1) x (2 rho + 1)`` square window, wrapped around the torus.  The
helpers in this module translate between radii, window sizes and modular index
arrays, and are shared by the dynamics engine, the analysis code and the
renormalisation substrate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def neighborhood_size(radius: int) -> int:
    """Number of agents in a neighbourhood of integer radius ``radius``.

    ``N = (2 * radius + 1) ** 2`` — the paper's ``N`` when ``radius`` is the
    horizon ``w``.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    return (2 * radius + 1) ** 2


def radius_for_size(size: int) -> int:
    """Inverse of :func:`neighborhood_size`; raises if ``size`` is not valid."""
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    side = int(round(np.sqrt(size)))
    if side * side != size or side % 2 == 0:
        raise ConfigurationError(
            f"{size} is not the size of a square odd-sided neighbourhood"
        )
    return (side - 1) // 2


def neighborhood_offsets(radius: int, include_center: bool = True) -> np.ndarray:
    """Return the ``(dr, dc)`` offsets of a radius-``radius`` neighbourhood.

    The result has shape ``(K, 2)`` where ``K`` is ``(2*radius+1)**2`` when
    ``include_center`` is true and one less otherwise.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    spread = np.arange(-radius, radius + 1)
    rows, cols = np.meshgrid(spread, spread, indexing="ij")
    offsets = np.stack([rows.ravel(), cols.ravel()], axis=1)
    if not include_center:
        keep = ~np.all(offsets == 0, axis=1)
        offsets = offsets[keep]
    return offsets


def wrapped_window_indices(
    n_rows: int, n_cols: int, row: int, col: int, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Modular row/column index arrays for the window centred at ``(row, col)``.

    The returned arrays are suitable for ``np.ix_`` indexing:
    ``array[np.ix_(rows, cols)]`` extracts (a copy of) the wrapped window.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    rows = np.arange(row - radius, row + radius + 1) % n_rows
    cols = np.arange(col - radius, col + radius + 1) % n_cols
    return rows, cols


def torus_linf_distance(
    a: tuple[int, int], b: tuple[int, int], n_rows: int, n_cols: int
) -> int:
    """l-infinity distance between two sites on the torus."""
    dr = abs(a[0] - b[0]) % n_rows
    dc = abs(a[1] - b[1]) % n_cols
    dr = min(dr, n_rows - dr)
    dc = min(dc, n_cols - dc)
    return int(max(dr, dc))


def torus_l1_distance(
    a: tuple[int, int], b: tuple[int, int], n_rows: int, n_cols: int
) -> int:
    """l-1 (Manhattan) distance between two sites on the torus."""
    dr = abs(a[0] - b[0]) % n_rows
    dc = abs(a[1] - b[1]) % n_cols
    dr = min(dr, n_rows - dr)
    dc = min(dc, n_cols - dc)
    return int(dr + dc)


def torus_euclidean_distance(
    a: tuple[int, int], b: tuple[int, int], n_rows: int, n_cols: int
) -> float:
    """Euclidean distance between two sites on the torus (used by firewalls)."""
    dr = abs(a[0] - b[0]) % n_rows
    dc = abs(a[1] - b[1]) % n_cols
    dr = min(dr, n_rows - dr)
    dc = min(dc, n_cols - dc)
    return float(np.hypot(dr, dc))


def wrapped_summed_area_table(arr: np.ndarray, pad: int) -> np.ndarray:
    """Summed-area table of ``arr`` torus-padded by ``pad`` on every side.

    The table has a leading zero row/column, so the sum of the padded array
    over ``[r0, r1) x [c0, c1)`` is ``T[r1, c1] - T[r0, c1] - T[r1, c0] +
    T[r0, c0]``.  Shared by :func:`window_sums` (one fixed radius for the
    whole grid) and the per-site doubling/bisection search of
    :func:`repro.analysis.regions.monochromatic_radius_map` (one table, many
    radii).
    """
    padded = np.pad(np.asarray(arr, dtype=np.int64), pad, mode="wrap")
    table = np.zeros((padded.shape[0] + 1, padded.shape[1] + 1), dtype=np.int64)
    table[1:, 1:] = padded.cumsum(axis=0).cumsum(axis=1)
    return table


def wrapped_summed_area_table_batch(arrs: np.ndarray, pad: int) -> np.ndarray:
    """Summed-area tables of a ``(R, n, m)`` stack, one cumsum pass for all.

    Batched :func:`wrapped_summed_area_table`: slice ``r`` of the result is
    bitwise identical to ``wrapped_summed_area_table(arrs[r], pad)`` (exact
    integer sums), but the padding and the two cumulative sums run once over
    the whole stack instead of once per replica.  This is what lets
    :func:`repro.analysis.regions.region_scan_table_batch` and the ensemble
    engine's rebuild share one table build across equal-shape replicas.
    """
    stack = np.asarray(arrs, dtype=np.int64)
    if stack.ndim != 3:
        raise ConfigurationError(
            f"arrs must be a (R, n, m) stack, got shape {stack.shape}"
        )
    padded = np.pad(stack, ((0, 0), (pad, pad), (pad, pad)), mode="wrap")
    table = np.zeros(
        (padded.shape[0], padded.shape[1] + 1, padded.shape[2] + 1), dtype=np.int64
    )
    table[:, 1:, 1:] = padded.cumsum(axis=1).cumsum(axis=2)
    return table


def window_sums_batch(indicators: np.ndarray, radius: int) -> np.ndarray:
    """Batched :func:`window_sums` over a ``(R, n, m)`` indicator stack.

    Slice ``r`` equals ``window_sums(indicators[r], radius)`` bit for bit;
    the summed-area tables of all replicas are built in one pass.
    """
    stack = np.asarray(indicators, dtype=np.int64)
    if stack.ndim != 3:
        raise ConfigurationError(
            f"indicators must be a (R, n, m) stack, got shape {stack.shape}"
        )
    n_rows, n_cols = stack.shape[1], stack.shape[2]
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    if 2 * radius + 1 > min(n_rows, n_cols):
        raise ConfigurationError(
            f"window side {2 * radius + 1} exceeds grid side {min(n_rows, n_cols)}"
        )
    if radius == 0:
        return stack.copy()
    table = wrapped_summed_area_table_batch(stack, radius)
    side = 2 * radius + 1
    top = np.arange(n_rows)
    left = np.arange(n_cols)
    bottom = top + side
    right = left + side
    return (
        table[:, bottom[:, None], right[None, :]]
        - table[:, top[:, None], right[None, :]]
        - table[:, bottom[:, None], left[None, :]]
        + table[:, top[:, None], left[None, :]]
    )


def window_sums(indicator: np.ndarray, radius: int) -> np.ndarray:
    """Wrapped moving-window sums of a 2-D array over square windows.

    ``window_sums(x, w)[i, j]`` equals the sum of ``x`` over the
    ``(2w+1) x (2w+1)`` window centred at ``(i, j)`` with toroidal wrap-around.
    Implemented with a padded summed-area table, which is O(grid size)
    regardless of the radius, so full-grid neighbourhood counts stay cheap even
    for large horizons.
    """
    arr = np.asarray(indicator, dtype=np.int64)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"indicator must be a 2-D array, got shape {arr.shape}"
        )
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    n_rows, n_cols = arr.shape
    if 2 * radius + 1 > min(n_rows, n_cols):
        raise ConfigurationError(
            f"window side {2 * radius + 1} exceeds grid side {min(n_rows, n_cols)}"
        )
    if radius == 0:
        return arr.copy()
    table = wrapped_summed_area_table(arr, radius)
    side = 2 * radius + 1
    top = np.arange(n_rows)
    left = np.arange(n_cols)
    bottom = top + side
    right = left + side
    sums = (
        table[np.ix_(bottom, right)]
        - table[np.ix_(top, right)]
        - table[np.ix_(bottom, left)]
        + table[np.ix_(top, left)]
    )
    return sums


def annulus_mask(
    n_rows: int,
    n_cols: int,
    center: tuple[int, int],
    inner_radius: float,
    outer_radius: float,
) -> np.ndarray:
    """Boolean mask of sites with Euclidean torus distance in ``[inner, outer]``.

    Used to carve the annular firewalls of Lemma 9 out of a configuration.
    """
    if inner_radius < 0 or outer_radius < inner_radius:
        raise ConfigurationError(
            "annulus radii must satisfy 0 <= inner <= outer, got "
            f"inner={inner_radius}, outer={outer_radius}"
        )
    rows = np.arange(n_rows)
    cols = np.arange(n_cols)
    dr = np.abs(rows - center[0])
    dr = np.minimum(dr, n_rows - dr)
    dc = np.abs(cols - center[1])
    dc = np.minimum(dc, n_cols - dc)
    dist = np.hypot(dr[:, None], dc[None, :])
    return (dist >= inner_radius) & (dist <= outer_radius)


def disc_mask(
    n_rows: int, n_cols: int, center: tuple[int, int], radius: float
) -> np.ndarray:
    """Boolean mask of sites within Euclidean torus distance ``radius``."""
    return annulus_mask(n_rows, n_cols, center, 0.0, radius)


def square_mask(
    n_rows: int, n_cols: int, center: tuple[int, int], radius: int
) -> np.ndarray:
    """Boolean mask of the l-infinity ball (square window) around ``center``."""
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    rows = np.arange(n_rows)
    cols = np.arange(n_cols)
    dr = np.abs(rows - center[0])
    dr = np.minimum(dr, n_rows - dr)
    dc = np.abs(cols - center[1])
    dc = np.minimum(dc, n_cols - dc)
    return (dr[:, None] <= radius) & (dc[None, :] <= radius)
