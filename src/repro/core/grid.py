"""The torus grid substrate.

:class:`TorusGrid` owns the ±1 spin array representing agent types and exposes
wrap-around window access, whole-grid neighbourhood counts and simple editing
operations.  It is deliberately dumb about the model: happiness, thresholds and
dynamics live in :mod:`repro.core.state` and :mod:`repro.core.dynamics`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.neighborhood import (
    square_mask,
    window_sums,
    wrapped_window_indices,
)
from repro.errors import ConfigurationError
from repro.types import AgentType
from repro.utils.validation import require_spin_array


class TorusGrid:
    """A two-dimensional grid of ±1 agents with toroidal boundary conditions."""

    def __init__(self, spins: np.ndarray) -> None:
        self._spins = require_spin_array(spins).copy()

    # ----------------------------------------------------------- constructors

    @classmethod
    def filled(cls, n_rows: int, n_cols: int, agent_type: AgentType) -> "TorusGrid":
        """A grid where every agent has the same type."""
        if n_rows <= 0 or n_cols <= 0:
            raise ConfigurationError(
                f"grid dimensions must be positive, got {n_rows}x{n_cols}"
            )
        spins = np.full((n_rows, n_cols), int(agent_type), dtype=np.int8)
        return cls(spins)

    @classmethod
    def from_random(
        cls, n_rows: int, n_cols: int, density: float, rng: np.random.Generator
    ) -> "TorusGrid":
        """Bernoulli(``density``) i.i.d. types: ``+1`` with probability ``density``."""
        if not 0.0 <= density <= 1.0:
            raise ConfigurationError(f"density must lie in [0, 1], got {density}")
        draws = rng.random((n_rows, n_cols))
        spins = np.where(draws < density, 1, -1).astype(np.int8)
        return cls(spins)

    # ---------------------------------------------------------------- basics

    @property
    def spins(self) -> np.ndarray:
        """The underlying ±1 array (mutable; treat as owned by the grid)."""
        return self._spins

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(n_rows, n_cols)``."""
        return self._spins.shape

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._spins.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self._spins.shape[1]

    @property
    def n_sites(self) -> int:
        """Total number of agents."""
        return self._spins.size

    def copy(self) -> "TorusGrid":
        """Deep copy of the grid."""
        return TorusGrid(self._spins)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TorusGrid):
            return NotImplemented
        return bool(np.array_equal(self._spins, other._spins))

    def __hash__(self) -> int:  # grids are mutable; keep them unhashable
        raise TypeError("TorusGrid is mutable and therefore unhashable")

    # -------------------------------------------------------------- accessors

    def get(self, row: int, col: int) -> int:
        """Type (+1 or -1) of the agent at ``(row, col)`` (wrapped)."""
        return int(self._spins[row % self.n_rows, col % self.n_cols])

    def set(self, row: int, col: int, value: int) -> None:
        """Set the type of the agent at ``(row, col)`` (wrapped)."""
        if value not in (-1, 1):
            raise ConfigurationError(f"agent type must be +1 or -1, got {value}")
        self._spins[row % self.n_rows, col % self.n_cols] = value

    def flip(self, row: int, col: int) -> int:
        """Flip the agent at ``(row, col)``; returns the new type."""
        row %= self.n_rows
        col %= self.n_cols
        new_value = -int(self._spins[row, col])
        self._spins[row, col] = new_value
        return new_value

    def window(self, row: int, col: int, radius: int) -> np.ndarray:
        """Copy of the wrapped ``(2r+1) x (2r+1)`` window centred at ``(row, col)``."""
        rows, cols = wrapped_window_indices(
            self.n_rows, self.n_cols, row % self.n_rows, col % self.n_cols, radius
        )
        return self._spins[np.ix_(rows, cols)].copy()

    def set_window(self, row: int, col: int, values: np.ndarray) -> None:
        """Overwrite the wrapped window centred at ``(row, col)`` with ``values``."""
        values = require_spin_array(values, "window values")
        side = values.shape[0]
        if values.shape[0] != values.shape[1] or side % 2 == 0:
            raise ConfigurationError(
                f"window values must be a square odd-sided array, got {values.shape}"
            )
        radius = (side - 1) // 2
        rows, cols = wrapped_window_indices(
            self.n_rows, self.n_cols, row % self.n_rows, col % self.n_cols, radius
        )
        self._spins[np.ix_(rows, cols)] = values

    def set_square(
        self, center: tuple[int, int], radius: int, agent_type: AgentType
    ) -> None:
        """Set every agent in the l-infinity ball around ``center`` to one type."""
        mask = square_mask(self.n_rows, self.n_cols, center, radius)
        self._spins[mask] = int(agent_type)

    def set_mask(self, mask: np.ndarray, agent_type: AgentType) -> None:
        """Set every agent selected by a boolean ``mask`` to one type."""
        if mask.shape != self.shape:
            raise ConfigurationError(
                f"mask shape {mask.shape} does not match grid shape {self.shape}"
            )
        self._spins[mask] = int(agent_type)

    # ------------------------------------------------------------------ counts

    def count(self, agent_type: AgentType) -> int:
        """Total number of agents of ``agent_type`` on the grid."""
        return int(np.count_nonzero(self._spins == int(agent_type)))

    def magnetization(self) -> float:
        """Mean spin, i.e. ``(#plus - #minus) / n_sites``."""
        return float(self._spins.mean())

    def plus_fraction(self) -> float:
        """Fraction of ``+1`` agents."""
        return self.count(AgentType.PLUS) / self.n_sites

    def plus_neighborhood_counts(self, radius: int) -> np.ndarray:
        """Number of ``+1`` agents in every agent's radius-``radius`` neighbourhood.

        This is the whole-grid counterpart of the incremental bookkeeping done
        by :class:`repro.core.state.ModelState` and is used to (re)initialise
        it and to cross-check the incremental updates in tests.
        """
        return window_sums((self._spins == 1).astype(np.int64), radius)

    def same_type_neighborhood_counts(self, radius: int) -> np.ndarray:
        """Number of same-type agents (including self) in every neighbourhood."""
        plus_counts = self.plus_neighborhood_counts(radius)
        total = (2 * radius + 1) ** 2
        return np.where(self._spins == 1, plus_counts, total - plus_counts)

    # ------------------------------------------------------------------ misc

    def sites(self) -> Iterable[tuple[int, int]]:
        """Iterate over all ``(row, col)`` coordinates in row-major order."""
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield (row, col)

    def flat_index(self, row: int, col: int) -> int:
        """Row-major flat index of ``(row, col)`` (wrapped)."""
        return (row % self.n_rows) * self.n_cols + (col % self.n_cols)

    def site_of(self, flat_index: int) -> tuple[int, int]:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= flat_index < self.n_sites:
            raise IndexError(f"flat index {flat_index} out of range")
        return divmod(flat_index, self.n_cols)
