"""Incremental happiness bookkeeping.

:class:`ModelState` pairs a :class:`~repro.core.grid.TorusGrid` with the
paper's happiness semantics and keeps everything the dynamics engine needs —
per-agent same-type neighbourhood counts, happy / unhappy / flippable masks
and O(1)-sampling index sets — up to date incrementally: a single flip only
touches the ``(2w+1) x (2w+1)`` window of agents whose neighbourhood contains
the flipped site.

Terminology (Section II.A of the paper):

* ``same_type_count(u)`` — number of agents of the same type as ``u`` in its
  neighbourhood, the agent itself included.
* ``u`` is *happy* iff ``same_type_count(u) >= ceil(tau * N)``.
* ``u`` is *flippable* iff it is unhappy **and** flipping its type would make
  it happy (these are exactly the paper's *super-unhappy* agents when
  ``tau > 1/2``; for ``tau <= 1/2`` every unhappy agent is flippable).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.initializer import random_configuration
from repro.errors import ConfigurationError, StateError
from repro.rng import SeedLike
from repro.utils.indexset import IndexSampler


def classify_base(
    same: np.ndarray, threshold: int, total: int
) -> tuple[np.ndarray, np.ndarray]:
    """The base model's happiness rule as a pure array kernel.

    Returns ``(happy, flippable)`` for the given same-type counts: happy iff
    the count meets the single threshold, flippable iff unhappy and the
    post-flip count ``total - same + 1`` would meet it.  Both the scalar
    :class:`ModelState` and the vectorized
    :class:`~repro.core.ensemble.EnsembleDynamics` call this one kernel from
    their ``_classify`` hooks, so the two engines cannot drift apart on the
    rule itself (their cross-consistency tests lock the rest down).
    """
    happy = same >= threshold
    # ``total - same + 1 >= threshold`` rearranged to one integer compare.
    flippable = (~happy) & (same <= total + 1 - threshold)
    return happy, flippable


class ModelState:
    """Mutable model state: grid plus derived happiness structures."""

    def __init__(self, config: ModelConfig, grid: Optional[TorusGrid] = None) -> None:
        self.config = config
        if grid is None:
            grid = random_configuration(config)
        if grid.shape != config.shape:
            raise ConfigurationError(
                f"grid shape {grid.shape} does not match config shape {config.shape}"
            )
        self.grid = grid
        n_sites = config.n_sites
        self._unhappy = IndexSampler(n_sites)
        self._flippable = IndexSampler(n_sites)
        self._plus_counts = np.zeros(config.shape, dtype=np.int64)
        self._happy_mask = np.zeros(config.shape, dtype=bool)
        self._flippable_mask = np.zeros(config.shape, dtype=bool)
        self._energy = 0
        self._n_plus = 0
        self.recompute_all()

    # ------------------------------------------------------------- rebuilding

    def _classify(self, spins: np.ndarray, same: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(happy, flippable)`` boolean arrays for the given counts.

        The base model's rule: happy iff the same-type count meets the single
        threshold, flippable iff unhappy and the post-flip count would meet
        it.  Variant models (two-sided comfort, per-type intolerances) override
        this single hook; everything else — incremental updates, samplers,
        dynamics — is inherited unchanged.  The vectorized ensemble engine
        exposes the same hook, and the variant ensembles in
        :mod:`repro.core.variants` override both from one shared kernel.
        """
        return classify_base(
            same, self.config.happiness_threshold, self.config.neighborhood_agents
        )

    def recompute_all(self) -> None:
        """Rebuild all derived structures from the grid (O(grid size))."""
        w = self.config.horizon
        self._plus_counts = self.grid.plus_neighborhood_counts(w)
        same = self._same_counts_full()
        self._energy = int(same.sum())
        self._n_plus = int(np.count_nonzero(self.grid.spins == 1))
        self._happy_mask, self._flippable_mask = self._classify(self.grid.spins, same)
        self._unhappy.clear()
        self._flippable.clear()
        unhappy_indices = np.flatnonzero(~self._happy_mask.ravel())
        flippable_indices = np.flatnonzero(self._flippable_mask.ravel())
        for index in unhappy_indices:
            self._unhappy.add(int(index))
        for index in flippable_indices:
            self._flippable.add(int(index))

    def _same_counts_full(self) -> np.ndarray:
        total = self.config.neighborhood_agents
        return np.where(
            self.grid.spins == 1, self._plus_counts, total - self._plus_counts
        )

    # ------------------------------------------------------------- inspection

    @property
    def n_unhappy(self) -> int:
        """Current number of unhappy agents."""
        return len(self._unhappy)

    @property
    def n_flippable(self) -> int:
        """Current number of agents that would become happy by flipping."""
        return len(self._flippable)

    @property
    def unhappy_sampler(self) -> IndexSampler:
        """Sampler over flat indices of unhappy agents (owned by the state)."""
        return self._unhappy

    @property
    def flippable_sampler(self) -> IndexSampler:
        """Sampler over flat indices of flippable agents (owned by the state)."""
        return self._flippable

    def happy_mask(self) -> np.ndarray:
        """Boolean array of happy agents (copy)."""
        return self._happy_mask.copy()

    def unhappy_mask(self) -> np.ndarray:
        """Boolean array of unhappy agents (copy)."""
        return ~self._happy_mask

    def flippable_mask(self) -> np.ndarray:
        """Boolean array of flippable (super-unhappy) agents (copy)."""
        return self._flippable_mask.copy()

    def plus_counts(self) -> np.ndarray:
        """Per-agent count of ``+1`` agents in the neighbourhood (copy)."""
        return self._plus_counts.copy()

    def same_type_counts(self) -> np.ndarray:
        """Per-agent count of same-type agents in the neighbourhood (copy)."""
        return self._same_counts_full()

    def same_type_count(self, row: int, col: int) -> int:
        """Same-type neighbourhood count of a single agent."""
        row %= self.config.n_rows
        col %= self.config.n_cols
        plus = int(self._plus_counts[row, col])
        if self.grid.spins[row, col] == 1:
            return plus
        return self.config.neighborhood_agents - plus

    def same_type_fraction(self, row: int, col: int) -> float:
        """The paper's ``s(u)`` for a single agent."""
        return self.same_type_count(row, col) / self.config.neighborhood_agents

    def is_happy(self, row: int, col: int) -> bool:
        """Whether the agent at ``(row, col)`` is happy."""
        return bool(
            self._happy_mask[row % self.config.n_rows, col % self.config.n_cols]
        )

    def is_flippable(self, row: int, col: int) -> bool:
        """Whether flipping the agent at ``(row, col)`` would make it happy
        (and it is currently unhappy)."""
        return bool(
            self._flippable_mask[row % self.config.n_rows, col % self.config.n_cols]
        )

    def would_be_happy_after_flip(self, row: int, col: int) -> bool:
        """Whether the agent would be happy if it flipped right now."""
        same = self.same_type_count(row, col)
        total = self.config.neighborhood_agents
        return total - same + 1 >= self.config.happiness_threshold

    def energy(self) -> int:
        """The paper's Lyapunov function: total same-type neighbourhood count.

        Every flip performed under the model's rule strictly increases this
        quantity, which is how the paper argues termination; the dynamics
        tests assert that monotonicity.  The value is maintained incrementally
        by :meth:`apply_flip` (an O(w^2) window delta per flip), so reading it
        — e.g. from ``Trajectory.record`` — is O(1) rather than a full-grid
        recompute; the tests cross-check it against
        ``_same_counts_full().sum()``.
        """
        return self._energy

    def magnetization(self) -> float:
        """Mean spin ``(#plus - #minus) / n_sites``, maintained incrementally.

        Bitwise identical to ``grid.magnetization()`` (both divide the exact
        integer spin sum by the site count) but O(1) per read.
        """
        n_sites = self.config.n_sites
        return float(2 * self._n_plus - n_sites) / n_sites

    def is_terminated(self) -> bool:
        """True when no agent can flip (the paper's termination condition)."""
        return len(self._flippable) == 0

    # --------------------------------------------------------------- mutation

    def apply_flip(self, row: int, col: int) -> int:
        """Flip the agent at ``(row, col)`` and update all derived structures.

        Returns the agent's new type.  The caller (the dynamics engine) is
        responsible for deciding *whether* the flip is allowed; the state
        object applies it unconditionally so that planted-configuration
        experiments can also use it.
        """
        n_rows, n_cols = self.config.shape
        row %= n_rows
        col %= n_cols
        total = self.config.neighborhood_agents
        old_spin = int(self.grid.spins[row, col])
        old_plus = int(self._plus_counts[row, col])
        new_value = self.grid.flip(row, col)
        delta = 1 if new_value == 1 else -1
        # O(1) Lyapunov bookkeeping: every *other* agent u whose window holds
        # the flipped site sees its same-type count move by spin(u) * delta,
        # and those spins sum to 2 * old_plus - total - old_spin; the flipped
        # agent itself is re-scored under its new type.
        old_same_center = old_plus if old_spin == 1 else total - old_plus
        new_plus_center = old_plus + delta
        new_same_center = new_plus_center if new_value == 1 else total - new_plus_center
        self._energy += (
            delta * (2 * old_plus - total - old_spin)
            + new_same_center
            - old_same_center
        )
        self._n_plus += delta
        w = self.config.horizon
        rows = np.arange(row - w, row + w + 1) % n_rows
        cols = np.arange(col - w, col + w + 1) % n_cols
        window = np.ix_(rows, cols)
        self._plus_counts[window] += delta
        self._refresh_window(rows, cols)
        return new_value

    def apply_spin_array(self, spins: np.ndarray) -> None:
        """Replace the whole configuration and rebuild derived structures."""
        if spins.shape != self.config.shape:
            raise ConfigurationError(
                f"spin array shape {spins.shape} does not match {self.config.shape}"
            )
        self.grid.spins[...] = spins
        self.recompute_all()

    def _refresh_window(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Recompute happiness/flippability for the agents at ``rows x cols``."""
        total = self.config.neighborhood_agents
        window = np.ix_(rows, cols)
        sub_spins = self.grid.spins[window]
        sub_plus = self._plus_counts[window]
        sub_same = np.where(sub_spins == 1, sub_plus, total - sub_plus)
        sub_happy, sub_flippable = self._classify(sub_spins, sub_same)

        old_happy = self._happy_mask[window]
        old_flippable = self._flippable_mask[window]
        happy_changed = sub_happy != old_happy
        flippable_changed = sub_flippable != old_flippable

        self._happy_mask[window] = sub_happy
        self._flippable_mask[window] = sub_flippable

        if not happy_changed.any() and not flippable_changed.any():
            return
        n_cols = self.config.n_cols
        flat = rows[:, None] * n_cols + cols[None, :]
        for local in np.argwhere(happy_changed | flippable_changed):
            i, j = int(local[0]), int(local[1])
            index = int(flat[i, j])
            self._unhappy.update_membership(index, not sub_happy[i, j])
            self._flippable.update_membership(index, bool(sub_flippable[i, j]))

    # ------------------------------------------------------------------ misc

    def site_of(self, flat_index: int) -> tuple[int, int]:
        """Convert a flat index used by the samplers back to ``(row, col)``."""
        return self.grid.site_of(flat_index)

    def sample_unhappy(self, rng: np.random.Generator) -> tuple[int, int]:
        """A uniformly random unhappy agent; raises ``StateError`` if none."""
        if len(self._unhappy) == 0:
            raise StateError("no unhappy agents to sample")
        return self.site_of(self._unhappy.sample(rng))

    def sample_flippable(self, rng: np.random.Generator) -> tuple[int, int]:
        """A uniformly random flippable agent; raises ``StateError`` if none."""
        if len(self._flippable) == 0:
            raise StateError("no flippable agents to sample")
        return self.site_of(self._flippable.sample(rng))

    def snapshot(self) -> np.ndarray:
        """A copy of the current spin configuration."""
        return self.grid.spins.copy()


def make_state(
    config: ModelConfig,
    grid: Optional[TorusGrid] = None,
    seed: SeedLike = None,
) -> ModelState:
    """Convenience constructor: random initial configuration unless given one."""
    if grid is None:
        grid = random_configuration(config, seed)
    return ModelState(config, grid)
