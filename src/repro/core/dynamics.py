"""Glauber dynamics engine.

The paper's process attaches an independent rate-1 Poisson clock to every
agent; when an unhappy agent's clock rings it flips its type iff the flip
makes it happy.  Two schedulers are provided:

* :data:`~repro.types.SchedulerKind.CONTINUOUS` — exact simulation of the
  continuous-time process restricted to *effective* events.  Clock rings of
  happy or non-flippable agents never change the state, so the embedded jump
  chain picks a uniformly random flippable agent and the waiting time to the
  next effective ring is exponential with rate equal to the number of
  flippable agents (each clock has rate 1).
* :data:`~repro.types.SchedulerKind.DISCRETE` — the equivalent discrete-time
  chain described in Section II.A: at every step one unhappy agent is chosen
  uniformly at random and flipped iff the flip makes it happy.

Both schedulers terminate exactly when no agent can flip, matching the
paper's termination condition, and both strictly increase the Lyapunov energy
on every flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.state import ModelState
from repro.errors import StateError
from repro.rng import SeedLike, make_rng
from repro.types import AgentType, FlipEvent, FlipRule, SchedulerKind, Site


@dataclass
class Trajectory:
    """Time series recorded during a run (one sample every ``record_every`` flips)."""

    times: list[float] = field(default_factory=list)
    n_flips: list[int] = field(default_factory=list)
    n_unhappy: list[int] = field(default_factory=list)
    n_flippable: list[int] = field(default_factory=list)
    energy: list[int] = field(default_factory=list)
    magnetization: list[float] = field(default_factory=list)

    def record(self, time: float, flips: int, state: ModelState) -> None:
        """Append one sample taken from ``state`` at simulation ``time``.

        Every recorded quantity is an incrementally maintained counter of the
        state, so one sample costs O(1) — dense recording (``record_every=1``)
        no longer triggers per-sample full-grid recomputes.
        """
        self.times.append(time)
        self.n_flips.append(flips)
        self.n_unhappy.append(state.n_unhappy)
        self.n_flippable.append(state.n_flippable)
        self.energy.append(state.energy())
        self.magnetization.append(state.magnetization())

    def __len__(self) -> int:
        return len(self.times)


@dataclass(frozen=True)
class RunResult:
    """Outcome of :meth:`GlauberDynamics.run`."""

    #: True iff the process reached the paper's termination condition
    #: (no flippable agent) rather than hitting a step/time budget.
    terminated: bool
    #: Number of actual type flips performed.
    n_flips: int
    #: Number of scheduler steps (equals ``n_flips`` for the continuous
    #: scheduler; can be larger for the discrete one when ``tau > 1/2``).
    n_steps: int
    #: Final simulation time (continuous time, or step count for discrete).
    final_time: float
    #: Trajectory samples, when recording was requested.
    trajectory: Optional[Trajectory] = None
    #: Individual flip events, when recording was requested.
    events: Optional[list[FlipEvent]] = None


class GlauberDynamics:
    """Asynchronous single-flip dynamics over a :class:`ModelState`."""

    def __init__(
        self,
        state: ModelState,
        seed: SeedLike = None,
        scheduler: Optional[SchedulerKind] = None,
        flip_rule: Optional[FlipRule] = None,
    ) -> None:
        self.state = state
        self.rng = make_rng(seed)
        self.scheduler = scheduler if scheduler is not None else state.config.scheduler
        self.flip_rule = flip_rule if flip_rule is not None else state.config.flip_rule
        self.time = 0.0
        self.n_flips = 0
        self.n_steps = 0

    # ------------------------------------------------------------- inspection

    @property
    def is_terminated(self) -> bool:
        """True when no further state change is possible under the flip rule."""
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            return self.state.is_terminated()
        return self.state.n_unhappy == 0

    def _candidate_sampler(self):
        """The index sampler the scheduler draws targets from."""
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            if self.scheduler is SchedulerKind.CONTINUOUS:
                return self.state.flippable_sampler
            return self.state.unhappy_sampler
        return self.state.unhappy_sampler

    # ------------------------------------------------------------------ steps

    def step(self) -> Optional[FlipEvent]:
        """Advance the process by one scheduler step.

        Returns the flip event performed, or ``None`` when either the process
        has terminated or the selected agent did not flip (a no-op step of the
        discrete scheduler).  Raises nothing on termination so callers can use
        ``while not dynamics.is_terminated: dynamics.step()`` loops safely.
        """
        if self.is_terminated:
            return None
        sampler = self._candidate_sampler()
        if len(sampler) == 0:
            return None
        if self.scheduler is SchedulerKind.CONTINUOUS:
            # Effective events arrive at the minimum of len(sampler)
            # independent rate-1 exponential clocks.
            self.time += float(self.rng.exponential(1.0 / len(sampler)))
        else:
            self.time += 1.0
        self.n_steps += 1
        flat_index = sampler.sample(self.rng)
        row, col = self.state.site_of(flat_index)
        if self.flip_rule is FlipRule.ONLY_IF_HAPPY:
            if not self.state.is_flippable(row, col):
                return None
        new_value = self.state.apply_flip(row, col)
        self.n_flips += 1
        return FlipEvent(time=self.time, site=Site(row, col), new_type=AgentType(new_value))

    def run(
        self,
        max_flips: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_time: Optional[float] = None,
        record_trajectory: bool = False,
        record_events: bool = False,
        record_every: int = 1,
        callback: Optional[Callable[["GlauberDynamics", Optional[FlipEvent]], None]] = None,
    ) -> RunResult:
        """Run until termination or until one of the budgets is exhausted.

        Parameters
        ----------
        max_flips, max_steps, max_time:
            Optional budgets.  ``None`` means unbounded; the paper's process
            always terminates, so running unbounded is safe for the default
            flip rule.
        record_trajectory:
            Record a :class:`Trajectory` sample every ``record_every`` flips.
        record_events:
            Keep the list of individual :class:`~repro.types.FlipEvent`.
        callback:
            Invoked after every scheduler step with ``(dynamics, event)``.
        """
        if record_every <= 0:
            raise StateError("record_every must be positive")
        trajectory = Trajectory() if record_trajectory else None
        events: Optional[list[FlipEvent]] = [] if record_events else None
        if trajectory is not None:
            trajectory.record(self.time, self.n_flips, self.state)

        start_flips = self.n_flips
        start_steps = self.n_steps
        while not self.is_terminated:
            if max_flips is not None and self.n_flips - start_flips >= max_flips:
                break
            if max_steps is not None and self.n_steps - start_steps >= max_steps:
                break
            if max_time is not None and self.time >= max_time:
                break
            event = self.step()
            if callback is not None:
                callback(self, event)
            if event is None:
                continue
            if events is not None:
                events.append(event)
            if trajectory is not None and self.n_flips % record_every == 0:
                trajectory.record(self.time, self.n_flips, self.state)

        if trajectory is not None and (
            not trajectory.n_flips
            or trajectory.n_flips[-1] != self.n_flips
            or trajectory.times[-1] != self.time
        ):
            trajectory.record(self.time, self.n_flips, self.state)
        return RunResult(
            terminated=self.is_terminated,
            n_flips=self.n_flips - start_flips,
            n_steps=self.n_steps - start_steps,
            final_time=self.time,
            trajectory=trajectory,
            events=events,
        )


def run_to_completion(
    state: ModelState,
    seed: SeedLike = None,
    scheduler: Optional[SchedulerKind] = None,
    flip_rule: Optional[FlipRule] = None,
    max_flips: Optional[int] = None,
    record_trajectory: bool = False,
    record_every: int = 1,
) -> RunResult:
    """Convenience wrapper: build a :class:`GlauberDynamics` and run it."""
    dynamics = GlauberDynamics(state, seed=seed, scheduler=scheduler, flip_rule=flip_rule)
    return dynamics.run(
        max_flips=max_flips,
        record_trajectory=record_trajectory,
        record_every=record_every,
    )
