"""Kawasaki (closed-system) dynamics baseline.

The paper classifies Schelling-type models into Glauber dynamics (agents flip
type; the model it analyses) and Kawasaki dynamics (pairs of unhappy agents of
opposite type swap locations when the swap makes both of them happy; the model
of Brandt et al. on the ring).  This module implements the Kawasaki variant so
that the benchmark suite can compare the two on identical initial
configurations (experiment E14 in DESIGN.md).

Exact termination detection for Kawasaki dynamics requires examining every
unhappy (+1, -1) pair, which is quadratic in the number of unhappy agents.
The engine therefore uses the standard Monte-Carlo approach: it proposes
uniformly random opposite-type unhappy pairs and declares the run converged
after ``max_consecutive_failures`` rejected proposals in a row (an explicit,
documented approximation).  An exhaustive check is available separately via
:meth:`KawasakiDynamics.exists_productive_swap` for small grids and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.state import ModelState
from repro.rng import SeedLike, make_rng
from repro.types import Site, SwapEvent


@dataclass(frozen=True)
class KawasakiRunResult:
    """Outcome of :meth:`KawasakiDynamics.run`."""

    #: True when the run stopped because proposals kept failing (converged in
    #: the Monte-Carlo sense), False when a step budget was exhausted first.
    converged: bool
    n_swaps: int
    n_proposals: int
    final_time: float


class KawasakiDynamics:
    """Pair-swap dynamics over a :class:`ModelState`."""

    def __init__(self, state: ModelState, seed: SeedLike = None) -> None:
        self.state = state
        self.rng = make_rng(seed)
        self.time = 0.0
        self.n_swaps = 0
        self.n_proposals = 0

    # --------------------------------------------------------------- queries

    def _unhappy_sites_by_type(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat indices of unhappy +1 agents and unhappy -1 agents."""
        unhappy = self.state.unhappy_mask()
        spins = self.state.grid.spins
        plus = np.flatnonzero((unhappy & (spins == 1)).ravel())
        minus = np.flatnonzero((unhappy & (spins == -1)).ravel())
        return plus, minus

    def swap_makes_both_happy(self, site_a: tuple[int, int], site_b: tuple[int, int]) -> bool:
        """Whether swapping the (opposite-type) agents at the two sites makes both happy.

        The check is performed by applying the swap, reading the two agents'
        happiness, and undoing it, so it is exact regardless of whether the two
        neighbourhoods overlap.
        """
        spins = self.state.grid.spins
        if spins[site_a] == spins[site_b]:
            return False
        self.state.apply_flip(*site_a)
        self.state.apply_flip(*site_b)
        both_happy = self.state.is_happy(*site_a) and self.state.is_happy(*site_b)
        self.state.apply_flip(*site_a)
        self.state.apply_flip(*site_b)
        return both_happy

    def exists_productive_swap(self, max_pairs: Optional[int] = None) -> bool:
        """Exhaustively check whether any opposite-type unhappy pair can swap.

        ``max_pairs`` caps the number of pairs examined (useful in tests on
        larger grids); ``None`` checks every pair.
        """
        plus, minus = self._unhappy_sites_by_type()
        examined = 0
        for a in plus:
            for b in minus:
                if max_pairs is not None and examined >= max_pairs:
                    return False
                examined += 1
                site_a = self.state.site_of(int(a))
                site_b = self.state.site_of(int(b))
                if self.swap_makes_both_happy(site_a, site_b):
                    return True
        return False

    # ----------------------------------------------------------------- steps

    def step(self) -> Optional[SwapEvent]:
        """Propose one swap; perform it if it makes both agents happy."""
        plus, minus = self._unhappy_sites_by_type()
        if plus.size == 0 or minus.size == 0:
            return None
        self.n_proposals += 1
        self.time += float(self.rng.exponential(1.0))
        site_a = self.state.site_of(int(self.rng.choice(plus)))
        site_b = self.state.site_of(int(self.rng.choice(minus)))
        if not self.swap_makes_both_happy(site_a, site_b):
            return None
        self.state.apply_flip(*site_a)
        self.state.apply_flip(*site_b)
        self.n_swaps += 1
        return SwapEvent(time=self.time, site_a=Site(*site_a), site_b=Site(*site_b))

    def run(
        self,
        max_swaps: Optional[int] = None,
        max_proposals: Optional[int] = None,
        max_consecutive_failures: int = 200,
    ) -> KawasakiRunResult:
        """Run until convergence (many failed proposals) or budget exhaustion."""
        start_swaps = self.n_swaps
        start_proposals = self.n_proposals
        consecutive_failures = 0
        converged = False
        while True:
            plus, minus = self._unhappy_sites_by_type()
            if plus.size == 0 or minus.size == 0:
                converged = True
                break
            if max_swaps is not None and self.n_swaps - start_swaps >= max_swaps:
                break
            if (
                max_proposals is not None
                and self.n_proposals - start_proposals >= max_proposals
            ):
                break
            event = self.step()
            if event is None:
                consecutive_failures += 1
                if consecutive_failures >= max_consecutive_failures:
                    converged = True
                    break
            else:
                consecutive_failures = 0
        return KawasakiRunResult(
            converged=converged,
            n_swaps=self.n_swaps - start_swaps,
            n_proposals=self.n_proposals - start_proposals,
            final_time=self.time,
        )
