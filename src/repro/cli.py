"""Command-line interface.

Three subcommands cover the common workflows without writing any Python:

* ``repro info`` — print the paper's thresholds, the regime and exponents for
  a given intolerance, and the exact initial unhappy probability.
* ``repro simulate`` — run one seeded simulation and print before/after
  segregation metrics (optionally an ASCII rendering and a CSV row).
* ``repro sweep`` — sweep the intolerance at a fixed horizon, print the
  aggregated table and optionally write it to CSV.  ``--workers`` and
  ``--ensemble`` pick the execution levers.

Four more subcommands operate on the artifact stores sweeps leave behind:
``repro summarize`` (re)writes a store's ``summary.json`` of per-cell
aggregates, ``repro reproduce`` re-executes recorded cells from the manifest
and asserts bitwise row identity, and ``repro query`` / ``repro serve``
answer parameter-point queries (exact, interpolated or nearest-cell) from
the command line or over stdlib HTTP.

Both ``simulate`` and ``sweep`` accept the same variant flags: ``--variant``
(with ``--tau-high`` / ``--tau-minus``) swaps in the Section I.A/V model
variants and ``--max-steps`` caps the scheduler steps — applied by default
for the non-base variants, which carry no termination guarantee, with the
honest ``terminated`` flag reported either way.

The module is usable both as ``python -m repro ...`` and through the
:func:`main` entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import PAPER, __version__
from repro.analysis.segregation import default_region_radius, segregation_metrics
from repro.core.backends.registry import (
    KNOWN_BACKENDS,
    resolve_backend_name,
    select_backend_name,
)
from repro.core.config import ModelConfig
from repro.core.simulation import Simulation
from repro.core.variants import VariantSpec
from repro.errors import ConfigurationError
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    DEFAULT_SWEEP_VALUE_KEYS,
    aggregate_sweep,
    run_sweep,
)
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import default_tau_grid, grid_side_for_horizon
from repro.theory.bounds import exact_unhappy_probability
from repro.theory.exponents import lower_exponent, upper_exponent
from repro.theory.intervals import classify_regime, segregation_expected
from repro.theory.thresholds import interval_widths, tau1, tau2, trigger_epsilon
from repro.viz.ascii_art import render_ascii


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=f"Reproduction toolkit for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="thresholds, regime and exponents")
    info.add_argument("--tau", type=float, default=0.45, help="intolerance to inspect")
    info.add_argument("--horizon", type=int, default=3, help="horizon w for finite-N quantities")

    simulate = subparsers.add_parser("simulate", help="run one simulation")
    simulate.add_argument("--side", type=int, default=80)
    simulate.add_argument("--horizon", type=int, default=3)
    simulate.add_argument("--tau", type=float, default=0.45)
    simulate.add_argument("--density", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-flips", type=int, default=None)
    simulate.add_argument("--ascii", action="store_true", help="print the final grid")
    simulate.add_argument("--csv", type=str, default=None, help="append metrics row to CSV")
    _add_backend_argument(simulate)
    _add_variant_arguments(simulate)

    sweep = subparsers.add_parser("sweep", help="sweep the intolerance axis")
    sweep.add_argument("--horizon", type=int, default=2)
    sweep.add_argument(
        "--taus",
        type=str,
        default=None,
        help="comma-separated intolerances (default: a grid spanning Figure 2)",
    )
    sweep.add_argument("--replicates", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--side", type=int, default=None)
    sweep.add_argument("--csv", type=str, default=None, help="write aggregated rows to CSV")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for sweep cells (1 = serial)",
    )
    sweep.add_argument(
        "--ensemble",
        type=int,
        default=1,
        help="replicas per vectorized lockstep batch (1 = scalar engine)",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="artifact directory for checkpoint/resume: completed cells are "
        "streamed to metrics.jsonl (with a provenance manifest.json) and a "
        "rerun with the same parameters skips them, resuming a killed sweep "
        "into an identical table",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="times a failed cell is retried (with seeded exponential "
        "backoff) before --on-error settles it",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell deadline in seconds; a chunk executing past its "
        "deadline marks the worker pool hung, which is killed and respawned "
        "with only unfinished cells rescheduled (requires --workers > 1: "
        "serial runs have no supervising pool and warn that the deadline "
        "is inert)",
    )
    sweep.add_argument(
        "--on-error",
        choices=("raise", "retry", "skip"),
        default="raise",
        help="policy for cells that fail: abort the sweep (raise, default), "
        "retry up to --retries then abort (retry), or retry then quarantine "
        "the cell as a structured failure record and finish the rest (skip)",
    )
    sweep.add_argument(
        "--record-trajectory",
        action="store_true",
        help="record per-replica trajectories and aggregate traj_* columns",
    )
    sweep.add_argument(
        "--record-every",
        type=int,
        default=100,
        help="trajectory sampling cadence (flips for the scalar engine, "
        "lockstep rounds for --ensemble > 1)",
    )
    _add_backend_argument(sweep)
    _add_variant_arguments(sweep)

    checkpoint = subparsers.add_parser(
        "checkpoint", help="audit or repair a sweep checkpoint store"
    )
    checkpoint_sub = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    verify = checkpoint_sub.add_parser(
        "verify",
        help="audit a checkpoint directory and print a JSON report "
        "(exit 1 when problems are found)",
    )
    verify.add_argument("directory", type=str)
    repair = checkpoint_sub.add_parser(
        "repair",
        help="truncate metrics.jsonl to its longest valid prefix "
        "(atomic; dropped cells simply rerun on resume)",
    )
    repair.add_argument("directory", type=str)

    summarize = subparsers.add_parser(
        "summarize",
        help="(re)write a store's summary.json of per-cell aggregates",
    )
    summarize.add_argument("directory", type=str)

    reproduce = subparsers.add_parser(
        "reproduce",
        help="re-execute a store's cells from its manifest and assert the "
        "regenerated rows match the recorded ones bitwise (exit 1 with "
        "named diffs on mismatch)",
    )
    reproduce.add_argument(
        "store", type=str, help="checkpoint directory or its manifest.json"
    )
    reproduce.add_argument(
        "--cell",
        type=str,
        default=None,
        help="reproduce only the named cell (default: every cell)",
    )
    reproduce.add_argument(
        "--ensemble",
        type=int,
        default=None,
        help="re-run through the vectorized engine with this batch size "
        "(rows are engine-independent, so the comparison is unchanged)",
    )
    reproduce.add_argument(
        "--max-diffs",
        type=int,
        default=5,
        help="named diffs reported per mismatching cell",
    )
    _add_backend_argument(reproduce)

    query = subparsers.add_parser(
        "query",
        help='answer a parameter-point query like "rho=0.4,tau=0.55,w=2" '
        "from a sweep store",
    )
    query.add_argument(
        "point", type=str, help='comma-separated axis=value terms, e.g. '
        '"rho=0.4,tau=0.55,w=2" (aliases: density/p for rho, horizon for w)'
    )
    _add_store_arguments(query)
    _add_query_policy_arguments(query)

    serve = subparsers.add_parser(
        "serve",
        help="serve sweep stores over HTTP (stdlib, threaded; routes "
        "/query /stats /cells /healthz /readyz; SIGTERM drains gracefully)",
    )
    _add_store_arguments(serve)
    serve.add_argument("--host", type=str, default=None)
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--max-compute",
        type=int,
        default=None,
        help="largest number of concurrent on-miss simulations; excess "
        "compute requests degrade to the nearest stored cell (flagged "
        "degraded) or get 429 with Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--refresh-interval",
        type=float,
        default=None,
        help="seconds between store-artifact polls; when metrics.jsonl / "
        "summary.json / manifest.json change, a fresh snapshot is built and "
        "atomically swapped in without dropping requests (default: off)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a SIGTERM-triggered graceful drain waits for in-flight "
        "requests before stopping anyway",
    )
    _add_query_policy_arguments(serve)
    return parser


def _add_backend_argument(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--backend`` selector (simulate/sweep/reproduce).

    The flag is the strongest level of the selection precedence
    (CLI > ``REPRO_BACKEND`` env > spec > auto); every backend is pinned
    bitwise identical, so the choice affects throughput only.  Requesting a
    backend that is not available on this host falls back to ``numpy`` with
    a single warning rather than failing.
    """
    subparser.add_argument(
        "--backend",
        choices=KNOWN_BACKENDS,
        default=None,
        help="flip-loop backend (default: REPRO_BACKEND env var, else auto "
        "— the fastest available); all backends produce bitwise-identical "
        "results",
    )


def _add_store_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared store-selection flags to ``query`` or ``serve``.

    ``--store`` is repeatable: one flag serves a single store, several build
    a :class:`FederatedQueryEngine` routing queries by parameter coverage.
    Every named store is integrity-audited at startup; ``--allow-damaged``
    downgrades a failed audit from a refusal to serving only the cells that
    pass the line-level checks.
    """
    subparser.add_argument(
        "--store",
        type=str,
        action="append",
        required=True,
        help="sweep store directory; repeat the flag to federate several "
        "stores behind one query surface (routed by parameter coverage)",
    )
    subparser.add_argument(
        "--allow-damaged",
        action="store_true",
        help="serve a store that fails its startup integrity audit anyway, "
        "ignoring its summary.json and answering only from records that "
        "pass the line-level CRC checks (default: refuse with exit 1)",
    )


def _add_query_policy_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared query-resolution flags to ``query`` or ``serve``."""
    subparser.add_argument(
        "--interpolate",
        action="store_true",
        help="bilinearly interpolate over (rho, tau) at an exact horizon "
        "when the point is inside the store's grid (default: nearest cell)",
    )
    subparser.add_argument(
        "--on-miss",
        choices=("error", "compute"),
        default="error",
        help="policy when no stored cell can answer: fail (error, default) "
        "or schedule a deterministic simulation of the point (compute)",
    )
    subparser.add_argument(
        "--max-distance",
        type=float,
        default=None,
        help="largest allowed normalized distance to the nearest cell "
        "(default: unbounded)",
    )
    subparser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="answer-cache capacity (default: 256)",
    )


def _add_variant_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared variant/budget flags to ``simulate`` or ``sweep``."""
    subparser.add_argument(
        "--variant",
        choices=["base", "two-sided", "asymmetric"],
        default="base",
        help="happiness rule: the paper's model, the two-sided comfort band "
        "[tau, --tau-high], or per-type intolerances (tau for +1 agents, "
        "--tau-minus for -1 agents)",
    )
    subparser.add_argument(
        "--tau-high",
        type=float,
        default=None,
        help="upper comfort bound for --variant two-sided (default: 0.8); "
        "rejected with any other variant",
    )
    subparser.add_argument(
        "--tau-minus",
        type=float,
        default=None,
        help="-1 agents' intolerance for --variant asymmetric (default: 0.3); "
        "rejected with any other variant",
    )
    subparser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="scheduler-step budget per run/replicate (defaults to 20x the "
        "number of sites for the variants, which have no termination "
        "guarantee)",
    )


def _default_step_budget(config: ModelConfig) -> int:
    """Step cap applied to variant runs that carry no termination guarantee.

    Referenced by the ``--max-steps`` help text; ``simulate`` and ``sweep``
    share it so both subcommands budget identically.
    """
    return 20 * config.n_sites


def _resolve_variant(args: argparse.Namespace, taus: Sequence[float]) -> Optional[VariantSpec]:
    """Build the :class:`VariantSpec` selected by the shared CLI flags.

    Prints an error and returns ``None`` when an inapplicable knob is passed
    (a parameter for a different variant is a configuration mistake, not a
    value to ignore), when a parameter is out of range, or when ``--tau-high``
    does not dominate every requested intolerance.  ``simulate`` and ``sweep``
    share this resolution so the two subcommands reject exactly the same
    inputs.
    """
    if args.variant != "two-sided" and args.tau_high is not None:
        print(f"error: --tau-high does not apply to --variant {args.variant}", file=sys.stderr)
        return None
    if args.variant != "asymmetric" and args.tau_minus is not None:
        print(f"error: --tau-minus does not apply to --variant {args.variant}", file=sys.stderr)
        return None
    try:
        if args.variant == "two-sided":
            tau_high = args.tau_high if args.tau_high is not None else 0.8
            if any(tau > tau_high for tau in taus):
                print(
                    f"error: --tau-high {tau_high} must be at least every "
                    "requested intolerance",
                    file=sys.stderr,
                )
                return None
            return VariantSpec.two_sided(tau_high)
        if args.variant == "asymmetric":
            return VariantSpec.asymmetric(
                args.tau_minus if args.tau_minus is not None else 0.3
            )
        return VariantSpec.base()
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _command_info(args: argparse.Namespace, out) -> int:
    """Print thresholds, regime classification and exponents for one tau."""
    tau = args.tau
    config = ModelConfig.square(
        side=max(4 * (2 * args.horizon + 1), 24), horizon=args.horizon, tau=tau
    )
    widths = interval_widths()
    print(f"Paper: {PAPER}", file=out)
    print(f"tau1 = {tau1():.6f}   tau2 = {tau2():.6f}", file=out)
    print(
        "interval widths: monochromatic "
        f"{widths['monochromatic']:.4f}, almost monochromatic "
        f"{widths['almost_monochromatic']:.4f}",
        file=out,
    )
    print(f"\ntau = {tau}", file=out)
    print(f"  regime (Figure 2): {classify_regime(tau).value}", file=out)
    if segregation_expected(tau):
        print(f"  trigger infimum f(tau) = {trigger_epsilon(tau):.4f}", file=out)
        print(
            f"  exponents: a(tau) = {lower_exponent(tau):.6f}, "
            f"b(tau) = {upper_exponent(tau):.6f}",
            file=out,
        )
    print(
        f"  at horizon w = {args.horizon} (N = {config.neighborhood_agents}): "
        f"threshold {config.happiness_threshold}/{config.neighborhood_agents}, "
        f"exact initial unhappy probability {exact_unhappy_probability(config):.6f}",
        file=out,
    )
    return 0


def _command_simulate(args: argparse.Namespace, out) -> int:
    """Run one seeded simulation (under any variant) and print before/after metrics."""
    if args.max_steps is not None and args.max_steps <= 0:
        print("error: --max-steps must be positive", file=sys.stderr)
        return 2
    variant = _resolve_variant(args, [args.tau])
    if variant is None:
        return 2
    config = ModelConfig.square(
        side=args.side, horizon=args.horizon, tau=args.tau, density=args.density
    )
    max_steps = args.max_steps
    if max_steps is None and not variant.guarantees_termination:
        # No Lyapunov guarantee: cap the run so the command always returns.
        max_steps = _default_step_budget(config)
    print(f"Model: {config.describe()} variant={variant.describe()}", file=out)
    backend_request = select_backend_name(args.backend, None)
    if backend_request != "auto":
        # An explicit backend (flag or REPRO_BACKEND) routes the run through
        # a single-replica ensemble — the scalar engine has no backend seam.
        # Backends are bitwise-pinned, so the outcome matches the scalar run.
        backend_name = resolve_backend_name(backend_request)
        ensemble = variant.make_ensemble(
            config, replica_seeds=[args.seed], backend=backend_name
        )
        print(f"Backend: {ensemble.backend_name}", file=out)
        initial_spins = ensemble.initial_spins()[0]
        ensemble_result = ensemble.run(
            max_flips=args.max_flips, max_steps=max_steps
        )
        final_spins = ensemble_result.final_spins[0]
        terminated = bool(ensemble_result.terminated[0])
        n_flips = int(ensemble_result.n_flips[0])
        final_time = float(ensemble_result.final_time[0])
    else:
        simulation = Simulation(config, seed=args.seed, variant=variant)
        result = simulation.run(max_flips=args.max_flips, max_steps=max_steps)
        initial_spins = result.initial_spins
        final_spins = result.final_spins
        terminated = result.terminated
        n_flips = result.n_flips
        final_time = result.final_time
    max_radius = default_region_radius(config)
    before = segregation_metrics(initial_spins, config, max_region_radius=max_radius)
    after = segregation_metrics(final_spins, config, max_region_radius=max_radius)
    print(
        f"terminated={terminated} flips={n_flips} time={final_time:.2f}",
        file=out,
    )
    table = ResultTable()
    row = {
        "seed": args.seed,
        "tau": config.tau,
        "horizon": config.horizon,
        "variant": variant.kind.value,
        "terminated": terminated,
        "n_flips": n_flips,
    }
    for key, value in before.as_dict().items():
        row[f"initial_{key}"] = value
    for key, value in after.as_dict().items():
        row[f"final_{key}"] = value
    table.add_row(**row)
    print(table.to_markdown(float_format=".4g"), file=out)
    if args.ascii:
        print(render_ascii(final_spins, max_side=60), file=out)
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}", file=out)
    return 0


def _command_sweep(args: argparse.Namespace, out) -> int:
    """Sweep the intolerance axis and print/write the aggregated table."""
    if args.taus:
        try:
            taus = [float(part) for part in args.taus.split(",") if part.strip()]
        except ValueError as exc:
            print(f"error: could not parse --taus: {exc}", file=sys.stderr)
            return 2
    else:
        taus = default_tau_grid()
    side = args.side if args.side else grid_side_for_horizon(args.horizon)
    if args.workers <= 0 or args.ensemble <= 0:
        print("error: --workers and --ensemble must be positive", file=sys.stderr)
        return 2
    if args.record_every <= 0:
        print("error: --record-every must be positive", file=sys.stderr)
        return 2
    if args.max_steps is not None and args.max_steps <= 0:
        print("error: --max-steps must be positive", file=sys.stderr)
        return 2
    base = ModelConfig.square(side=side, horizon=args.horizon, tau=0.5)
    max_steps = args.max_steps
    variant = _resolve_variant(args, taus)
    if variant is None:
        return 2
    if max_steps is None and not variant.guarantees_termination:
        # No Lyapunov guarantee: cap every replicate so the sweep halts.
        max_steps = _default_step_budget(base)
    sweep = SweepSpec(
        name="cli-sweep",
        base_config=base,
        taus=taus,
        n_replicates=args.replicates,
        seed=args.seed,
        max_steps=max_steps,
        record_trajectory=args.record_trajectory,
        record_every=args.record_every,
        variant=variant,
    )
    print(
        f"Sweeping {len(taus)} intolerances x {args.replicates} replicates on a "
        f"{side}x{side} torus with w={args.horizon} "
        f"(variant={variant.describe()}, workers={args.workers}, "
        f"ensemble={args.ensemble}, "
        f"backend={select_backend_name(args.backend, None)})",
        file=out,
    )
    if select_backend_name(args.backend, None) != "auto" and args.ensemble == 1:
        print(
            "note: --backend selects the vectorized engine's flip loop; "
            "pass --ensemble > 1 to engage it (the scalar engine has no "
            "backend seam)",
            file=out,
        )
    if args.checkpoint_dir:
        print(
            f"Checkpointing completed cells under {args.checkpoint_dir} "
            "(already-recorded cells will be skipped)",
            file=out,
        )
    rows = run_sweep(
        sweep,
        workers=args.workers,
        ensemble_size=args.ensemble,
        checkpoint_dir=args.checkpoint_dir,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        on_error=args.on_error,
        backend=args.backend,
    )
    if rows.failures:
        print(
            f"WARNING: {len(rows.failures)} cell(s) quarantined after "
            "exhausting retries:",
            file=out,
        )
        for failure in rows.failures:
            print(
                f"  cell {failure['cell_index']} ({failure['cell_name']}): "
                f"{failure['error']} after {failure['attempts']} attempt(s)",
                file=out,
            )
    value_keys = DEFAULT_SWEEP_VALUE_KEYS
    if args.record_trajectory:
        value_keys += ("traj_energy_gain", "traj_energy_monotone")
    aggregated = aggregate_sweep(rows, group_keys=("tau",), value_keys=value_keys)
    print(aggregated.to_markdown(float_format=".4g"), file=out)
    if args.csv:
        aggregated.to_csv(args.csv)
        print(f"wrote {args.csv}", file=out)
    return 0


def _command_checkpoint(args: argparse.Namespace, out) -> int:
    """Audit (``verify``) or truncate-repair (``repair``) a checkpoint store.

    Both subcommands print the machine-readable report as indented JSON.
    ``verify`` exits 1 when any problem was found — scriptable as a health
    check — while ``repair`` exits 0 whenever the store ends up resumable
    (the report's ``repair`` section states what was cut).
    """
    from repro.experiments.checkpoint import repair_store, verify_store

    if args.checkpoint_command == "verify":
        report = verify_store(args.directory)
        print(json.dumps(report, indent=2), file=out)
        return 0 if report["ok"] else 1
    report = repair_store(args.directory)
    print(json.dumps(report, indent=2), file=out)
    return 0


def _command_summarize(args: argparse.Namespace, out) -> int:
    """(Re)write ``summary.json`` for a store and print where it landed.

    The summary is derived state — aggregates of the recorded rows — so
    rewriting it offline is always safe and always produces the same bytes
    for the same store.
    """
    from repro.errors import ReproError
    from repro.experiments.checkpoint import write_summary

    try:
        path = write_summary(args.directory)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = json.loads(path.read_text())
    print(
        f"wrote {path}: {summary['n_summarized']}/{summary['n_cells']} "
        f"cell(s) summarized, {summary['n_failed']} failed, "
        f"{summary['n_missing']} missing",
        file=out,
    )
    return 0


def _command_reproduce(args: argparse.Namespace, out) -> int:
    """Re-execute recorded cells and assert bitwise row identity.

    Prints the JSON report (per-cell status and named value diffs) and
    exits 1 when any cell mismatches or the manifest drifted from its own
    sweep snapshot.  Quarantined and never-recorded cells are reported but
    do not fail the run — they are honest store states, not regressions.
    """
    from repro.errors import ReproError
    from repro.serving.store import reproduce_store

    if args.ensemble is not None and args.ensemble <= 0:
        print("error: --ensemble must be positive", file=sys.stderr)
        return 2
    try:
        report = reproduce_store(
            args.store,
            cell=args.cell,
            ensemble_size=args.ensemble,
            max_diffs=args.max_diffs,
            backend=args.backend,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report.as_dict(), indent=2), file=out)
    return 0 if report.ok else 1


def _open_verified_stores(args: argparse.Namespace) -> list:
    """Open every ``--store`` directory after its startup integrity audit.

    Stores with checkpoint artifacts (a manifest or metrics log) are run
    through :func:`verify_store`; a failed audit raises
    :class:`~repro.errors.StoreDamaged` naming every damage kind — unless
    ``--allow-damaged`` was passed, which downgrades the failure to a
    stderr warning and opens the store with ``trust_summary=False`` so only
    records passing the line-level CRC checks are served.  Summary-only
    stores (no checkpoint artifacts) have nothing to audit and open as-is;
    a missing directory raises plain :class:`ServingError` (a usage error,
    not damage).
    """
    from repro.errors import StoreDamaged
    from repro.experiments.checkpoint import (
        MANIFEST_NAME,
        METRICS_NAME,
        verify_store,
    )
    from repro.serving.store import ArtifactStore, resolve_store_path

    stores = []
    for raw in args.store:
        directory = resolve_store_path(raw)
        trust_summary = True
        if (directory / MANIFEST_NAME).exists() or (
            directory / METRICS_NAME
        ).exists():
            report = verify_store(directory)
            if not report["ok"]:
                kinds = sorted(
                    {
                        str(problem.get("kind", "unknown"))
                        for problem in report["problems"]
                    }
                )
                if not args.allow_damaged:
                    raise StoreDamaged(
                        f"store {directory} failed its integrity audit "
                        f"({len(report['problems'])} problem(s): "
                        f"{', '.join(kinds)}); repair it with "
                        f"'repro checkpoint repair {directory}' or pass "
                        "--allow-damaged to serve only verified-clean cells"
                    )
                print(
                    f"WARNING: store {directory} is damaged "
                    f"({', '.join(kinds)}); ignoring its summary.json and "
                    "serving only verified-clean cells",
                    file=sys.stderr,
                )
                trust_summary = False
        stores.append(ArtifactStore(directory, trust_summary=trust_summary))
    return stores


def _make_query_engine(args: argparse.Namespace):
    """Build the query engine shared by ``query`` and ``serve``.

    One ``--store`` gives a plain :class:`QueryEngine`; several federate.
    """
    from repro.serving.cache import make_query_cache
    from repro.serving.federation import build_engine

    return build_engine(
        _open_verified_stores(args),
        cache=make_query_cache(args.cache_size),
        interpolate=args.interpolate,
        on_miss=args.on_miss,
        max_distance=args.max_distance,
    )


def _command_query(args: argparse.Namespace, out) -> int:
    """Answer one parameter-point query and print the JSON answer.

    A miss under ``--on-miss error`` or a store failing its integrity audit
    exits 1 with the reason on stderr; a malformed or ambiguous query (or a
    missing store directory) exits 2.
    """
    from repro.errors import QueryMiss, ReproError, StoreDamaged
    from repro.experiments.io import json_default

    try:
        engine = _make_query_engine(args)
        answer = engine.answer(args.point)
    except StoreDamaged as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except QueryMiss as exc:
        print(f"miss: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(answer, indent=2, default=json_default), file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    """Run the threaded HTTP query service until stopped.

    SIGTERM triggers a graceful drain: the service goes unready (``/readyz``
    fails, new requests get 503), in-flight requests finish (bounded by
    ``--drain-timeout``), then the process exits 0.  Ctrl-C (SIGINT) drains
    the same way.  A store failing its integrity audit refuses to serve with
    exit 1; a missing store is a usage error (exit 2).
    """
    import signal
    import threading

    from repro.errors import ReproError, StoreDamaged
    from repro.serving.cache import make_query_cache
    from repro.serving.http import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        drain_server,
        make_server,
    )

    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        server = make_server(
            _open_verified_stores(args),
            host=host,
            port=port,
            cache=make_query_cache(args.cache_size),
            interpolate=args.interpolate,
            on_miss=args.on_miss,
            max_distance=args.max_distance,
            max_compute=args.max_compute,
            refresh_interval=args.refresh_interval,
        )
    except StoreDamaged as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving {', '.join(args.store)} on "
        f"http://{bound_host}:{bound_port} "
        "(routes: /query /stats /cells /healthz /readyz; "
        "SIGTERM drains, Ctrl-C stops)",
        file=out,
        flush=True,
    )
    stop = threading.Event()
    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop.set()
        )
    except ValueError:
        # Not the main thread (in-process tests drive main() from workers);
        # the drain path is still reachable via KeyboardInterrupt.
        pass
    accept_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-accept",
        daemon=True,
    )
    accept_thread.start()
    try:
        stop.wait()
        print("draining", file=out, flush=True)
    except KeyboardInterrupt:
        print("stopping", file=out, flush=True)
    finally:
        drained = drain_server(server, timeout=args.drain_timeout)
        if not drained:
            print(
                "WARNING: drain timed out with requests still in flight",
                file=sys.stderr,
            )
        accept_thread.join(timeout=5.0)
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "info":
        return _command_info(args, out)
    if args.command == "simulate":
        return _command_simulate(args, out)
    if args.command == "sweep":
        return _command_sweep(args, out)
    if args.command == "checkpoint":
        return _command_checkpoint(args, out)
    if args.command == "summarize":
        return _command_summarize(args, out)
    if args.command == "reproduce":
        return _command_reproduce(args, out)
    if args.command == "query":
        return _command_query(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
