"""Validation experiments for the paper's lemmas, substrates and baselines (E9-E15).

These complement :mod:`repro.experiments.figures`: instead of reproducing a
figure they check a proof ingredient (Lemma 19, Proposition 1, Lemma 9/10),
exercise a percolation substrate theorem (Kesten, Garet-Marchand, Grimmett),
or run one of the baselines / ablations catalogued in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.firewall import (
    check_firewall_robustness,
    run_with_adversarial_exterior,
)
from repro.analysis.radical import try_expand_radical_region
from repro.analysis.regions import monochromatic_radius
from repro.analysis.segregation import segregation_metrics, unhappy_fraction
from repro.analysis.selfsimilar import estimate_subneighborhood_concentration
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.grid import TorusGrid
from repro.core.initializer import (
    planted_annulus_configuration,
    planted_radical_region_configuration,
    random_configuration,
)
from repro.core.kawasaki import KawasakiDynamics
from repro.core.simulation import Simulation
from repro.core.state import ModelState
from repro.experiments.results import ResultTable
from repro.experiments.workloads import density_ladder, grid_side_for_horizon
from repro.percolation.chemical import estimate_chemical_stretch
from repro.percolation.cluster import estimate_radius_tail
from repro.percolation.first_passage import study_passage_times
from repro.rng import make_rng, replicate_seeds
from repro.theory.bounds import exact_unhappy_probability, unhappy_probability_bounds
from repro.theory.thresholds import trigger_epsilon
from repro.types import AgentType, FlipRule, SchedulerKind


# ---------------------------------------------------------------------------
# E9 — Lemma 19: probability of an unhappy agent in the initial configuration
# ---------------------------------------------------------------------------


def lemma19_unhappy_experiment(
    horizons: Sequence[int] = (1, 2, 3, 4),
    tau: float = 0.45,
    n_trials: int = 20,
    side_multiplier: int = 8,
    seed: int = 909,
) -> ResultTable:
    """Compare the empirical unhappy fraction with the exact value and Lemma 19.

    Every agent of a Bernoulli(1/2) configuration is an (exchangeable) sample
    of the Lemma 19 event, so the grid-averaged unhappy fraction is an
    unbiased estimator of ``p_u``; the table lists it next to the exact
    binomial value and the lemma's ``2^{-[1-H(tau')]N}/sqrt(N)`` bracket.
    """
    table = ResultTable()
    rng = make_rng(seed)
    for horizon in horizons:
        side = max(side_multiplier * (2 * horizon + 1), 24)
        config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
        empirical = []
        for _ in range(n_trials):
            grid = random_configuration(config, rng)
            empirical.append(unhappy_fraction(grid.spins, config))
        exact = exact_unhappy_probability(config)
        lower, upper = unhappy_probability_bounds(config)
        table.add_row(
            horizon=horizon,
            neighborhood_agents=config.neighborhood_agents,
            tau=tau,
            empirical_unhappy_fraction=float(np.mean(empirical)),
            exact_probability=exact,
            lemma_lower_bound=lower,
            lemma_upper_bound=upper,
            n_trials=n_trials,
        )
    return table


# ---------------------------------------------------------------------------
# E10 — Proposition 1: self-similarity of sub-neighbourhood counts
# ---------------------------------------------------------------------------


def proposition1_experiment(
    horizons: Sequence[int] = (3, 5, 7),
    tau: float = 0.45,
    gamma: float = 0.25,
    n_samples: int = 400,
    seed: int = 1001,
) -> ResultTable:
    """Concentration of the conditional sub-neighbourhood minority count."""
    table = ResultTable()
    rng = make_rng(seed)
    for horizon in horizons:
        side = max(4 * (2 * horizon + 1), 24)
        config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
        estimate = estimate_subneighborhood_concentration(
            config, gamma=gamma, n_samples=n_samples, seed=rng
        )
        table.add_row(
            horizon=horizon,
            neighborhood_agents=config.neighborhood_agents,
            gamma=gamma,
            n_samples=estimate.n_samples,
            concentration_probability=estimate.concentration_probability,
            mean_deviation=estimate.mean_deviation,
            window=estimate.window,
        )
    return table


# ---------------------------------------------------------------------------
# E11 — Lemma 9 / Lemma 10: firewalls protect, radical regions expand
# ---------------------------------------------------------------------------


def firewall_experiment(
    horizon: int = 3,
    tau: float = 0.40,
    n_replicates: int = 3,
    seed: int = 1101,
    run_dynamics: bool = True,
) -> ResultTable:
    """Planted-firewall robustness (Lemma 9) plus the adversarial dynamic run.

    The default intolerance is 0.40 rather than a value close to 1/2 because
    Lemma 9 is asymptotic in ``w``: at simulable horizons the four
    axis-extreme agents of the annulus see only ``~11/25`` same-type
    neighbours under the adversarial exterior, so thresholds above ~0.44 fail
    purely through discreteness.  The benchmark records this deviation.
    """
    side = grid_side_for_horizon(horizon, multiples=8)
    config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
    center = (side // 2, side // 2)
    outer_radius = 4.0 * horizon
    table = ResultTable()
    for replicate, replicate_seed in enumerate(replicate_seeds(seed, n_replicates)):
        grid = planted_annulus_configuration(
            config,
            center,
            outer_radius,
            annulus_type=AgentType.PLUS,
            interior_type=AgentType.PLUS,
            seed=replicate_seed,
        )
        robustness = check_firewall_robustness(
            grid.spins, config, center, outer_radius
        )
        row: dict[str, object] = {
            "replicate": replicate,
            "outer_radius": outer_radius,
            "firewall_monochromatic": robustness.firewall_monochromatic,
            "static_check_holds": robustness.holds,
            "n_firewall_agents": robustness.n_firewall_agents,
        }
        if run_dynamics:
            row["survives_adversarial_run"] = run_with_adversarial_exterior(
                grid.spins, config, center, outer_radius, seed=replicate_seed
            )
        table.add_row(**row)
    return table


def radical_expansion_experiment(
    horizon: int = 4,
    tau: float = 0.45,
    n_replicates: int = 5,
    seed: int = 1102,
    epsilon_prime: Optional[float] = None,
    run_dynamics: bool = True,
) -> ResultTable:
    """Planted radical regions: do they expand and seed a monochromatic region?

    Reproduces the mechanism of Lemmas 5 and 10 at finite size: plant a
    radical region slightly below its minority threshold, (a) verify the
    greedy expansion certificate, and (b) run the full dynamics and measure
    the final monochromatic radius at the region's centre.
    """
    if epsilon_prime is None:
        epsilon_prime = max(trigger_epsilon(tau) * 1.2, 0.3)
    side = grid_side_for_horizon(horizon, multiples=6)
    config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
    center = (side // 2, side // 2)
    table = ResultTable()
    for replicate, replicate_seed in enumerate(replicate_seeds(seed, n_replicates)):
        grid = planted_radical_region_configuration(
            config, center, epsilon_prime, seed=replicate_seed
        )
        expansion = try_expand_radical_region(
            config, grid.spins, center, epsilon_prime
        )
        row: dict[str, object] = {
            "replicate": replicate,
            "epsilon_prime": epsilon_prime,
            "expandable": expansion.expanded,
            "expansion_flips": expansion.n_flips,
            "flip_budget": expansion.flip_budget,
        }
        if run_dynamics:
            simulation = Simulation(config, seed=replicate_seed, initial_grid=grid)
            result = simulation.run()
            row["final_center_mono_radius"] = monochromatic_radius(
                result.final_spins, center, max_radius=4 * horizon
            )
            row["terminated"] = result.terminated
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E12 — percolation substrate checks (Kesten, Garet-Marchand, Grimmett)
# ---------------------------------------------------------------------------


def percolation_substrate_experiment(
    fpp_ks: Sequence[int] = (8, 16, 32),
    fpp_trials: int = 60,
    chemical_p: float = 0.85,
    chemical_separations: Sequence[int] = (8, 16, 24),
    chemical_trials: int = 80,
    subcritical_p: float = 0.35,
    radius_tail_radii: Sequence[int] = (1, 2, 3, 4, 6),
    radius_tail_trials: int = 400,
    seed: int = 1201,
) -> dict[str, ResultTable]:
    """Exercise the three percolation theorems the proofs rely on.

    Returns three tables: ``first_passage`` (Kesten's concentration,
    Theorem 3), ``chemical`` (Garet-Marchand stretch, Theorem 4) and
    ``radius_tail`` (Grimmett's sub-critical exponential decay, Theorem 5).
    """
    rng = make_rng(seed)

    first_passage = ResultTable()
    for k in fpp_ks:
        study = study_passage_times(k, fpp_trials, seed=rng)
        first_passage.add_row(
            k=k,
            mean_passage_time=float(np.mean(study.samples)),
            time_constant_estimate=study.time_constant_estimate,
            normalized_fluctuation=study.normalized_fluctuation,
            concentration_prob_x2=study.concentration_probability(2.0),
        )

    chemical = ResultTable()
    for separation in chemical_separations:
        estimate = estimate_chemical_stretch(
            chemical_p, separation, chemical_trials, seed=rng
        )
        chemical.add_row(
            p_open=chemical_p,
            separation=separation,
            connection_rate=estimate.connection_rate,
            mean_stretch=float(np.mean(estimate.stretches))
            if estimate.stretches.size
            else float("nan"),
            exceed_prob_alpha_025=estimate.exceed_probability(0.25),
        )

    radius_tail = ResultTable()
    tail = estimate_radius_tail(
        subcritical_p,
        list(radius_tail_radii),
        box_radius=max(radius_tail_radii) + 2,
        n_trials=radius_tail_trials,
        seed=rng,
    )
    for radius, probability in zip(tail.radii, tail.probabilities):
        radius_tail.add_row(
            p_open=subcritical_p,
            radius=int(radius),
            tail_probability=float(probability),
        )
    radius_tail.add_row(
        p_open=subcritical_p,
        radius=-1,
        tail_probability=float("nan"),
        decay_rate=tail.decay_rate(),
    )
    return {
        "first_passage": first_passage,
        "chemical": chemical,
        "radius_tail": radius_tail,
    }


# ---------------------------------------------------------------------------
# E13 — initial-density sweep (complete segregation contrast)
# ---------------------------------------------------------------------------


def density_sweep_experiment(
    horizon: int = 3,
    tau: float = 0.5,
    densities: Optional[Sequence[float]] = None,
    n_replicates: int = 3,
    seed: int = 1301,
) -> ResultTable:
    """E13: final dominance of the majority type as the initial density grows.

    At ``p = 1/2`` the paper's bounds rule out complete segregation w.h.p.; at
    ``p`` close to 1 (Fontes et al.) the ``tau = 1/2`` dynamics converges to a
    single type.  The table reports the final dominant-type fraction per
    density; it should rise towards 1 as ``p`` grows and stay well below 1 at
    ``p = 1/2``.
    """
    if densities is None:
        densities = density_ladder()
    side = grid_side_for_horizon(horizon, multiples=8)
    table = ResultTable()
    for density in densities:
        config = ModelConfig.square(side=side, horizon=horizon, tau=tau, density=density)
        for replicate, replicate_seed in enumerate(replicate_seeds(seed, n_replicates)):
            simulation = Simulation(config, seed=replicate_seed + int(1000 * density))
            result = simulation.run()
            metrics = segregation_metrics(
                result.final_spins, config, max_region_radius=2 * horizon
            )
            table.add_row(
                density=density,
                replicate=replicate,
                terminated=result.terminated,
                n_flips=result.n_flips,
                final_dominant_fraction=metrics.dominant_type_fraction,
                final_largest_cluster_fraction=metrics.largest_cluster_fraction,
            )
    return table


# ---------------------------------------------------------------------------
# E14 — Kawasaki baseline comparison
# ---------------------------------------------------------------------------


def kawasaki_comparison_experiment(
    horizon: int = 2,
    tau: float = 0.45,
    n_replicates: int = 3,
    seed: int = 1401,
    side: Optional[int] = None,
    kawasaki_max_proposals: int = 20000,
) -> ResultTable:
    """E14: Glauber (the paper) vs Kawasaki (closed-system) on shared initial grids."""
    if side is None:
        side = grid_side_for_horizon(horizon, multiples=8)
    config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
    table = ResultTable()
    for replicate, replicate_seed in enumerate(replicate_seeds(seed, n_replicates)):
        initial = random_configuration(config, replicate_seed)

        glauber_state = ModelState(config, initial.copy())
        glauber = GlauberDynamics(glauber_state, seed=replicate_seed)
        glauber_result = glauber.run()
        glauber_metrics = segregation_metrics(
            glauber_state.grid.spins, config, max_region_radius=3 * horizon
        )

        kawasaki_state = ModelState(config, initial.copy())
        kawasaki = KawasakiDynamics(kawasaki_state, seed=replicate_seed)
        kawasaki_result = kawasaki.run(max_proposals=kawasaki_max_proposals)
        kawasaki_metrics = segregation_metrics(
            kawasaki_state.grid.spins, config, max_region_radius=3 * horizon
        )

        table.add_row(
            replicate=replicate,
            glauber_terminated=glauber_result.terminated,
            glauber_flips=glauber_result.n_flips,
            glauber_mean_mono_size=glauber_metrics.mean_monochromatic_size,
            glauber_homogeneity=glauber_metrics.local_homogeneity,
            glauber_magnetization_drift=abs(
                float(kawasaki_state.grid.magnetization())
                - float(glauber_state.grid.magnetization())
            ),
            kawasaki_converged=kawasaki_result.converged,
            kawasaki_swaps=kawasaki_result.n_swaps,
            kawasaki_mean_mono_size=kawasaki_metrics.mean_monochromatic_size,
            kawasaki_homogeneity=kawasaki_metrics.local_homogeneity,
            kawasaki_magnetization=float(kawasaki_state.grid.magnetization()),
            initial_magnetization=float(initial.magnetization()),
        )
    return table


# ---------------------------------------------------------------------------
# E15 — scheduler / flip-rule ablation
# ---------------------------------------------------------------------------


def dynamics_ablation_experiment(
    horizon: int = 2,
    tau: float = 0.45,
    n_replicates: int = 3,
    seed: int = 1501,
    side: Optional[int] = None,
) -> ResultTable:
    """E15: continuous vs discrete scheduler, flip-only-if-happy vs always-flip.

    All variants share initial configurations.  The paper argues the
    continuous- and discrete-time formulations are equivalent in distribution;
    at finite size the table shows they reach statistically indistinguishable
    terminal states, while the always-flip variant (a different model) is
    reported for contrast.
    """
    if side is None:
        side = grid_side_for_horizon(horizon, multiples=8)
    config = ModelConfig.square(side=side, horizon=horizon, tau=tau)
    variants = [
        ("continuous/only-if-happy", SchedulerKind.CONTINUOUS, FlipRule.ONLY_IF_HAPPY),
        ("discrete/only-if-happy", SchedulerKind.DISCRETE, FlipRule.ONLY_IF_HAPPY),
        ("continuous/always-flip", SchedulerKind.CONTINUOUS, FlipRule.ALWAYS),
    ]
    table = ResultTable()
    for replicate, replicate_seed in enumerate(replicate_seeds(seed, n_replicates)):
        initial = random_configuration(config, replicate_seed)
        for label, scheduler, flip_rule in variants:
            state = ModelState(config, initial.copy())
            dynamics = GlauberDynamics(
                state, seed=replicate_seed, scheduler=scheduler, flip_rule=flip_rule
            )
            max_steps = None if flip_rule is FlipRule.ONLY_IF_HAPPY else 50 * config.n_sites
            result = dynamics.run(max_steps=max_steps)
            metrics = segregation_metrics(
                state.grid.spins, config, max_region_radius=3 * horizon
            )
            table.add_row(
                replicate=replicate,
                variant=label,
                terminated=result.terminated,
                n_flips=result.n_flips,
                n_steps=result.n_steps,
                final_mean_mono_size=metrics.mean_monochromatic_size,
                final_homogeneity=metrics.local_homogeneity,
                final_unhappy_fraction=metrics.unhappy_fraction,
            )
    return table
