"""Checkpointed sweep artifacts: a manifest plus a streamed metrics log.

Every checkpointed sweep run owns an artifact directory with two files,
following the artifact checklist the ROADMAP adopts (manifest + streamed raw
measurements):

``manifest.json``
    Written once, before any cell runs: format tag, library/interpreter
    versions, a snapshot of the sweep specification, and the expanded cell
    list — each cell's index, name, seed and content hash
    (:func:`~repro.experiments.spec.spec_hash`).  The manifest is provenance:
    a table found later can be traced to the exact parameters and code that
    produced it.

``metrics.jsonl``
    One JSON line per *completed* cell, appended (and flushed) the moment the
    sweep's in-order collector flushes that cell, carrying the cell's spec
    hash and its raw rows.  Appending line-by-line makes the log crash-safe:
    a killed run leaves at most one torn trailing line, which the loader
    skips.  Since store format v2 every line is *self-verifying*: it ends
    with a ``crc32`` field computed over the rest of the record, so a line
    that parses but was bit-flipped on disk (or hand-edited) is detected and
    dropped rather than resumed from.  Quarantined cells (``on_error="skip"``
    exhausting its retries) are recorded too, as lines carrying a
    ``failure`` object instead of ``rows`` — provenance for the operator;
    resume reruns those cells.

``summary.json``
    Per-cell aggregates — mean/std/min/max and a normal confidence interval
    for every numeric row column, over the cell's replicates — written by
    :func:`write_summary` when a checkpointed sweep completes, and derivable
    offline from any ``manifest.json`` + ``metrics.jsonl`` pair via
    :func:`summarize_store` (``repro summarize``).  This is the read-side
    artifact: the serving layer (:mod:`repro.serving`) answers queries from
    it without touching raw rows, so heavy read traffic never pays
    aggregation cost.  The file is derived state — deleting it loses
    nothing; rerunning ``repro summarize`` regenerates it byte-for-byte.

Resume is keyed purely by spec hash: :class:`SweepCheckpoint` loads every
recorded ``(spec_hash, rows)`` pair and a rerun skips exactly the cells whose
current hash has a record.  Because the hash pins every row-determining
parameter (config, seeds, budgets, variant, even the cell name — it is a row
column), a resumed table is row-for-row identical to an uninterrupted run, up
to the wall-clock columns captured when each cell actually ran.  Changing any
sweep parameter changes the hashes, so stale records are ignored rather than
mixed in.

The module-level :func:`verify_store` / :func:`repair_store` audit a store
without constructing a sweep: verify classifies every line (valid, legacy
pre-CRC, torn tail, corrupt, CRC mismatch, duplicate, orphan) against the
manifest and returns a machine-readable report; repair atomically rewrites
``metrics.jsonl`` down to its longest valid prefix so a damaged store
becomes resumable again with zero risk of resuming from corrupt rows.  Both
are exposed as ``repro checkpoint verify|repair`` CLI subcommands.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import tempfile
import warnings
import zlib
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.errors import CheckpointWarning, ExperimentError
from repro.experiments.io import json_default
from repro.experiments.spec import ExperimentSpec, spec_hash

PathLike = Union[str, Path]

#: Format tag stamped into (and required of) every checkpoint manifest.
MANIFEST_FORMAT = "repro-sweep-checkpoint"
MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"

#: Store format version stamped into new manifests.  Version 2 added the
#: per-line ``crc32`` field; version-1 lines (no CRC) are still loaded.
STORE_VERSION = 2

#: Format tag stamped into (and required of) every ``summary.json``.
SUMMARY_FORMAT = "repro-sweep-summary"
SUMMARY_NAME = "summary.json"

#: Row columns that legitimately differ between two runs of the same cell —
#: wall-clock timings captured when the cell actually executed.  Everything
#: else is pinned by the spec hash, which is what makes ``repro reproduce``'s
#: bitwise row comparison (:mod:`repro.serving.store`) well-defined.
VOLATILE_ROW_COLUMNS = frozenset({"wall_clock_seconds"})


def _canonical_payload(record: dict) -> dict:
    """``record`` with every exotic value coerced as the writer would coerce it.

    A JSON round-trip through the shared ``json_default`` hook turns numpy
    scalars/enums into the plain values a later reader will parse, so the
    CRC computed over the canonical form verifies bytes the reader can
    actually reproduce.
    """
    return json.loads(
        json.dumps(record, separators=(",", ":"), default=json_default)
    )


def encode_record_line(record: dict) -> bytes:
    """Serialise one metrics record as a self-verifying JSONL line.

    The ``crc32`` field is appended *last*, computed over the compact
    serialisation of everything before it; :func:`verify_record_crc` checks
    it by re-serialising the parsed record minus the field.  Both sides use
    ``json.dumps`` with the same separators, and dict order survives the
    round-trip, so the check is byte-exact.
    """
    payload = _canonical_payload(record)
    body = json.dumps(payload, separators=(",", ":"))
    payload["crc32"] = zlib.crc32(body.encode("utf-8"))
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def verify_record_crc(record: dict) -> Optional[bool]:
    """CRC verdict for a parsed record: ``True``/``False``, ``None`` if legacy.

    ``None`` means the record predates store format v2 and carries no
    ``crc32`` field — acceptable, but reported by :func:`verify_store`.
    """
    if "crc32" not in record:
        return None
    crc = record["crc32"]
    rest = {key: value for key, value in record.items() if key != "crc32"}
    body = json.dumps(rest, separators=(",", ":"))
    return isinstance(crc, int) and zlib.crc32(body.encode("utf-8")) == crc


def _sweep_snapshot(sweep: object) -> object:
    """Best-effort JSON snapshot of the sweep spec for the manifest.

    Dataclass sweeps (the normal case) serialise field-for-field; anything
    else — tests sometimes pass duck-typed sweeps — degrades to ``repr``.
    Provenance only: resume never reads the snapshot.
    """
    if dataclasses.is_dataclass(sweep) and not isinstance(sweep, type):
        return dataclasses.asdict(sweep)
    return {"repr": repr(sweep)}


class SweepCheckpoint:
    """Artifact directory handle for one (possibly resumed) sweep run.

    Constructing the handle prepares the directory: it creates it if needed,
    validates or writes ``manifest.json``, and loads every completed cell
    record from ``metrics.jsonl``.  The sweep runner then asks for
    :meth:`resumed_rows` up front and calls :meth:`record` once per newly
    completed cell, in cell order, as the in-order collector flushes it.
    """

    def __init__(
        self,
        directory: PathLike,
        cells: list[ExperimentSpec],
        sweep: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        #: Resolved flip-loop backend name executing this run's cells
        #: (``"scalar"`` when the serial engine runs them).  Provenance only:
        #: rows are backend-invariant, so resume ignores it, but the manifest
        #: and each newly recorded cell carry it so ``repro reproduce`` can
        #: name backend drift when rows unexpectedly differ.
        self.backend = backend
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.metrics_path = self.directory / METRICS_NAME
        self.cell_hashes = [spec_hash(cell) for cell in cells]
        self._completed: dict[str, list[dict[str, object]]] = {}
        self._failures: dict[str, dict[str, object]] = {}
        if self.metrics_path.exists():
            self._load_metrics()
        self._check_or_write_manifest(cells, sweep)

    # ------------------------------------------------------------- load side

    def _load_metrics(self) -> None:
        """Parse ``metrics.jsonl``, tolerating torn lines.

        A run killed mid-append leaves a line that is not valid JSON —
        usually the trailing one, but :meth:`record` terminates an inherited
        torn tail before appending, so a twice-interrupted log can carry an
        invalid line mid-file.  Invalid or CRC-mismatched lines are skipped
        individually *with a* :class:`~repro.errors.CheckpointWarning`
        *naming the file, line number and byte count dropped* — a lossy
        resume must be distinguishable from a clean one; every line that
        parses and verifies is a whole record (they are flushed
        line-atomically), and a skipped cell simply reruns.
        """
        for number, line in enumerate(
            self.metrics_path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self._warn_dropped(number, line, "not valid JSON (torn line?)")
                continue
            if verify_record_crc(record) is False:
                self._warn_dropped(number, line, "CRC32 mismatch (corrupt)")
                continue
            cell_hash = record.get("spec_hash")
            rows = record.get("rows")
            failure = record.get("failure")
            if isinstance(cell_hash, str) and isinstance(rows, list):
                self._completed[cell_hash] = rows
            elif isinstance(cell_hash, str) and isinstance(failure, dict):
                self._failures[cell_hash] = failure

    def _warn_dropped(self, number: int, line: str, reason: str) -> None:
        """Warn that one metrics line was dropped, with its identity."""
        warnings.warn(
            f"{self.metrics_path}: dropping line {number} "
            f"({len(line.encode('utf-8'))} bytes): {reason}; "
            "the affected cell will rerun on resume",
            CheckpointWarning,
            stacklevel=3,
        )

    def _check_or_write_manifest(
        self, cells: list[ExperimentSpec], sweep: Optional[object]
    ) -> None:
        """Validate an existing manifest's format tag, or write a fresh one."""
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except ValueError as exc:
                raise ExperimentError(
                    f"{self.manifest_path} is not valid JSON: {exc}"
                ) from exc
            if manifest.get("format") != MANIFEST_FORMAT:
                raise ExperimentError(
                    f"{self.manifest_path} is not a {MANIFEST_FORMAT} manifest "
                    "— refusing to resume into a foreign directory"
                )
            return
        import numpy

        manifest = {
            "format": MANIFEST_FORMAT,
            "version": STORE_VERSION,
            "library_version": __version__,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "sweep": _sweep_snapshot(sweep) if sweep is not None else None,
            "backend": self.backend,
            "n_cells": len(cells),
            "cells": [
                {
                    "index": index,
                    "name": cell.name,
                    "seed": cell.seed,
                    "spec_hash": cell_hash,
                }
                for index, (cell, cell_hash) in enumerate(
                    zip(cells, self.cell_hashes)
                )
            ],
        }
        with open(self.manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, default=json_default)
            handle.write("\n")

    # ------------------------------------------------------------ query side

    @property
    def n_completed(self) -> int:
        """Number of loaded cell records (not all need match this sweep)."""
        return len(self._completed)

    def resumed_rows(self) -> dict[int, list[dict[str, object]]]:
        """Rows of already-completed cells, keyed by this run's cell index.

        A cell resumes only when its *current* spec hash has a record, so a
        sweep whose parameters changed since the checkpoint was written
        simply reruns every changed cell.
        """
        return {
            index: self._completed[cell_hash]
            for index, cell_hash in enumerate(self.cell_hashes)
            if cell_hash in self._completed
        }

    def recorded_failures(self) -> dict[int, dict[str, object]]:
        """Quarantined-cell failure records, keyed by this run's cell index.

        Informational: a failure record never satisfies resume — the cell
        reruns and gets another chance — but the operator can see what went
        wrong on the previous run without scraping logs.
        """
        return {
            index: self._failures[cell_hash]
            for index, cell_hash in enumerate(self.cell_hashes)
            if cell_hash in self._failures and cell_hash not in self._completed
        }

    # ----------------------------------------------------------- record side

    def encoded_record(
        self, index: int, cell: ExperimentSpec, rows: list[dict[str, object]]
    ) -> bytes:
        """The exact self-verifying line :meth:`record` would append."""
        record: dict[str, object] = {
            "spec_hash": self.cell_hashes[index],
            "cell_index": index,
            "cell_name": cell.name,
            "rows": rows,
        }
        if self.backend is not None:
            # Execution provenance; absent on records from older stores.
            record["backend"] = self.backend
        return encode_record_line(record)

    def record(
        self, index: int, cell: ExperimentSpec, rows: list[dict[str, object]]
    ) -> None:
        """Append one completed cell's rows to ``metrics.jsonl``.

        Open-append-close per record keeps the log consistent under kills:
        the line either lands whole or is the torn tail the loader skips.
        A torn tail inherited from a previous kill is newline-terminated
        first, so the new record never concatenates onto the fragment.
        """
        self._append_line(self.encoded_record(index, cell, rows))
        self._completed[self.cell_hashes[index]] = rows

    def record_failure(
        self, index: int, cell: ExperimentSpec, failure: dict[str, object]
    ) -> None:
        """Append a quarantined cell's structured failure record.

        The record carries the cell's identity, the attempt count and the
        worker-side traceback string, so a long unattended sweep leaves an
        auditable account of what it skipped.  Failure records never satisfy
        resume — the cell reruns next time.
        """
        self._append_line(
            encode_record_line(
                {
                    "spec_hash": self.cell_hashes[index],
                    "cell_index": index,
                    "cell_name": cell.name,
                    "failure": failure,
                }
            )
        )
        self._failures[self.cell_hashes[index]] = dict(failure)

    def _append_line(self, line: bytes) -> None:
        """Append one encoded line, newline-terminating any inherited tail."""
        with open(self.metrics_path, "a+b") as handle:
            if handle.seek(0, 2) > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line)

    def write_summary(self) -> Path:
        """Write (or refresh) this store's ``summary.json`` from disk state.

        Called by the sweep runner when a checkpointed sweep finishes;
        idempotent and rerunnable offline (``repro summarize``) because the
        summary is derived purely from the manifest and metrics files.
        """
        return write_summary(self.directory)


# ----------------------------------------------------------------- audit side


def _classify_lines(metrics_bytes: bytes, manifest_hashes: Optional[set]):
    """Classify every ``metrics.jsonl`` line; yield ``(problems, prefix_end)``.

    Walks the raw bytes so byte offsets are exact.  Returns the problem list
    and the byte offset of the end of the longest *prefix* of fully valid
    lines — the truncation point :func:`repair_store` uses.  A line is valid
    when it parses, its CRC matches (legacy no-CRC lines are reported but
    count as valid — they predate format v2), it carries a usable payload,
    and its hash is neither a duplicate nor (when a manifest is readable) an
    orphan.  Duplicates and orphans end the valid prefix too: resuming past
    them is well-defined for the loader, but a repaired store should be
    exactly reproducible from the manifest, so repair cuts conservatively.

    Duplicate means *any record after a rows record* for the same hash: a
    completed cell is skipped on resume, so nothing legitimate ever appends
    behind its rows.  Failure records, by contrast, are designed to be
    superseded — ``on_error="skip"`` quarantines a cell, a resumed run
    reruns it and appends its rows (or fails again and appends another
    failure record) under the same hash — so rows-after-failure and
    failure-after-failure are the healthy quarantine-then-resume flow, not
    damage.
    """
    problems: list[dict[str, object]] = []
    counts = {"total": 0, "valid": 0, "legacy_no_crc": 0}
    prefix_end = 0
    prefix_intact = True
    seen_rows_hashes: set[str] = set()
    offset = 0
    while offset < len(metrics_bytes):
        newline = metrics_bytes.find(b"\n", offset)
        torn_tail = newline < 0
        end = len(metrics_bytes) if torn_tail else newline + 1
        raw = metrics_bytes[offset : len(metrics_bytes) if torn_tail else newline]
        line_number = counts["total"] + 1
        counts["total"] += 1
        problem: Optional[dict[str, object]] = None
        if not raw.strip():
            # Blank separator (a terminated torn fragment); harmless.
            counts["total"] -= 1
            if prefix_intact:
                prefix_end = end
            offset = end
            continue
        try:
            record = json.loads(raw.decode("utf-8", errors="replace"))
            if not isinstance(record, dict):
                raise ValueError("not a JSON object")
        except ValueError:
            kind = "torn-tail" if torn_tail else "corrupt-line"
            problem = {"kind": kind, "line": line_number, "bytes": len(raw)}
        else:
            crc_ok = verify_record_crc(record)
            cell_hash = record.get("spec_hash")
            if torn_tail:
                # Parses but was never newline-terminated: the append was
                # cut between the payload write and the newline flush.
                problem = {
                    "kind": "torn-tail",
                    "line": line_number,
                    "bytes": len(raw),
                }
            elif crc_ok is False:
                problem = {
                    "kind": "crc-mismatch",
                    "line": line_number,
                    "bytes": len(raw),
                }
            elif not isinstance(cell_hash, str) or not (
                isinstance(record.get("rows"), list)
                or isinstance(record.get("failure"), dict)
            ):
                problem = {
                    "kind": "malformed-record",
                    "line": line_number,
                    "bytes": len(raw),
                }
            elif cell_hash in seen_rows_hashes:
                problem = {
                    "kind": "duplicate-record",
                    "line": line_number,
                    "bytes": len(raw),
                    "spec_hash": cell_hash,
                }
            elif manifest_hashes is not None and cell_hash not in manifest_hashes:
                problem = {
                    "kind": "orphan-record",
                    "line": line_number,
                    "bytes": len(raw),
                    "spec_hash": cell_hash,
                }
            else:
                counts["valid"] += 1
                if crc_ok is None:
                    counts["legacy_no_crc"] += 1
                if isinstance(record.get("rows"), list):
                    seen_rows_hashes.add(cell_hash)
        if problem is not None:
            problems.append(problem)
            prefix_intact = False
        elif prefix_intact:
            prefix_end = end
        offset = end
    return problems, counts, prefix_end


def _audit_manifest(directory: Path) -> tuple[dict, Optional[set]]:
    """Manifest portion of a store audit: report dict + the cell hash set."""
    manifest_path = directory / MANIFEST_NAME
    report: dict[str, object] = {
        "present": manifest_path.exists(),
        "valid": False,
        "n_cells": None,
        "problems": [],
    }
    if not report["present"]:
        report["problems"].append({"kind": "manifest-missing"})
        return report, None
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as exc:
        report["problems"].append(
            {"kind": "manifest-corrupt", "detail": str(exc)}
        )
        return report, None
    if manifest.get("format") != MANIFEST_FORMAT:
        report["problems"].append(
            {"kind": "manifest-foreign", "detail": str(manifest.get("format"))}
        )
        return report, None
    cells = manifest.get("cells")
    n_cells = manifest.get("n_cells")
    hashes: Optional[set] = None
    if isinstance(cells, list):
        hashes = {
            entry.get("spec_hash")
            for entry in cells
            if isinstance(entry, dict) and isinstance(entry.get("spec_hash"), str)
        }
        if len(hashes) != len(cells):
            report["problems"].append(
                {
                    "kind": "manifest-drift",
                    "detail": "duplicate or missing spec hashes in cell list",
                }
            )
        if isinstance(n_cells, int) and n_cells != len(cells):
            report["problems"].append(
                {
                    "kind": "manifest-drift",
                    "detail": f"n_cells={n_cells} but cell list has {len(cells)}",
                }
            )
    report["valid"] = not report["problems"]
    report["n_cells"] = n_cells if isinstance(n_cells, int) else None
    return report, hashes


def verify_store(directory: PathLike) -> dict[str, object]:
    """Audit a checkpoint directory; return a machine-readable report.

    The report carries ``ok`` (no problems at all), a ``manifest`` section,
    per-line ``records`` counts, the full ``problems`` list (each problem a
    dict with a ``kind`` — ``torn-tail``, ``corrupt-line``, ``crc-mismatch``,
    ``malformed-record``, ``duplicate-record``, ``orphan-record``,
    ``manifest-*`` — plus line number and byte count where applicable) and
    ``valid_prefix_bytes``, the truncation point :func:`repair_store` would
    cut at.  Read-only: verification never modifies the store.
    """
    directory = Path(directory)
    manifest_report, manifest_hashes = _audit_manifest(directory)
    metrics_path = directory / METRICS_NAME
    counts = {"total": 0, "valid": 0, "legacy_no_crc": 0}
    problems: list[dict[str, object]] = []
    prefix_end = 0
    metrics_present = metrics_path.exists()
    if metrics_present:
        problems, counts, prefix_end = _classify_lines(
            metrics_path.read_bytes(), manifest_hashes
        )
    all_problems = list(manifest_report["problems"]) + problems
    return {
        "directory": str(directory),
        "ok": not all_problems,
        "manifest": {
            key: manifest_report[key] for key in ("present", "valid", "n_cells")
        },
        "records": {
            "metrics_present": metrics_present,
            "total": counts["total"],
            "valid": counts["valid"],
            "legacy_no_crc": counts["legacy_no_crc"],
        },
        "problems": all_problems,
        "valid_prefix_bytes": prefix_end,
    }


def repair_store(directory: PathLike) -> dict[str, object]:
    """Truncate ``metrics.jsonl`` to its longest valid prefix, atomically.

    Returns the :func:`verify_store` report of the *pre-repair* state
    extended with a ``repair`` section stating what was done.  The rewrite
    goes through a temp file + ``os.replace``, so a crash mid-repair leaves
    either the original or the repaired file, never a hybrid.  Records after
    the first invalid line are dropped even if individually valid — their
    cells simply rerun on resume — so the repaired store is always an exact
    prefix of a legitimate run and resume stays row-for-row identical.
    Manifest problems are reported but not repaired (the manifest is
    provenance; fabricating one would defeat its purpose).
    """
    directory = Path(directory)
    report = verify_store(directory)
    metrics_path = directory / METRICS_NAME
    repair: dict[str, object] = {"performed": False, "bytes_dropped": 0}
    line_problems = [p for p in report["problems"] if "line" in p]
    if metrics_path.exists() and line_problems:
        data = metrics_path.read_bytes()
        keep = report["valid_prefix_bytes"]
        descriptor, tmp = tempfile.mkstemp(dir=directory, suffix=".jsonl")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data[:keep])
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, metrics_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        repair = {"performed": True, "bytes_dropped": len(data) - keep}
    report["repair"] = repair
    return report


# --------------------------------------------------------------- summary side


def load_manifest(directory: PathLike) -> Optional[dict]:
    """The store's parsed ``manifest.json``, or ``None`` when unusable.

    "Unusable" covers a missing file, invalid JSON and a foreign format tag;
    callers that *require* provenance (``repro reproduce``) raise on ``None``,
    while the summary writer degrades to record-order output.
    """
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError:
        return None
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        return None
    return manifest


def scan_records(directory: PathLike) -> dict[str, dict[str, object]]:
    """Latest usable record per spec hash, in first-appearance order.

    Applies the loader's semantics without building a sweep: lines that do
    not parse or fail their CRC are skipped silently (this is a read-side
    scan — :class:`SweepCheckpoint` owns the warning on resume), a ``rows``
    record supersedes an earlier ``failure`` record for the same hash, and a
    repeated ``failure`` keeps the latest one.  Each value is the parsed
    record dict (``cell_index``/``cell_name`` plus ``rows`` or ``failure``).
    """
    metrics_path = Path(directory) / METRICS_NAME
    records: dict[str, dict[str, object]] = {}
    if not metrics_path.exists():
        return records
    for line in metrics_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict) or verify_record_crc(record) is False:
            continue
        cell_hash = record.get("spec_hash")
        if not isinstance(cell_hash, str):
            continue
        has_rows = isinstance(record.get("rows"), list)
        has_failure = isinstance(record.get("failure"), dict)
        if not (has_rows or has_failure):
            continue
        previous = records.get(cell_hash)
        if (
            previous is not None
            and isinstance(previous.get("rows"), list)
            and not has_rows
        ):
            continue  # rows already recorded; a failure never supersedes them
        records[cell_hash] = record
    return records


def cell_params_from_rows(
    rows: list,
) -> Optional[dict[str, object]]:
    """The serving-layer parameter point ``{tau, w, rho}`` of one cell's rows.

    Rows store the model vocabulary (``tau``/``horizon``/``density``); the
    serving layer speaks the paper's ``(tau, w, rho)``.  Every row of a cell
    shares these values (the spec fixes them), so the first row suffices.
    Returns ``None`` for empty or malformed rows — such cells are recorded in
    the summary but cannot answer parameter queries.
    """
    row = rows[0] if rows else None
    if not isinstance(row, dict):
        return None
    try:
        return {
            "tau": float(row["tau"]),
            "w": int(row["horizon"]),
            "rho": float(row["density"]),
        }
    except (KeyError, TypeError, ValueError):
        return None


def _summary_cell(
    index: Optional[int],
    name: Optional[str],
    cell_hash: str,
    record: Optional[dict],
) -> dict[str, object]:
    """One ``summary.json`` cell entry from its (possibly absent) record."""
    from repro.experiments.results import ResultTable

    entry: dict[str, object] = {
        "index": index,
        "name": name,
        "spec_hash": cell_hash,
        "params": None,
        "n_replicates": 0,
        "metrics": {},
        "failure": None,
    }
    if record is None:
        return entry
    if entry["name"] is None and isinstance(record.get("cell_name"), str):
        entry["name"] = record["cell_name"]
    if entry["index"] is None and isinstance(record.get("cell_index"), int):
        entry["index"] = record["cell_index"]
    rows = record.get("rows")
    if isinstance(rows, list) and rows:
        entry["params"] = cell_params_from_rows(rows)
        entry["n_replicates"] = len(rows)
        entry["metrics"] = ResultTable(rows).numeric_summary()
    elif isinstance(record.get("failure"), dict):
        entry["failure"] = record["failure"]
    return entry


def summarize_store(directory: PathLike) -> dict[str, object]:
    """Build the ``summary.json`` payload for a checkpoint store.

    Aggregates every recorded cell's rows into per-column summary stats
    (:meth:`~repro.experiments.results.ResultTable.numeric_summary`), keyed
    by the cell's identity and its ``(tau, w, rho)`` parameter point.  Cells
    are ordered by the manifest when one is readable (cells without a record
    appear with empty metrics and count as missing); without a manifest the
    records' first-appearance order is used.  Quarantined cells carry their
    recorded ``failure`` instead of metrics.  Pure function of the on-disk
    store: rerunning it on an unchanged store reproduces the payload
    byte-for-byte.
    """
    directory = Path(directory)
    if not (directory / METRICS_NAME).exists() and load_manifest(directory) is None:
        raise ExperimentError(
            f"{directory} is not a checkpoint store "
            f"(no {MANIFEST_NAME} or {METRICS_NAME})"
        )
    manifest = load_manifest(directory)
    records = scan_records(directory)
    cells: list[dict[str, object]] = []
    if manifest is not None and isinstance(manifest.get("cells"), list):
        for entry in manifest["cells"]:
            if not isinstance(entry, dict):
                continue
            cell_hash = entry.get("spec_hash")
            if not isinstance(cell_hash, str):
                continue
            cells.append(
                _summary_cell(
                    entry.get("index"),
                    entry.get("name"),
                    cell_hash,
                    records.get(cell_hash),
                )
            )
    else:
        for cell_hash, record in records.items():
            cells.append(_summary_cell(None, None, cell_hash, record))
    n_summarized = sum(1 for cell in cells if cell["metrics"])
    n_failed = sum(1 for cell in cells if cell["failure"] is not None)
    return {
        "format": SUMMARY_FORMAT,
        "version": 1,
        "library_version": __version__,
        "n_cells": len(cells),
        "n_summarized": n_summarized,
        "n_failed": n_failed,
        "n_missing": len(cells) - n_summarized - n_failed,
        "complete": n_summarized == len(cells),
        "cells": cells,
    }


def write_summary(directory: PathLike) -> Path:
    """Write ``summary.json`` for a store, atomically; return its path.

    The write goes through a temp file + ``os.replace`` so readers (the
    query service polls this file) never observe a half-written summary.
    """
    directory = Path(directory)
    payload = summarize_store(directory)
    summary_path = directory / SUMMARY_NAME
    descriptor, tmp = tempfile.mkstemp(dir=directory, suffix=".json")
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle, indent=2, default=json_default)
            handle.write("\n")
        # mkstemp creates 0600; match the store's other artifacts instead
        # of leaking the temp file's restrictive mode into summary.json.
        os.chmod(tmp, 0o644)
        os.replace(tmp, summary_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return summary_path
