"""Checkpointed sweep artifacts: a manifest plus a streamed metrics log.

Every checkpointed sweep run owns an artifact directory with two files,
following the artifact checklist the ROADMAP adopts (manifest + streamed raw
measurements):

``manifest.json``
    Written once, before any cell runs: format tag, library/interpreter
    versions, a snapshot of the sweep specification, and the expanded cell
    list — each cell's index, name, seed and content hash
    (:func:`~repro.experiments.spec.spec_hash`).  The manifest is provenance:
    a table found later can be traced to the exact parameters and code that
    produced it.

``metrics.jsonl``
    One JSON line per *completed* cell, appended (and flushed) the moment the
    sweep's in-order collector flushes that cell, carrying the cell's spec
    hash and its raw rows.  Appending line-by-line makes the log crash-safe:
    a killed run leaves at most one torn trailing line, which the loader
    skips.

Resume is keyed purely by spec hash: :class:`SweepCheckpoint` loads every
recorded ``(spec_hash, rows)`` pair and a rerun skips exactly the cells whose
current hash has a record.  Because the hash pins every row-determining
parameter (config, seeds, budgets, variant, even the cell name — it is a row
column), a resumed table is row-for-row identical to an uninterrupted run, up
to the wall-clock columns captured when each cell actually ran.  Changing any
sweep parameter changes the hashes, so stale records are ignored rather than
mixed in.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.errors import ExperimentError
from repro.experiments.io import json_default
from repro.experiments.spec import ExperimentSpec, spec_hash

PathLike = Union[str, Path]

#: Format tag stamped into (and required of) every checkpoint manifest.
MANIFEST_FORMAT = "repro-sweep-checkpoint"
MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"


def _sweep_snapshot(sweep: object) -> object:
    """Best-effort JSON snapshot of the sweep spec for the manifest.

    Dataclass sweeps (the normal case) serialise field-for-field; anything
    else — tests sometimes pass duck-typed sweeps — degrades to ``repr``.
    Provenance only: resume never reads the snapshot.
    """
    if dataclasses.is_dataclass(sweep) and not isinstance(sweep, type):
        return dataclasses.asdict(sweep)
    return {"repr": repr(sweep)}


class SweepCheckpoint:
    """Artifact directory handle for one (possibly resumed) sweep run.

    Constructing the handle prepares the directory: it creates it if needed,
    validates or writes ``manifest.json``, and loads every completed cell
    record from ``metrics.jsonl``.  The sweep runner then asks for
    :meth:`resumed_rows` up front and calls :meth:`record` once per newly
    completed cell, in cell order, as the in-order collector flushes it.
    """

    def __init__(
        self,
        directory: PathLike,
        cells: list[ExperimentSpec],
        sweep: Optional[object] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.metrics_path = self.directory / METRICS_NAME
        self.cell_hashes = [spec_hash(cell) for cell in cells]
        self._completed: dict[str, list[dict[str, object]]] = {}
        if self.metrics_path.exists():
            self._load_metrics()
        self._check_or_write_manifest(cells, sweep)

    # ------------------------------------------------------------- load side

    def _load_metrics(self) -> None:
        """Parse ``metrics.jsonl``, tolerating torn lines.

        A run killed mid-append leaves a line that is not valid JSON —
        usually the trailing one, but :meth:`record` terminates an inherited
        torn tail before appending, so a twice-interrupted log can carry an
        invalid line mid-file.  Invalid lines are skipped individually; every
        line that parses is a whole record (they are flushed line-atomically),
        and a skipped cell simply reruns.
        """
        for line in self.metrics_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            cell_hash = record.get("spec_hash")
            rows = record.get("rows")
            if isinstance(cell_hash, str) and isinstance(rows, list):
                self._completed[cell_hash] = rows

    def _check_or_write_manifest(
        self, cells: list[ExperimentSpec], sweep: Optional[object]
    ) -> None:
        """Validate an existing manifest's format tag, or write a fresh one."""
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except ValueError as exc:
                raise ExperimentError(
                    f"{self.manifest_path} is not valid JSON: {exc}"
                ) from exc
            if manifest.get("format") != MANIFEST_FORMAT:
                raise ExperimentError(
                    f"{self.manifest_path} is not a {MANIFEST_FORMAT} manifest "
                    "— refusing to resume into a foreign directory"
                )
            return
        import numpy

        manifest = {
            "format": MANIFEST_FORMAT,
            "version": 1,
            "library_version": __version__,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "sweep": _sweep_snapshot(sweep) if sweep is not None else None,
            "n_cells": len(cells),
            "cells": [
                {
                    "index": index,
                    "name": cell.name,
                    "seed": cell.seed,
                    "spec_hash": cell_hash,
                }
                for index, (cell, cell_hash) in enumerate(
                    zip(cells, self.cell_hashes)
                )
            ],
        }
        with open(self.manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, default=json_default)
            handle.write("\n")

    # ------------------------------------------------------------ query side

    @property
    def n_completed(self) -> int:
        """Number of loaded cell records (not all need match this sweep)."""
        return len(self._completed)

    def resumed_rows(self) -> dict[int, list[dict[str, object]]]:
        """Rows of already-completed cells, keyed by this run's cell index.

        A cell resumes only when its *current* spec hash has a record, so a
        sweep whose parameters changed since the checkpoint was written
        simply reruns every changed cell.
        """
        return {
            index: self._completed[cell_hash]
            for index, cell_hash in enumerate(self.cell_hashes)
            if cell_hash in self._completed
        }

    # ----------------------------------------------------------- record side

    def record(
        self, index: int, cell: ExperimentSpec, rows: list[dict[str, object]]
    ) -> None:
        """Append one completed cell's rows to ``metrics.jsonl``.

        Open-append-close per record keeps the log consistent under kills:
        the line either lands whole or is the torn tail the loader skips.
        A torn tail inherited from a previous kill is newline-terminated
        first, so the new record never concatenates onto the fragment.
        """
        line = json.dumps(
            {
                "spec_hash": self.cell_hashes[index],
                "cell_index": index,
                "cell_name": cell.name,
                "rows": rows,
            },
            separators=(",", ":"),
            default=json_default,
        )
        with open(self.metrics_path, "a+b") as handle:
            if handle.seek(0, 2) > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
        self._completed[self.cell_hashes[index]] = rows
