"""Replicate and sweep execution.

The runner turns :class:`~repro.experiments.spec.ExperimentSpec` /
:class:`~repro.experiments.spec.SweepSpec` objects into
:class:`~repro.experiments.results.ResultTable` rows: one row per replicate
with the full set of segregation metrics for the initial and final
configurations, plus run metadata (flips, termination, wall-clock time).

Two execution strategies are available on top of the serial defaults:

* ``ensemble_size=R`` batches a cell's replicates through the vectorized
  :class:`~repro.core.ensemble.EnsembleDynamics` engine, ``R`` lockstep
  replicas at a time.  Replica seeds are derived exactly like the scalar
  path's (:func:`repro.rng.replicate_seeds`), so the rows are identical to
  the serial ones apart from wall-clock timings.
* ``workers=N`` fans sweep cells out to a process pool
  (:func:`repro.experiments.parallel.run_sweep_parallel`); cell seeds come
  from the sweep spec, so the table is row-for-row identical to a serial run.

Cells carrying a non-base :class:`~repro.core.variants.VariantSpec` go through
the same machinery: the scalar path builds the variant state inside
:class:`~repro.core.simulation.Simulation`, the ensemble path builds the
matching variant engine via :meth:`VariantSpec.make_ensemble`, and both apply
the cell's ``max_flips``/``max_steps`` budgets per replicate, so variant rows
are engine-independent too (the two-sided variant reports per-replicate
``terminated`` flags instead of relying on the Lyapunov guarantee).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.analysis.segregation import (
    default_region_radius,
    segregation_metrics,
    segregation_metrics_batch,
)
from repro.analysis.trajectory import summarize_trajectory
from repro.core.backends.registry import select_backend_name
from repro.core.config import ModelConfig
from repro.core.dynamics import Trajectory
from repro.core.simulation import Simulation
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.rng import replicate_seeds
from repro.utils.timer import Timer


def _region_radius(spec: ExperimentSpec, config: ModelConfig) -> int:
    """The region-scan radius used by the metrics of one cell."""
    if spec.max_region_radius is not None:
        return spec.max_region_radius
    return default_region_radius(config)


def _result_row(
    spec: ExperimentSpec,
    replicate_index: int,
    replicate_seed: int,
    initial_spins: np.ndarray,
    final_spins: np.ndarray,
    terminated: bool,
    n_flips: int,
    final_time: float,
    wall_clock_seconds: float,
    trajectory: Optional[Trajectory] = None,
    initial_metrics=None,
    final_metrics=None,
) -> dict[str, object]:
    """Assemble one replicate row from run outputs (shared by both engines).

    When a recorded ``trajectory`` is supplied its scalar summary is attached
    as ``traj_*`` columns; the summary only reads the first/last samples plus
    energy monotonicity, so the scalar and ensemble engines produce identical
    values despite their different sampling cadences.  ``initial_metrics`` /
    ``final_metrics`` accept precomputed
    :class:`~repro.analysis.segregation.SegregationMetrics` bundles (the
    ensemble path computes them batched); when omitted they are computed here
    with the identical settings, so the rows come out the same either way.
    """
    config = spec.config
    max_region_radius = _region_radius(spec, config)
    if initial_metrics is None:
        initial_metrics = segregation_metrics(
            initial_spins, config, max_region_radius=max_region_radius
        )
    if final_metrics is None:
        final_metrics = segregation_metrics(
            final_spins, config, max_region_radius=max_region_radius
        )
    flipped = int(np.count_nonzero(initial_spins != final_spins))
    row: dict[str, object] = {
        "experiment": spec.name,
        "replicate": replicate_index,
        "seed": replicate_seed,
        "n_rows": config.n_rows,
        "n_cols": config.n_cols,
        "horizon": config.horizon,
        "neighborhood_agents": config.neighborhood_agents,
        "tau": config.tau,
        "effective_tau": config.effective_tau,
        "density": config.density,
        "variant": spec.variant.kind.value,
        "terminated": terminated,
        "n_flips": n_flips,
        "final_time": final_time,
        "wall_clock_seconds": wall_clock_seconds,
        "flipped_fraction": flipped / initial_spins.size,
    }
    if spec.variant.tau_high is not None:
        row["tau_high"] = spec.variant.tau_high
    if spec.variant.tau_minus is not None:
        row["tau_minus"] = spec.variant.tau_minus
    for key, value in initial_metrics.as_dict().items():
        row[f"initial_{key}"] = value
    for key, value in final_metrics.as_dict().items():
        row[f"final_{key}"] = value
    if trajectory is not None:
        for key, value in summarize_trajectory(trajectory).as_dict().items():
            row[f"traj_{key}"] = value
    return row


def run_replicate(
    spec: ExperimentSpec, replicate_index: int, replicate_seed: int
) -> dict[str, object]:
    """Run one replicate of ``spec`` (under its variant rule) and return its row."""
    simulation = Simulation(spec.config, seed=replicate_seed, variant=spec.variant)
    with Timer() as timer:
        result = simulation.run(
            max_flips=spec.max_flips,
            max_steps=spec.max_steps,
            record_trajectory=spec.record_trajectory,
            record_every=spec.record_every,
        )
    return _result_row(
        spec,
        replicate_index,
        replicate_seed,
        result.initial_spins,
        result.final_spins,
        result.terminated,
        result.n_flips,
        result.final_time,
        timer.elapsed,
        trajectory=result.trajectory,
    )


def _run_experiment_ensemble(
    spec: ExperimentSpec, ensemble_size: int, backend: Optional[str] = None
) -> ResultTable:
    """Run a cell's replicates in vectorized batches of ``ensemble_size``.

    Replica seeds and RNG streams match the scalar path exactly, so the rows
    differ from :func:`run_experiment`'s serial output only in
    ``wall_clock_seconds`` (reported as the batch time split evenly across its
    replicas, since lockstep replicas share the work).  Measurement is batched
    too: each batch's initial and final ``(R, n, n)`` stacks go through
    :func:`~repro.analysis.segregation.segregation_metrics_batch`, whose
    per-replica bundles are bitwise identical to the serial path's.

    The flip-loop ``backend`` request takes the full selection precedence
    (call argument > ``REPRO_BACKEND`` > ``spec.backend`` > auto); backends
    are bitwise identical, so the choice never changes the rows.
    """
    table = ResultTable()
    seeds = replicate_seeds(spec.seed, spec.n_replicates)
    max_region_radius = _region_radius(spec, spec.config)
    backend_name = select_backend_name(backend, spec.backend)
    for batch_start in range(0, len(seeds), ensemble_size):
        batch_seeds = seeds[batch_start : batch_start + ensemble_size]
        ensemble = spec.variant.make_ensemble(
            spec.config, replica_seeds=batch_seeds, backend=backend_name
        )
        initial = ensemble.initial_spins()
        with Timer() as timer:
            result = ensemble.run(
                max_flips=spec.max_flips,
                max_steps=spec.max_steps,
                record_trajectory=spec.record_trajectory,
                record_every=spec.record_every,
            )
        per_replica_seconds = timer.elapsed / len(batch_seeds)
        initial_metrics = segregation_metrics_batch(
            initial, spec.config, max_region_radius=max_region_radius
        )
        final_metrics = segregation_metrics_batch(
            result.final_spins, spec.config, max_region_radius=max_region_radius
        )
        for offset, seed in enumerate(batch_seeds):
            table.add_row(
                **_result_row(
                    spec,
                    batch_start + offset,
                    seed,
                    initial[offset],
                    result.final_spins[offset],
                    bool(result.terminated[offset]),
                    int(result.n_flips[offset]),
                    float(result.final_time[offset]),
                    per_replica_seconds,
                    trajectory=(
                        result.trajectory.replica(offset)
                        if result.trajectory is not None
                        else None
                    ),
                    initial_metrics=initial_metrics[offset],
                    final_metrics=final_metrics[offset],
                )
            )
    return table


def run_experiment(
    spec: ExperimentSpec,
    ensemble_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run all replicates of one experiment cell.

    ``ensemble_size`` > 1 routes the replicates through the vectorized
    ensemble engine in lockstep batches of that size; the default runs them
    serially through the scalar engine.  Both paths derive replicate seeds
    identically and produce identical rows (up to wall-clock timings).
    ``backend`` requests a flip-loop backend for the ensemble path (strongest
    level of the CLI > env > spec > auto precedence); the scalar path has no
    backend seam and ignores it.
    """
    if ensemble_size is not None and ensemble_size > 1:
        return _run_experiment_ensemble(spec, ensemble_size, backend=backend)
    table = ResultTable()
    seeds = replicate_seeds(spec.seed, spec.n_replicates)
    for index, seed in enumerate(seeds):
        table.add_row(**run_replicate(spec, index, seed))
    return table


def run_sweep(
    sweep: SweepSpec,
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    workers: Optional[int] = None,
    ensemble_size: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    retries: int = 0,
    cell_timeout: Optional[float] = None,
    on_error: str = "raise",
    backend: Optional[str] = None,
) -> ResultTable:
    """Run every cell of a sweep and concatenate the replicate rows.

    ``progress`` (if given) is called exactly once per cell, in cell order,
    after the cell completes — benchmarks use it to emit a line per cell.
    ``workers`` > 1 delegates to
    :func:`repro.experiments.parallel.run_sweep_parallel`, which shards cells
    across a process pool while preserving row order; ``ensemble_size``
    selects the vectorized replicate engine in either mode.
    ``checkpoint_dir`` (any worker count, including serial) streams completed
    cells to a resumable artifact directory and skips cells a previous run
    already recorded — see :mod:`repro.experiments.checkpoint`.
    ``retries`` / ``cell_timeout`` / ``on_error`` configure the
    fault-tolerant supervisor (retry with seeded backoff, hang detection,
    quarantine — see :func:`~repro.experiments.parallel.run_sweep_parallel`);
    any non-default value also routes through the supervised path.
    ``backend`` requests a flip-loop backend for ensemble execution (see
    :func:`run_experiment`), propagated to pool workers unchanged.
    """
    supervised = retries != 0 or cell_timeout is not None or on_error != "raise"
    if (workers is not None and workers > 1) or checkpoint_dir is not None or supervised:
        # Imported here: parallel builds on this module's cell runner.
        from repro.experiments.parallel import run_sweep_parallel

        return run_sweep_parallel(
            sweep,
            workers=workers if workers is not None else 1,
            progress=progress,
            ensemble_size=ensemble_size,
            checkpoint_dir=checkpoint_dir,
            retries=retries,
            cell_timeout=cell_timeout,
            on_error=on_error,
            backend=backend,
        )
    table = ResultTable()
    for cell in sweep.cells():
        cell_table = run_experiment(cell, ensemble_size=ensemble_size, backend=backend)
        table.extend(cell_table.rows)
        if progress is not None:
            progress(cell)
    return table


#: Metrics summarised per parameter cell unless a caller overrides them
#: (the CLI extends these with ``traj_*`` keys when recording trajectories).
DEFAULT_SWEEP_VALUE_KEYS: tuple[str, ...] = (
    "final_mean_monochromatic_size",
    "final_mean_almost_monochromatic_size",
    "final_local_homogeneity",
    "final_unhappy_fraction",
    "final_largest_cluster_fraction",
    "n_flips",
)


def aggregate_sweep(
    table: ResultTable,
    group_keys: tuple[str, ...] = ("tau", "horizon", "density"),
    value_keys: tuple[str, ...] = DEFAULT_SWEEP_VALUE_KEYS,
) -> ResultTable:
    """Group replicate rows by parameter cell and summarise the key metrics."""
    return table.group_summary(list(group_keys), list(value_keys))
