"""Replicate and sweep execution.

The runner turns :class:`~repro.experiments.spec.ExperimentSpec` /
:class:`~repro.experiments.spec.SweepSpec` objects into
:class:`~repro.experiments.results.ResultTable` rows: one row per replicate
with the full set of segregation metrics for the initial and final
configurations, plus run metadata (flips, termination, wall-clock time).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.segregation import segregation_metrics
from repro.core.simulation import Simulation
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.rng import replicate_seeds
from repro.utils.timer import Timer


def run_replicate(
    spec: ExperimentSpec, replicate_index: int, replicate_seed: int
) -> dict[str, object]:
    """Run one replicate of ``spec`` and return its result row."""
    config = spec.config
    max_region_radius = spec.max_region_radius
    if max_region_radius is None:
        max_region_radius = min(4 * config.horizon, (min(config.shape) - 1) // 2)
    simulation = Simulation(config, seed=replicate_seed)
    with Timer() as timer:
        result = simulation.run(max_flips=spec.max_flips)
    initial_metrics = segregation_metrics(
        result.initial_spins, config, max_region_radius=max_region_radius
    )
    final_metrics = segregation_metrics(
        result.final_spins, config, max_region_radius=max_region_radius
    )
    row: dict[str, object] = {
        "experiment": spec.name,
        "replicate": replicate_index,
        "seed": replicate_seed,
        "n_rows": config.n_rows,
        "n_cols": config.n_cols,
        "horizon": config.horizon,
        "neighborhood_agents": config.neighborhood_agents,
        "tau": config.tau,
        "effective_tau": config.effective_tau,
        "density": config.density,
        "terminated": result.terminated,
        "n_flips": result.n_flips,
        "final_time": result.final_time,
        "wall_clock_seconds": timer.elapsed,
        "flipped_fraction": result.flipped_fraction,
    }
    for key, value in initial_metrics.as_dict().items():
        row[f"initial_{key}"] = value
    for key, value in final_metrics.as_dict().items():
        row[f"final_{key}"] = value
    return row


def run_experiment(spec: ExperimentSpec) -> ResultTable:
    """Run all replicates of one experiment cell."""
    table = ResultTable()
    seeds = replicate_seeds(spec.seed, spec.n_replicates)
    for index, seed in enumerate(seeds):
        table.add_row(**run_replicate(spec, index, seed))
    return table


def run_sweep(sweep: SweepSpec, progress: Optional[callable] = None) -> ResultTable:
    """Run every cell of a sweep and concatenate the replicate rows.

    ``progress`` (if given) is called with the cell spec after each cell
    completes — benchmarks use it to emit a line per cell.
    """
    table = ResultTable()
    for cell in sweep.cells():
        cell_table = run_experiment(cell)
        table.extend(cell_table.rows)
        if progress is not None:
            progress(cell)
    return table


def aggregate_sweep(
    table: ResultTable,
    group_keys: tuple[str, ...] = ("tau", "horizon", "density"),
    value_keys: tuple[str, ...] = (
        "final_mean_monochromatic_size",
        "final_mean_almost_monochromatic_size",
        "final_local_homogeneity",
        "final_unhappy_fraction",
        "final_largest_cluster_fraction",
        "n_flips",
    ),
) -> ResultTable:
    """Group replicate rows by parameter cell and summarise the key metrics."""
    return table.group_summary(list(group_keys), list(value_keys))
