"""Shared-memory transfer of packed sweep results.

The process-pool sweep ships each cell's rows as one columnar
:func:`~repro.experiments.parallel.pack_rows` batch.  By default that batch is
pickled through the executor's result queue; for wide sweeps the queue becomes
the bottleneck — every numeric column is re-encoded by pickle and copied
through a pipe.  This module gives workers a second transport: the whole chunk
is written once into a :mod:`multiprocessing.shared_memory` segment and only
the segment's *name* travels through the result queue.  The parent attaches,
decodes and unlinks the segment.

The wire format keeps the columnar shape:

* **Numeric columns** (all-``bool``, all-``int`` fitting 64 bits, or
  all-``float``) are written as raw little-endian arrays — no per-value
  encoding at all; the parent rebuilds exact Python scalars via
  ``ndarray.tolist()`` (``float64``/``int64``/``bool`` round-trip bitwise).
* **Object columns** (strings, mixed types) are pickled per column.
* **Non-uniform batches** (the ``pack_rows`` fallback) are pickled whole.

A segment holds one pickled *directory* (per-cell key lists and column
descriptors) followed by the raw data region.  Encoding never changes row
content — :func:`decode_chunk` returns batches that unpack to rows identical
to what the pickle transport delivers — so the transports are interchangeable
and :func:`~repro.experiments.parallel.run_sweep_parallel` treats shared
memory as an optimisation with pickle retained as the fallback.
"""

from __future__ import annotations

import pickle
import struct
from typing import Optional

import numpy as np

from repro.errors import ExperimentError

#: 64-bit signed range check for raw-int64 column encoding.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


class SegmentLedger:
    """Parent-side accounting of worker-produced shared-memory segments.

    Workers create segments; the parent unlinks them — a split that used to
    rely on every error path's discard loop being exhaustive.  The ledger
    makes both failure modes of that split *loud*: a segment name is
    :meth:`track`-ed the moment its payload reaches the parent, marked
    released when :func:`decode_chunk` / :func:`discard_chunk` unlink it,
    and

    * a second release of the same name raises :class:`ExperimentError`
      (double free), and
    * :meth:`pending` exposes every tracked-but-never-released name, so
      tests assert leak-freedom exactly (``pending() == []``) instead of
      hoping ``/dev/shm`` looks clean.

    Names recycled by the OS across sweeps are handled by :meth:`track`
    overwriting the old state.  The ledger is per-process bookkeeping, not
    a lock-protected registry: the sweep parent consumes payloads from one
    thread.
    """

    def __init__(self) -> None:
        self._states: dict[str, str] = {}

    def track(self, name: str) -> None:
        """Register a segment name received from a worker payload."""
        self._states[name] = "pending"

    def check_not_released(self, name: str) -> None:
        """Raise loudly if ``name`` was already unlinked through the ledger."""
        if self._states.get(name) == "released":
            raise ExperimentError(
                f"shared-memory segment {name!r} was already released "
                "(double free)"
            )

    def mark_released(self, name: str) -> None:
        """Record that ``name`` was unlinked (idempotence is an error)."""
        self.check_not_released(name)
        self._states[name] = "released"

    def pending(self) -> list[str]:
        """Tracked segment names that were never released — i.e. leaks."""
        return [
            name for name, state in self._states.items() if state == "pending"
        ]

    def reset(self) -> None:
        """Forget all state (test isolation)."""
        self._states.clear()


_LEDGER = SegmentLedger()


def segment_ledger() -> SegmentLedger:
    """The process-wide :class:`SegmentLedger` instance."""
    return _LEDGER

#: Little-endian dtypes used for raw columns, keyed by a short tag.
_RAW_DTYPES = {
    "bool": np.dtype(np.bool_),
    "int64": np.dtype("<i8"),
    "float64": np.dtype("<f8"),
}


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable on this host.

    Creating a segment can fail even when the module imports (no ``/dev/shm``
    mount, seccomp policies), so availability is probed with a tiny segment.
    The probe has a deliberate side effect the sweep runner relies on: it
    starts this process's multiprocessing resource tracker, so pool workers
    forked afterwards share it and segment bookkeeping stays balanced across
    the worker-creates/parent-unlinks split.
    """
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
    except (ImportError, OSError):
        return False
    probe.close()
    probe.unlink()
    return True


def _raw_column_tag(values: list[object]) -> Optional[str]:
    """The raw-array tag for a column, or ``None`` if it must be pickled.

    ``bool`` is checked before ``int`` (bools are ints in Python); ints must
    fit a signed 64-bit word to survive the array round-trip bitwise.
    """
    if not values:
        return None
    if all(type(value) is bool for value in values):
        return "bool"
    if all(
        type(value) is int and _INT64_MIN <= value <= _INT64_MAX
        for value in values
    ):
        return "int64"
    if all(type(value) is float for value in values):
        return "float64"
    return None


def _encode_batch(packed: dict[str, object], blobs: list[bytes]) -> dict[str, object]:
    """Describe one packed batch, appending its payload bytes to ``blobs``.

    Returns the directory entry for the batch; offsets are assigned later,
    once every blob's size is known, so entries carry blob *positions* here.
    """
    if "columns" not in packed:
        # Empty or non-uniform batch: ship the dict exactly as pickle would.
        blobs.append(pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL))
        return {"kind": "opaque", "blob": len(blobs) - 1}
    columns = []
    for values in packed["columns"]:
        tag = _raw_column_tag(values)
        if tag is not None:
            blobs.append(np.asarray(values, dtype=_RAW_DTYPES[tag]).tobytes())
            columns.append(("raw", tag, len(blobs) - 1))
        else:
            blobs.append(pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL))
            columns.append(("pickle", None, len(blobs) - 1))
    return {
        "kind": "columnar",
        "n": packed["n"],
        "keys": packed["keys"],
        "columns": columns,
    }


def encode_chunk(results: list[tuple[int, dict[str, object]]]) -> tuple[str, int]:
    """Write ``(cell_index, packed_batch)`` pairs into a new shared segment.

    Returns ``(segment_name, segment_size)`` — the only payload that then has
    to travel through the executor's result queue.  The caller (a pool
    worker) closes its mapping; the parent, after decoding, unlinks the
    segment.  Raises ``OSError``/``ImportError`` when shared memory is not
    usable, which the caller treats as a cue to fall back to pickle.
    """
    from multiprocessing import shared_memory

    blobs: list[bytes] = []
    entries = []
    for index, packed in results:
        entry = _encode_batch(packed, blobs)
        entry["index"] = index
        entries.append(entry)
    sizes = [len(blob) for blob in blobs]
    directory = pickle.dumps(
        {"entries": entries, "sizes": sizes}, protocol=pickle.HIGHEST_PROTOCOL
    )
    total = 8 + len(directory) + sum(sizes)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        buffer = segment.buf
        buffer[:8] = struct.pack("<Q", len(directory))
        offset = 8
        buffer[offset : offset + len(directory)] = directory
        offset += len(directory)
        for blob in blobs:
            buffer[offset : offset + len(blob)] = blob
            offset += len(blob)
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    name = segment.name
    segment.close()
    return name, total


def decode_chunk(name: str, size: int) -> list[tuple[int, dict[str, object]]]:
    """Read back what :func:`encode_chunk` wrote, then unlink the segment.

    Returns the ``(cell_index, packed_batch)`` pairs with batches equal to the
    ones the worker packed — raw columns come back as exact Python scalars
    via ``ndarray.tolist()``, pickled payloads verbatim — ready for
    :func:`~repro.experiments.parallel.unpack_rows`.
    """
    from multiprocessing import shared_memory

    _LEDGER.check_not_released(name)
    segment = shared_memory.SharedMemory(name=name)
    try:
        buffer = bytes(segment.buf[:size])
    finally:
        segment.close()
        segment.unlink()
        _LEDGER.mark_released(name)
    (directory_size,) = struct.unpack("<Q", buffer[:8])
    directory = pickle.loads(buffer[8 : 8 + directory_size])
    offsets = []
    position = 8 + directory_size
    for blob_size in directory["sizes"]:
        offsets.append((position, blob_size))
        position += blob_size

    def blob(position_index: int) -> bytes:
        start, length = offsets[position_index]
        return buffer[start : start + length]

    results: list[tuple[int, dict[str, object]]] = []
    for entry in directory["entries"]:
        if entry["kind"] == "opaque":
            results.append((entry["index"], pickle.loads(blob(entry["blob"]))))
            continue
        columns: list[list[object]] = []
        for kind, tag, position_index in entry["columns"]:
            if kind == "raw":
                array = np.frombuffer(
                    blob(position_index), dtype=_RAW_DTYPES[tag], count=entry["n"]
                )
                columns.append(array.tolist())
            else:
                columns.append(pickle.loads(blob(position_index)))
        results.append(
            (
                entry["index"],
                {"n": entry["n"], "keys": entry["keys"], "columns": columns},
            )
        )
    return results


def discard_chunk(name: str) -> None:
    """Unlink a segment without decoding it (error-path cleanup).

    A name the ledger already saw released raises loudly (double free); a
    name that simply does not exist (never created, or cleaned by the OS)
    stays silent, since discarding is best-effort cleanup.
    """
    from multiprocessing import shared_memory

    _LEDGER.check_not_released(name)
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (OSError, FileNotFoundError):
        return
    segment.close()
    segment.unlink()
    _LEDGER.mark_released(name)
