"""Result tables.

Every experiment produces a :class:`ResultTable` — an ordered list of plain
dict rows — which can be grouped, aggregated, exported to CSV and rendered as
a markdown table.  This deliberately avoids any dataframe dependency while
covering what the benchmark harness needs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ExperimentError
from repro.utils.stats import summarize
from repro.viz.series import render_markdown_table, write_csv

Row = dict[str, object]


class ResultTable:
    """An append-only table of dict rows with light aggregation support."""

    def __init__(self, rows: Optional[Iterable[Mapping[str, object]]] = None) -> None:
        self._rows: list[Row] = [dict(row) for row in rows] if rows else []
        #: Structured failure records of quarantined sweep cells
        #: (``on_error="skip"``): dicts carrying ``cell_index``,
        #: ``cell_name``, ``attempts``, ``error`` and ``traceback``.  Empty
        #: for fault-free runs and for non-sweep tables.
        self.failures: list[Row] = []

    # ---------------------------------------------------------------- basics

    def add_row(self, **values: object) -> None:
        """Append a row given as keyword arguments."""
        self._rows.append(dict(values))

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self._rows.append(dict(row))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    @property
    def rows(self) -> list[Row]:
        """The rows as a list of dicts (copy)."""
        return [dict(row) for row in self._rows]

    def columns(self) -> list[str]:
        """Union of column names, in first-appearance order."""
        columns: list[str] = []
        for row in self._rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def column(self, name: str) -> list[object]:
        """Values of one column (missing entries are skipped)."""
        return [row[name] for row in self._rows if name in row]

    def numeric_column(self, name: str) -> np.ndarray:
        """Values of one column as a float array."""
        values = self.column(name)
        if not values:
            raise ExperimentError(f"column {name!r} is empty or missing")
        return np.asarray(values, dtype=float)

    def filter(self, predicate: Callable[[Row], bool]) -> "ResultTable":
        """New table containing only the rows satisfying ``predicate``."""
        return ResultTable(row for row in self._rows if predicate(row))

    # ----------------------------------------------------------- aggregation

    def numeric_columns(self) -> list[str]:
        """Columns whose present values are all numeric, in column order.

        Booleans count as numeric (they aggregate as 0/1 rates — the
        ``terminated`` column's mean is the termination rate); strings and
        other objects do not.  A column missing from some rows still
        qualifies as long as every value it *does* have is numeric.
        """
        names = []
        for name in self.columns():
            values = self.column(name)
            if values and all(
                isinstance(value, (bool, int, float)) for value in values
            ):
                names.append(name)
        return names

    def numeric_summary(self) -> dict[str, dict[str, float]]:
        """Per-column summary stats over every numeric column of the table.

        Returns ``{column: {count, mean, std, min, max, ci_low, ci_high}}``
        via :func:`~repro.utils.stats.summarize` — the aggregation the sweep
        artifact store persists per cell in ``summary.json``
        (:func:`repro.experiments.checkpoint.summarize_store`).
        """
        if not self._rows:
            raise ExperimentError("cannot aggregate an empty table")
        return {
            name: summarize(
                [float(value) for value in self.column(name)]
            ).as_dict()
            for name in self.numeric_columns()
        }

    def group_summary(
        self, group_keys: Sequence[str], value_keys: Sequence[str]
    ) -> "ResultTable":
        """Mean / std / CI of ``value_keys`` within each group of ``group_keys``.

        The output has one row per group with columns
        ``<value>_mean``, ``<value>_std``, ``<value>_ci_low``,
        ``<value>_ci_high`` and ``n`` alongside the group keys.
        """
        if not self._rows:
            raise ExperimentError("cannot aggregate an empty table")
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in self._rows:
            key = tuple(row.get(k) for k in group_keys)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        summary = ResultTable()
        for key in order:
            members = groups[key]
            out: Row = {k: v for k, v in zip(group_keys, key)}
            out["n"] = len(members)
            for value_key in value_keys:
                values = [
                    float(row[value_key]) for row in members if value_key in row
                ]
                if not values:
                    continue
                stats = summarize(values)
                out[f"{value_key}_mean"] = stats.mean
                out[f"{value_key}_std"] = stats.std
                out[f"{value_key}_ci_low"] = stats.ci_low
                out[f"{value_key}_ci_high"] = stats.ci_high
            summary._rows.append(out)
        return summary

    # ----------------------------------------------------------------- output

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to ``path`` as CSV."""
        return write_csv(self._rows, path)

    def to_markdown(self, float_format: str = ".4g") -> str:
        """Render the table as a markdown string."""
        return render_markdown_table(self._rows, float_format=float_format)
