"""Experiment specifications.

An :class:`ExperimentSpec` names one cell of an experiment — a model
configuration, a replicate count and a master seed — and a :class:`SweepSpec`
expands a base configuration along the axes the paper sweeps (intolerance,
horizon, density).  Keeping these as plain frozen dataclasses makes sweeps
serialisable and the benchmark parameters explicit.

Both specs carry a :class:`~repro.core.variants.VariantSpec` selecting the
happiness rule (base model, two-sided comfort band, per-type intolerances);
the runners route it to either execution engine unchanged, and the process
pool pickles it with the rest of the frozen spec.  Because only the base
model carries the paper's Lyapunov termination guarantee, specs using any
other variant must set a ``max_flips`` or ``max_steps`` budget —
construction fails otherwise rather than risking a non-terminating sweep
cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.config import ModelConfig
from repro.core.variants import BASE_VARIANT, VariantSpec
from repro.errors import ExperimentError
from repro.types import VariantKind


def _require_budget_for_variant(
    variant: VariantSpec, max_flips: Optional[int], max_steps: Optional[int]
) -> None:
    """Reject budget-less specs for rules without a termination guarantee.

    The paper's Lyapunov argument covers the base model only; the two-sided
    band breaks it outright and the asymmetric rule's status is open, so any
    non-base variant must bound its replicates by flips or steps rather than
    risk a sweep cell that never halts.
    """
    if not variant.guarantees_termination and max_flips is None and max_steps is None:
        raise ExperimentError(
            f"the {variant.kind.value} variant has no termination guarantee: "
            "set max_flips or max_steps on the spec"
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A single experiment cell: one configuration, several replicates."""

    name: str
    config: ModelConfig
    n_replicates: int = 3
    seed: int = 0
    max_flips: Optional[int] = None
    #: Cap on scheduler steps per replicate (flips plus no-op selections).
    #: Mandatory (or ``max_flips``) for every non-base variant, none of which
    #: carries the paper's Lyapunov termination guarantee.
    max_steps: Optional[int] = None
    #: Cap on the region-scan radius used by the metrics (None = grid limit).
    max_region_radius: Optional[int] = None
    #: Record per-replicate trajectories and add ``traj_*`` summary columns.
    record_trajectory: bool = False
    #: Sampling cadence for trajectory recording (flips for the scalar
    #: engine, lockstep rounds for the ensemble engine).
    record_every: int = 100
    #: Happiness rule applied by every replicate of this cell.
    variant: VariantSpec = BASE_VARIANT
    #: Flip-loop backend request for ensemble execution (``None`` = auto).
    #: Deliberately NOT part of :func:`spec_fingerprint`: every backend is
    #: pinned bitwise identical, so rows are backend-invariant and recorded
    #: cells stay valid when the execution backend changes.  Provenance is
    #: recorded separately (checkpoint manifest / per-record field).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("experiment name must be non-empty")
        if self.n_replicates <= 0:
            raise ExperimentError(
                f"n_replicates must be positive, got {self.n_replicates}"
            )
        if self.record_every <= 0:
            raise ExperimentError(
                f"record_every must be positive, got {self.record_every}"
            )
        if not isinstance(self.variant, VariantSpec):
            raise ExperimentError(
                f"variant must be a VariantSpec, got {self.variant!r}"
            )
        _require_budget_for_variant(self.variant, self.max_flips, self.max_steps)


@dataclass(frozen=True)
class SweepSpec:
    """A sweep of :class:`ExperimentSpec` cells along tau / horizon / density."""

    name: str
    base_config: ModelConfig
    taus: Sequence[float] = field(default_factory=tuple)
    horizons: Sequence[int] = field(default_factory=tuple)
    densities: Sequence[float] = field(default_factory=tuple)
    n_replicates: int = 3
    seed: int = 0
    max_flips: Optional[int] = None
    max_steps: Optional[int] = None
    max_region_radius: Optional[int] = None
    record_trajectory: bool = False
    record_every: int = 100
    #: Happiness rule applied by every cell of the sweep.
    variant: VariantSpec = BASE_VARIANT
    #: Flip-loop backend request propagated to every cell (``None`` = auto);
    #: excluded from cell fingerprints, like :attr:`ExperimentSpec.backend`.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("sweep name must be non-empty")
        if not (self.taus or self.horizons or self.densities):
            raise ExperimentError("a sweep must vary at least one parameter")
        if not isinstance(self.variant, VariantSpec):
            raise ExperimentError(
                f"variant must be a VariantSpec, got {self.variant!r}"
            )
        _require_budget_for_variant(self.variant, self.max_flips, self.max_steps)

    def cells(self) -> Iterator[ExperimentSpec]:
        """Yield one :class:`ExperimentSpec` per parameter combination.

        Axes that are left empty keep the base configuration's value.  The
        per-cell seed is derived deterministically from the sweep seed and the
        cell index so that cells are independent yet reproducible.
        """
        taus = list(self.taus) or [self.base_config.tau]
        horizons = list(self.horizons) or [self.base_config.horizon]
        densities = list(self.densities) or [self.base_config.density]
        index = 0
        for horizon in horizons:
            for tau in taus:
                for density in densities:
                    config = (
                        self.base_config.with_horizon(horizon)
                        .with_tau(tau)
                        .with_density(density)
                    )
                    yield ExperimentSpec(
                        name=f"{self.name}[w={horizon},tau={tau:.4f},p={density:.3f}]",
                        config=config,
                        n_replicates=self.n_replicates,
                        seed=self.seed + 7919 * index,
                        max_flips=self.max_flips,
                        max_steps=self.max_steps,
                        max_region_radius=self.max_region_radius,
                        record_trajectory=self.record_trajectory,
                        record_every=self.record_every,
                        variant=self.variant,
                        backend=self.backend,
                    )
                    index += 1

    def n_cells(self) -> int:
        """Number of cells the sweep expands to."""
        taus = len(self.taus) or 1
        horizons = len(self.horizons) or 1
        densities = len(self.densities) or 1
        return taus * horizons * densities


def spec_fingerprint(spec: ExperimentSpec) -> dict[str, object]:
    """A JSON-friendly dict capturing everything that determines a cell's rows.

    The fingerprint covers the model configuration, replicate count, seeds,
    budgets, measurement knobs and the variant rule — and the cell *name*,
    because the name is itself a row column (``experiment``), so two cells
    must only be treated as interchangeable when their rows would be
    identical byte for byte.  Wall-clock timings are the only row content not
    pinned by the fingerprint.  The ``backend`` field is deliberately
    excluded: backends are pinned bitwise identical, so rows are
    backend-invariant and recorded cells survive backend changes.
    """
    # Imported here: ``io`` depends on results/config only, so the import is
    # acyclic, but keeping it out of module scope keeps spec import-light.
    from repro.experiments.io import config_to_dict

    return {
        "name": spec.name,
        "config": config_to_dict(spec.config),
        "n_replicates": spec.n_replicates,
        "seed": spec.seed,
        "max_flips": spec.max_flips,
        "max_steps": spec.max_steps,
        "max_region_radius": spec.max_region_radius,
        "record_trajectory": spec.record_trajectory,
        "record_every": spec.record_every,
        "variant": {
            "kind": spec.variant.kind.value,
            "tau_high": spec.variant.tau_high,
            "tau_minus": spec.variant.tau_minus,
        },
    }


def spec_hash(spec: ExperimentSpec) -> str:
    """Stable content hash of one experiment cell (hex SHA-256).

    Checkpointed sweeps key completed cells by this hash
    (:mod:`repro.experiments.checkpoint`): a resumed run reuses a recorded
    cell only when the hash matches, so edits to any row-determining
    parameter — tau grid, seeds, budgets, variant — invalidate stale records
    automatically instead of silently mixing tables.
    """
    payload = json.dumps(
        spec_fingerprint(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
