"""Experiment specifications.

An :class:`ExperimentSpec` names one cell of an experiment — a model
configuration, a replicate count and a master seed — and a :class:`SweepSpec`
expands a base configuration along the axes the paper sweeps (intolerance,
horizon, density).  Keeping these as plain frozen dataclasses makes sweeps
serialisable and the benchmark parameters explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.config import ModelConfig
from repro.errors import ExperimentError


@dataclass(frozen=True)
class ExperimentSpec:
    """A single experiment cell: one configuration, several replicates."""

    name: str
    config: ModelConfig
    n_replicates: int = 3
    seed: int = 0
    max_flips: Optional[int] = None
    #: Cap on the region-scan radius used by the metrics (None = grid limit).
    max_region_radius: Optional[int] = None
    #: Record per-replicate trajectories and add ``traj_*`` summary columns.
    record_trajectory: bool = False
    #: Sampling cadence for trajectory recording (flips for the scalar
    #: engine, lockstep rounds for the ensemble engine).
    record_every: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("experiment name must be non-empty")
        if self.n_replicates <= 0:
            raise ExperimentError(
                f"n_replicates must be positive, got {self.n_replicates}"
            )
        if self.record_every <= 0:
            raise ExperimentError(
                f"record_every must be positive, got {self.record_every}"
            )


@dataclass(frozen=True)
class SweepSpec:
    """A sweep of :class:`ExperimentSpec` cells along tau / horizon / density."""

    name: str
    base_config: ModelConfig
    taus: Sequence[float] = field(default_factory=tuple)
    horizons: Sequence[int] = field(default_factory=tuple)
    densities: Sequence[float] = field(default_factory=tuple)
    n_replicates: int = 3
    seed: int = 0
    max_flips: Optional[int] = None
    max_region_radius: Optional[int] = None
    record_trajectory: bool = False
    record_every: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("sweep name must be non-empty")
        if not (self.taus or self.horizons or self.densities):
            raise ExperimentError("a sweep must vary at least one parameter")

    def cells(self) -> Iterator[ExperimentSpec]:
        """Yield one :class:`ExperimentSpec` per parameter combination.

        Axes that are left empty keep the base configuration's value.  The
        per-cell seed is derived deterministically from the sweep seed and the
        cell index so that cells are independent yet reproducible.
        """
        taus = list(self.taus) or [self.base_config.tau]
        horizons = list(self.horizons) or [self.base_config.horizon]
        densities = list(self.densities) or [self.base_config.density]
        index = 0
        for horizon in horizons:
            for tau in taus:
                for density in densities:
                    config = (
                        self.base_config.with_horizon(horizon)
                        .with_tau(tau)
                        .with_density(density)
                    )
                    yield ExperimentSpec(
                        name=f"{self.name}[w={horizon},tau={tau:.4f},p={density:.3f}]",
                        config=config,
                        n_replicates=self.n_replicates,
                        seed=self.seed + 7919 * index,
                        max_flips=self.max_flips,
                        max_region_radius=self.max_region_radius,
                        record_trajectory=self.record_trajectory,
                        record_every=self.record_every,
                    )
                    index += 1

    def n_cells(self) -> int:
        """Number of cells the sweep expands to."""
        taus = len(self.taus) or 1
        horizons = len(self.horizons) or 1
        densities = len(self.densities) or 1
        return taus * horizons * densities
