"""Reproduction experiments for the paper's figures and theorems (E1-E8).

Each function regenerates one evaluation artefact of the paper as a
:class:`~repro.experiments.results.ResultTable` (plus ancillary data where it
makes sense, e.g. the snapshot arrays of Figure 1).  The benchmark modules
under ``benchmarks/`` call these with small default parameters and print the
resulting rows; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.segregation import segregation_metrics
from repro.core.config import ModelConfig
from repro.core.simulation import Simulation, Snapshot
from repro.experiments.results import ResultTable
from repro.experiments.runner import aggregate_sweep, run_sweep
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import (
    default_tau_grid,
    figure1_config,
    grid_side_for_horizon,
    scaling_horizons,
    theorem1_taus,
    theorem2_taus,
)
from repro.rng import replicate_seeds
from repro.theory.exponents import lower_exponent, upper_exponent
from repro.theory.intervals import classify_regime
from repro.theory.thresholds import tau1, tau2, trigger_epsilon
from repro.utils.stats import growth_rate_fit


# ---------------------------------------------------------------------------
# E1 — Figure 1: self-segregation snapshots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Result:
    """Snapshots and per-snapshot metrics of the Figure 1 run."""

    config: ModelConfig
    snapshots: tuple[Snapshot, ...]
    metrics: ResultTable
    terminated: bool
    total_flips: int


def figure1_snapshots(
    config: Optional[ModelConfig] = None,
    seed: int = 2017,
    n_intermediate: int = 2,
    max_flips: Optional[int] = None,
) -> Figure1Result:
    """Reproduce Figure 1: initial, intermediate and final configurations.

    The run is executed twice with the same seed: a first pass measures the
    total number of flips to termination, a second pass (identical trajectory)
    collects snapshots at evenly spaced flip counts — initial, two
    intermediate panels and the terminated configuration, exactly as in the
    paper's four panels.
    """
    if config is None:
        config = figure1_config()
    probe = Simulation(config, seed=seed)
    probe_result = probe.run(max_flips=max_flips)
    total_flips = probe_result.n_flips
    fractions = np.linspace(0.0, 1.0, n_intermediate + 2)
    snapshot_counts = sorted({int(round(fraction * total_flips)) for fraction in fractions})

    simulation = Simulation(config, seed=seed)
    result = simulation.run(max_flips=max_flips, snapshot_flip_counts=snapshot_counts)

    metrics = ResultTable()
    max_radius = min(4 * config.horizon, (min(config.shape) - 1) // 2)
    for index, snapshot in enumerate(result.snapshots):
        summary = segregation_metrics(
            snapshot.spins, config, max_region_radius=max_radius
        )
        row = {
            "panel": index,
            "time": snapshot.time,
            "n_flips": snapshot.n_flips,
        }
        row.update(summary.as_dict())
        metrics.add_row(**row)
    return Figure1Result(
        config=config,
        snapshots=result.snapshots,
        metrics=metrics,
        terminated=result.terminated,
        total_flips=result.n_flips,
    )


# ---------------------------------------------------------------------------
# E2 — Figure 2: behaviour across the intolerance axis
# ---------------------------------------------------------------------------


def figure2_interval_sweep(
    horizon: int = 3,
    taus: Optional[Sequence[float]] = None,
    n_replicates: int = 3,
    seed: int = 11,
    side: Optional[int] = None,
) -> ResultTable:
    """Empirical sweep over the intolerance axis with the predicted regime attached.

    For every ``tau`` the table reports the mean final monochromatic /
    almost-monochromatic region size, the flip activity and the regime
    predicted by the paper (Figure 2): static configurations should barely
    flip, while both exponential regimes should produce large regions.
    """
    if taus is None:
        taus = default_tau_grid()
    if side is None:
        side = grid_side_for_horizon(horizon)
    base = ModelConfig.square(side=side, horizon=horizon, tau=0.5)
    sweep = SweepSpec(
        name="figure2",
        base_config=base,
        taus=list(taus),
        n_replicates=n_replicates,
        seed=seed,
    )
    rows = run_sweep(sweep)
    aggregated = aggregate_sweep(
        rows,
        group_keys=("tau",),
        value_keys=(
            "final_mean_monochromatic_size",
            "final_mean_almost_monochromatic_size",
            "final_local_homogeneity",
            "flipped_fraction",
            "n_flips",
        ),
    )
    table = ResultTable()
    for row in aggregated:
        tau = float(row["tau"])
        row = dict(row)
        row["predicted_regime"] = classify_regime(tau).value
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E3 / E4 — Figures 3 and 6: exponent multipliers and trigger radius
# ---------------------------------------------------------------------------


def figure3_exponent_table(
    taus: Optional[Sequence[float]] = None,
    neighborhood_agents: Optional[int] = None,
) -> ResultTable:
    """Numerical reproduction of Figure 3: ``a(tau)`` and ``b(tau)``.

    The default grid covers the theorem range on both sides of 1/2; each row
    also carries the trigger infimum ``f(tau)`` and the predicted regime so
    the table doubles as a machine-readable Figure 2 + Figure 3 combination.
    """
    if taus is None:
        low = tau2() + 5e-3
        taus = list(np.round(np.linspace(low, 0.49, 15), 4)) + list(
            np.round(np.linspace(0.51, 1.0 - low, 15), 4)
        )
    table = ResultTable()
    for tau in taus:
        tau = float(tau)
        table.add_row(
            tau=tau,
            a=lower_exponent(tau, neighborhood_agents),
            b=upper_exponent(tau, neighborhood_agents),
            f_tau=trigger_epsilon(tau),
            regime=classify_regime(tau).value,
        )
    return table


def figure6_trigger_table(
    taus: Optional[Sequence[float]] = None,
) -> ResultTable:
    """Numerical reproduction of Figure 6: the trigger infimum ``f(tau)``."""
    if taus is None:
        taus = np.round(np.linspace(tau2() + 1e-3, 0.4999, 30), 4)
    table = ResultTable()
    for tau in taus:
        tau = float(tau)
        table.add_row(tau=tau, f_tau=trigger_epsilon(tau))
    return table


# ---------------------------------------------------------------------------
# E5 / E6 — Theorem 1 and Theorem 2 scaling in the neighbourhood size
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalingResult:
    """Measurements and growth-rate fits of a Theorem 1/2 scaling experiment."""

    measurements: ResultTable
    fits: ResultTable


def _scaling_experiment(
    taus: Sequence[float],
    horizons: Sequence[int],
    size_column: str,
    n_replicates: int,
    seed: int,
    multiples: int,
) -> ScalingResult:
    measurements = ResultTable()
    fits = ResultTable()
    for tau in taus:
        sizes_by_n: list[tuple[int, float]] = []
        for horizon in horizons:
            side = grid_side_for_horizon(horizon, multiples=multiples)
            base = ModelConfig.square(side=side, horizon=horizon, tau=tau)
            sweep = SweepSpec(
                name=f"scaling[tau={tau}]",
                base_config=base,
                horizons=[horizon],
                n_replicates=n_replicates,
                seed=seed,
            )
            rows = run_sweep(sweep)
            mean_size = float(np.mean(rows.numeric_column(size_column)))
            n_agents = base.neighborhood_agents
            sizes_by_n.append((n_agents, mean_size))
            measurements.add_row(
                tau=tau,
                horizon=horizon,
                neighborhood_agents=n_agents,
                mean_region_size=mean_size,
                log2_mean_region_size=float(np.log2(mean_size)),
            )
        ns = [n for n, _ in sizes_by_n]
        sizes = [s for _, s in sizes_by_n]
        if len(ns) >= 2:
            fit = growth_rate_fit(ns, sizes)
            measured_rate, r_squared, n_points = fit.rate, fit.r_squared, fit.n_points
        else:
            # A single horizon cannot support a growth-rate fit; report the
            # measurement only.
            measured_rate, r_squared, n_points = float("nan"), float("nan"), len(ns)
        fits.add_row(
            tau=tau,
            measured_rate=measured_rate,
            r_squared=r_squared,
            theory_lower_rate=lower_exponent(tau),
            theory_upper_rate=upper_exponent(tau),
            n_points=n_points,
        )
    return ScalingResult(measurements=measurements, fits=fits)


def theorem1_scaling(
    taus: Optional[Sequence[float]] = None,
    horizons: Optional[Sequence[int]] = None,
    n_replicates: int = 3,
    seed: int = 101,
    multiples: int = 10,
) -> ScalingResult:
    """E5: growth of the mean monochromatic region size with ``N`` (Theorem 1).

    For each intolerance in the Theorem 1 range the mean final monochromatic
    region size is measured across a ladder of horizons and fitted as
    ``log2(size) ~ rate * N``; the theorem predicts a positive rate bracketed
    (in order of magnitude) by ``a(tau)`` and ``b(tau)``.
    """
    if taus is None:
        taus = theorem1_taus()
    if horizons is None:
        horizons = scaling_horizons()
    return _scaling_experiment(
        taus, horizons, "final_mean_monochromatic_size", n_replicates, seed, multiples
    )


def theorem2_scaling(
    taus: Optional[Sequence[float]] = None,
    horizons: Optional[Sequence[int]] = None,
    n_replicates: int = 3,
    seed: int = 202,
    multiples: int = 10,
) -> ScalingResult:
    """E6: growth of the mean almost-monochromatic region size with ``N`` (Theorem 2)."""
    if taus is None:
        taus = theorem2_taus()
    if horizons is None:
        horizons = scaling_horizons()
    return _scaling_experiment(
        taus,
        horizons,
        "final_mean_almost_monochromatic_size",
        n_replicates,
        seed,
        multiples,
    )


# ---------------------------------------------------------------------------
# E7 — monotonicity in the distance from 1/2
# ---------------------------------------------------------------------------


def monotonicity_experiment(
    horizon: int = 3,
    taus: Optional[Sequence[float]] = None,
    n_replicates: int = 3,
    seed: int = 303,
) -> ResultTable:
    """E7: farther from 1/2 (within the theorem range) means larger regions.

    The paper's counter-intuitive observation: more tolerant agents (below
    1/2) produce *larger* segregated regions.  The table reports the mean
    final region size per ``tau`` ordered by distance from 1/2, plus the
    theoretical exponent ``a(tau)`` which increases with that distance.
    """
    if taus is None:
        t1 = tau1()
        taus = [round(t1 + 0.005, 4), 0.45, 0.47, 0.49]
    side = grid_side_for_horizon(horizon)
    base = ModelConfig.square(side=side, horizon=horizon, tau=0.5)
    sweep = SweepSpec(
        name="monotonicity",
        base_config=base,
        taus=list(taus),
        n_replicates=n_replicates,
        seed=seed,
    )
    rows = run_sweep(sweep)
    aggregated = aggregate_sweep(
        rows,
        group_keys=("tau",),
        value_keys=("final_mean_monochromatic_size", "final_local_homogeneity"),
    )
    table = ResultTable()
    for row in aggregated:
        tau = float(row["tau"])
        row = dict(row)
        row["distance_from_half"] = abs(tau - 0.5)
        row["theory_lower_exponent"] = lower_exponent(tau)
        table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# E8 — symmetry around tau = 1/2
# ---------------------------------------------------------------------------


def symmetry_experiment(
    horizon: int = 3,
    taus_below_half: Optional[Sequence[float]] = None,
    n_replicates: int = 3,
    seed: int = 404,
) -> ResultTable:
    """E8: behaviour at ``tau`` mirrors behaviour at ``1 - tau`` (Section IV.C).

    For each ``tau < 1/2`` the experiment runs the model at ``tau`` and at
    ``1 - tau`` on independently seeded grids and reports both mean region
    sizes side by side together with their ratio, which should hover around 1.
    """
    if taus_below_half is None:
        taus_below_half = [0.40, 0.44, 0.47]
    side = grid_side_for_horizon(horizon)
    table = ResultTable()
    for tau in taus_below_half:
        paired_sizes = {}
        for label, value in (("below", tau), ("above", 1.0 - tau)):
            base = ModelConfig.square(side=side, horizon=horizon, tau=value)
            sweep = SweepSpec(
                name=f"symmetry[{label}]",
                base_config=base,
                taus=[value],
                n_replicates=n_replicates,
                seed=seed,
            )
            rows = run_sweep(sweep)
            paired_sizes[label] = float(
                np.mean(rows.numeric_column("final_mean_monochromatic_size"))
            )
        ratio = (
            paired_sizes["above"] / paired_sizes["below"]
            if paired_sizes["below"] > 0
            else float("inf")
        )
        table.add_row(
            tau=tau,
            mirrored_tau=1.0 - tau,
            mean_size_below=paired_sizes["below"],
            mean_size_above=paired_sizes["above"],
            ratio_above_over_below=ratio,
        )
    return table
