"""Workload construction for the benchmark suite.

The paper's experiments are parameterised by the intolerance ``tau``, the
horizon ``w`` and the initial density ``p``.  These helpers pick sensible
finite-size companions for those parameters — in particular a grid side large
enough to hold several independent segregated regions for a given horizon —
and honour the ``REPRO_FULL_SCALE`` environment variable that switches the
Figure 1 benchmark to the paper's original 1000x1000 grid.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.theory.thresholds import tau1, tau2


def full_scale_requested() -> bool:
    """Whether ``REPRO_FULL_SCALE=1`` is set in the environment."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


def bench_quick_mode() -> bool:
    """Whether ``REPRO_BENCH_QUICK=1`` asks benchmarks to shrink their runs.

    Quick mode keeps benchmark grids and assertions intact but caps run
    lengths (flip budgets, sweep sizes) so time-hungry benchmarks such as
    ``bench_ensemble_throughput.py`` finish in well under 30 seconds.
    """
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("", "0", "false", "False")


def grid_side_for_horizon(horizon: int, multiples: int = 12, minimum: int = 24) -> int:
    """A grid side proportional to the horizon.

    ``multiples`` windows of side ``2w+1`` fit along each axis, which leaves
    room for several independently seeded segregated regions without making
    small-horizon sweeps needlessly slow.
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be positive, got {horizon}")
    return max(minimum, multiples * (2 * horizon + 1))


def sweep_config(
    horizon: int,
    tau: float,
    density: float = 0.5,
    side: Optional[int] = None,
    multiples: int = 12,
) -> ModelConfig:
    """A square configuration sized for sweep experiments."""
    if side is None:
        side = grid_side_for_horizon(horizon, multiples=multiples)
    return ModelConfig.square(side=side, horizon=horizon, tau=tau, density=density)


def figure1_config() -> ModelConfig:
    """The Figure 1 configuration (scaled down unless full scale is requested).

    The paper uses a 1000x1000 grid with ``w = 10`` (``N = 441``) and
    ``tau = 0.42``.  The scaled default keeps ``tau`` and the ratio of grid
    side to horizon (40 neighbourhood widths per side) but shrinks both to
    ``side = 160``, ``w = 4`` so the run finishes in a couple of seconds; the
    horizon must shrink along with the grid because at ``N = 441`` the initial
    unhappy density (~3e-4) is too low for any cascade to ignite on a small
    grid.  ``REPRO_FULL_SCALE=1`` switches to the paper's exact parameters.
    """
    if full_scale_requested():
        return ModelConfig.square(side=1000, horizon=10, tau=0.42)
    return ModelConfig.square(side=160, horizon=4, tau=0.42)


def default_tau_grid(n_points: int = 11) -> list[float]:
    """An intolerance grid spanning all Figure 2 regimes on both sides of 1/2."""
    if n_points < 5:
        raise ExperimentError(f"n_points must be at least 5, got {n_points}")
    t1 = tau1()
    t2 = tau2()
    anchors = [0.30, t2 + 0.01, (t2 + t1) / 2.0, t1 + 0.01, 0.46, 0.48]
    mirrored = [1.0 - tau for tau in reversed(anchors)]
    taus = anchors + mirrored
    if n_points < len(taus):
        step = len(taus) / n_points
        taus = [taus[int(i * step)] for i in range(n_points)]
    return [round(tau, 4) for tau in taus]


def theorem1_taus() -> list[float]:
    """Intolerances inside the Theorem 1 (monochromatic) interval, below 1/2."""
    return [0.44, 0.46, 0.48]


def theorem2_taus() -> list[float]:
    """Intolerances inside the Theorem 2 (almost monochromatic) interval, below 1/2."""
    return [0.36, 0.40, 0.43]


def scaling_horizons(max_horizon: int = 4) -> list[int]:
    """Horizon ladder for the exponential-in-N scaling experiments."""
    if max_horizon < 2:
        raise ExperimentError(f"max_horizon must be at least 2, got {max_horizon}")
    return list(range(1, max_horizon + 1))


def density_ladder(values: Optional[Sequence[float]] = None) -> list[float]:
    """Initial densities for the complete-segregation contrast experiment (E13)."""
    if values is None:
        values = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
    ladder = [float(v) for v in values]
    if any(not 0.0 < v < 1.0 for v in ladder):
        raise ExperimentError("densities must lie strictly between 0 and 1")
    return ladder
