"""Deterministic fault injection for the distributed sweep path.

The fault-tolerance layer of :func:`~repro.experiments.parallel.run_sweep_parallel`
(retry/backoff, hang detection, pool respawn, transport demotion, store
repair) is only trustworthy if every failure mode it guards against can be
reproduced on demand.  This module provides that reproducibility: a
:class:`FaultPlan` is a frozen, picklable schedule of faults keyed by *cell
index* and *attempt number*, threaded into the worker entry points behind a
zero-overhead hook (``if fault_plan is not None: ...`` — the production path
pays one ``None`` check per cell).

Supported fault kinds:

``crash``
    Raise :class:`InjectedFault` (a ``RuntimeError``) inside the worker just
    before the cell runs — the generic "worker raised" failure.
``memory-error``
    Raise :class:`MemoryError` instead, exercising the non-library exception
    path (allocation failures are the common real-world cousin).
``hang``
    Sleep ``hang_seconds`` inside the worker before running the cell,
    exercising the supervisor's deadline detection and pool kill/respawn.
``kill``
    ``SIGKILL`` the executing process.  In a pool worker this produces a
    ``BrokenProcessPool`` in the parent; on the inline (``workers=1``) path
    it kills the whole run — the substrate for the SIGKILL/resume matrix.
``corrupt-shm``
    After the worker encodes its chunk into a shared-memory segment,
    overwrite the segment's directory bytes so the parent's decode fails,
    exercising transport retry and the shm→pickle demotion ladder.
``torn-record``
    When the parent flushes the cell to the checkpoint, write only a prefix
    of the record line (no terminating newline) — the on-disk footprint of a
    kill mid-``record`` — and optionally ``SIGKILL`` the process right after,
    exercising store verify/repair and torn-tail resume.

Attempt keying makes every fault finite and deterministic: a fault with
``attempts=N`` fires on a cell's first ``N`` executions (attempt numbers
``0 .. N-1``) and never again, so a retried sweep converges to exactly the
fault-free rows.  The supervisor passes each cell's execution count with the
chunk, so the keying survives process boundaries and pool respawns.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import ConfigurationError

#: Every fault kind a :class:`FaultSpec` may carry.
FAULT_KINDS = (
    "crash",
    "memory-error",
    "hang",
    "kill",
    "corrupt-shm",
    "torn-record",
)

#: Fault kinds fired inside :func:`~repro.experiments.parallel._run_cell`.
CELL_FAULT_KINDS = ("crash", "memory-error", "hang", "kill")


class InjectedFault(RuntimeError):
    """The exception raised by ``crash`` faults (and nothing else).

    A dedicated type lets tests assert that a surfaced failure is the
    injected one and not an accidental bug in the machinery under test.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One programmed fault: a kind, a target cell, and an attempt window.

    ``attempts`` is the number of *executions* of the cell the fault fires
    on: with ``attempts=2`` the cell's first and second runs fault and the
    third succeeds.  ``torn-record`` faults ignore the window (the record
    hook fires at most once per run) and instead carry ``keep_bytes`` — how
    much of the record line lands on disk — and ``kill`` — whether to
    SIGKILL the process right after the torn write, as a real kill would.
    """

    kind: str
    cell_index: int
    attempts: int = 1
    hang_seconds: float = 30.0
    keep_bytes: int = 40
    kill: bool = False

    def __post_init__(self) -> None:
        """Validate the kind and the window so plans fail at build time."""
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.cell_index < 0:
            raise ConfigurationError(
                f"cell_index must be non-negative, got {self.cell_index}"
            )
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be at least 1, got {self.attempts}"
            )
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )
        if self.keep_bytes < 0:
            raise ConfigurationError(
                f"keep_bytes must be non-negative, got {self.keep_bytes}"
            )

    def fires(self, cell_index: int, attempt: int) -> bool:
        """Whether this fault triggers for ``cell_index`` on ``attempt``."""
        return cell_index == self.cell_index and attempt < self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable schedule of injected faults.

    Build plans fluently — each builder returns a new plan with the fault
    appended, so a plan literal reads like the scenario it encodes::

        plan = FaultPlan().crash(2).hang(5, seconds=10.0).corrupt_shm(1)

    The plan travels to workers by pickle alongside the chunk; all firing
    decisions are pure functions of ``(cell_index, attempt)``, so a plan is
    exactly as deterministic as the sweep seeds themselves.
    """

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------- builders

    def _with(self, spec: FaultSpec) -> "FaultPlan":
        """A new plan with ``spec`` appended."""
        return replace(self, faults=self.faults + (spec,))

    def crash(self, cell_index: int, attempts: int = 1) -> "FaultPlan":
        """Raise :class:`InjectedFault` on the cell's first ``attempts`` runs."""
        return self._with(FaultSpec("crash", cell_index, attempts=attempts))

    def memory_error(self, cell_index: int, attempts: int = 1) -> "FaultPlan":
        """Raise :class:`MemoryError` on the cell's first ``attempts`` runs."""
        return self._with(FaultSpec("memory-error", cell_index, attempts=attempts))

    def hang(
        self, cell_index: int, seconds: float = 30.0, attempts: int = 1
    ) -> "FaultPlan":
        """Sleep ``seconds`` in the worker on the cell's first ``attempts`` runs."""
        return self._with(
            FaultSpec("hang", cell_index, attempts=attempts, hang_seconds=seconds)
        )

    def kill(self, cell_index: int, attempts: int = 1) -> "FaultPlan":
        """SIGKILL the executing process on the cell's first ``attempts`` runs."""
        return self._with(FaultSpec("kill", cell_index, attempts=attempts))

    def corrupt_shm(self, cell_index: int, attempts: int = 1) -> "FaultPlan":
        """Corrupt the shm segment of chunks carrying the cell's first runs."""
        return self._with(FaultSpec("corrupt-shm", cell_index, attempts=attempts))

    def torn_record(
        self, cell_index: int, keep_bytes: int = 40, kill: bool = False
    ) -> "FaultPlan":
        """Tear the cell's checkpoint record line (optionally SIGKILL after)."""
        return self._with(
            FaultSpec(
                "torn-record", cell_index, keep_bytes=keep_bytes, kill=kill
            )
        )

    # ----------------------------------------------------------- hook sites

    def fire_in_cell(self, cell_index: int, attempt: int) -> None:
        """The worker-side hook, called by ``_run_cell`` before the cell runs.

        Fires the first matching cell fault in declaration order: ``hang``
        sleeps (then falls through to any further match, as a real stall
        followed by a crash would), ``crash``/``memory-error`` raise, and
        ``kill`` terminates the process with ``SIGKILL``.
        """
        for spec in self.faults:
            if spec.kind not in CELL_FAULT_KINDS:
                continue
            if not spec.fires(cell_index, attempt):
                continue
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
                continue
            if spec.kind == "crash":
                raise InjectedFault(
                    f"injected crash: cell {cell_index}, attempt {attempt}"
                )
            if spec.kind == "memory-error":
                raise MemoryError(
                    f"injected memory error: cell {cell_index}, attempt {attempt}"
                )
            _kill_self()

    def corrupts_chunk(
        self, cell_indices: Sequence[int], attempts: Sequence[int]
    ) -> bool:
        """Whether a chunk's shm segment should be corrupted after encoding."""
        return any(
            spec.kind == "corrupt-shm" and spec.fires(index, attempt)
            for spec in self.faults
            for index, attempt in zip(cell_indices, attempts)
        )

    def torn_record_fault(self, cell_index: int) -> Optional[FaultSpec]:
        """The ``torn-record`` fault programmed for ``cell_index``, if any."""
        for spec in self.faults:
            if spec.kind == "torn-record" and spec.cell_index == cell_index:
                return spec
        return None


def _kill_self() -> None:
    """Terminate the current process the way ``kill -9`` would."""
    os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


def corrupt_segment(name: str, size: int) -> None:
    """Overwrite a shared-memory chunk's directory bytes with garbage.

    Attaches to the worker-encoded segment and fills the directory region
    (everything after the 8-byte size header, up to 64 bytes) with ``0xFF``,
    which is never a valid pickle stream — so the parent's
    :func:`~repro.experiments.shm.decode_chunk` deterministically raises.
    The segment is left linked: the parent's decode path unlinks it before
    parsing, exactly as for a healthy chunk, so injection does not perturb
    the leak accounting it is used to test.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        end = min(size, 64)
        segment.buf[8:end] = b"\xff" * (end - 8)
    finally:
        segment.close()


def write_torn_record(checkpoint, index: int, cell, rows, spec: FaultSpec) -> None:
    """Write only ``spec.keep_bytes`` of the cell's record line, no newline.

    Reproduces the exact on-disk footprint of a process killed mid-append:
    an unterminated prefix of a valid record.  The cell is *not* registered
    as completed in the checkpoint's memory, mirroring the fact that a
    killed process never got to use the record either.  With ``spec.kill``
    the process is SIGKILLed immediately after the torn write, making the
    simulation literal.
    """
    line = checkpoint.encoded_record(index, cell, rows)
    fragment = line[: spec.keep_bytes]
    with open(checkpoint.metrics_path, "ab") as handle:
        handle.write(fragment)
        handle.flush()
        os.fsync(handle.fileno())
    if spec.kill:
        _kill_self()
