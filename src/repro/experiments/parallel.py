"""Process-pool sweep execution.

:func:`run_sweep_parallel` shards the cells of a
:class:`~repro.experiments.spec.SweepSpec` across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Three properties make the
parallel table interchangeable with the serial one:

* **Deterministic seeds** — per-cell seeds are derived by
  :meth:`SweepSpec.cells` from the sweep seed and the cell index, and
  per-replicate seeds from the cell seed, so no seed depends on which worker
  runs a cell or when.
* **Chunked distribution** — cells are submitted in contiguous chunks (a few
  per worker) to amortise pickling and process start-up over many small
  cells.
* **In-order incremental collection** — finished chunks are buffered and
  flushed to the output table in cell order as soon as the next contiguous
  chunk is available, so ``progress`` fires once per cell in the same order
  as the serial runner and the resulting table is row-for-row identical to
  ``run_sweep``'s (up to wall-clock timings).
* **Columnar result transfer** — a cell's rows share one schema (the spec
  fixes the columns), so workers ship each cell as one packed batch: the key
  tuple once plus per-key value columns, instead of ``n_replicates``
  separate dicts each repeating every key string.  The parent unpacks in
  arrival order, so the deterministic row order (and the row contents) are
  untouched; only the pickle payload shrinks.

Workers inherit nothing mutable: each one re-imports the library and receives
pickled frozen specs, which keeps the executor oblivious to interpreter state.
Variant cells need no special handling: the spec's frozen
:class:`~repro.core.variants.VariantSpec` (and its ``max_steps`` budget)
pickles with the rest, and each worker routes it onto the scalar or ensemble
variant engine exactly as the serial runner would.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional

from repro.errors import ExperimentError
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, SweepSpec


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given (all visible CPUs)."""
    return max(1, os.cpu_count() or 1)


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Contiguous cells per task: aim for ~4 tasks per worker.

    Small chunks balance load across heterogeneous cell costs; the floor of
    one keeps single-cell sweeps valid.
    """
    return max(1, n_cells // (4 * workers))


def pack_rows(rows: list[dict[str, object]]) -> dict[str, object]:
    """Columnar encoding of uniform-schema rows for cheap pickling.

    One cell's rows always share their key set (the spec fixes the columns),
    so the batch carries the keys once and one value column per key.  Rows
    with diverging schemas — not produced by the runner, but tolerated for
    robustness — fall back to the raw list untouched.
    """
    if not rows:
        return {"n": 0}
    keys = list(rows[0].keys())
    if any(list(row.keys()) != keys for row in rows[1:]):
        return {"rows": rows}
    return {
        "n": len(rows),
        "keys": keys,
        "columns": [[row[key] for row in rows] for key in keys],
    }


def unpack_rows(packed: dict[str, object]) -> list[dict[str, object]]:
    """Inverse of :func:`pack_rows`; rebuilds the rows in their packed order."""
    if "rows" in packed:
        return packed["rows"]  # non-uniform fallback, shipped verbatim
    if not packed["n"]:
        return []
    return [
        dict(zip(packed["keys"], values)) for values in zip(*packed["columns"])
    ]


def _run_chunk(
    chunk: list[tuple[int, ExperimentSpec]], ensemble_size: Optional[int]
) -> list[tuple[int, dict[str, object]]]:
    """Worker entry point: run a chunk of cells, return (index, batch) pairs.

    Each cell's rows travel as one :func:`pack_rows` columnar batch, so the
    pickle stream carries every column name once per cell rather than once
    per replicate row.
    """
    # Imported lazily so the parent can pickle this module reference without
    # dragging the runner (and its numpy state) through the pickle stream.
    from repro.experiments.runner import run_experiment

    return [
        (index, pack_rows(run_experiment(spec, ensemble_size=ensemble_size).rows))
        for index, spec in chunk
    ]


def run_sweep_parallel(
    sweep: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    chunk_size: Optional[int] = None,
    ensemble_size: Optional[int] = None,
) -> ResultTable:
    """Run a sweep's cells on a process pool; rows match the serial runner.

    Parameters
    ----------
    sweep:
        The sweep to expand and run.
    workers:
        Pool size; ``None`` uses every visible CPU and ``1`` runs inline
        (no pool, useful as the deterministic baseline in tests).
    progress:
        Called once per cell, in cell order, as results are collected.
    chunk_size:
        Contiguous cells per worker task; defaults to
        :func:`default_chunk_size`.
    ensemble_size:
        When > 1, workers run each cell's replicates through the vectorized
        :class:`~repro.core.ensemble.EnsembleDynamics` engine in batches of
        this size.
    """
    if workers is not None and workers <= 0:
        raise ExperimentError(f"workers must be positive, got {workers}")
    if chunk_size is not None and chunk_size <= 0:
        raise ExperimentError(f"chunk_size must be positive, got {chunk_size}")
    cells = list(sweep.cells())
    workers = workers if workers is not None else default_worker_count()
    workers = min(workers, len(cells)) or 1

    table = ResultTable()
    if workers == 1:
        from repro.experiments.runner import run_experiment

        for cell in cells:
            table.extend(run_experiment(cell, ensemble_size=ensemble_size).rows)
            if progress is not None:
                progress(cell)
        return table

    if chunk_size is None:
        chunk_size = default_chunk_size(len(cells), workers)
    indexed = list(enumerate(cells))
    chunks = [indexed[i : i + chunk_size] for i in range(0, len(indexed), chunk_size)]

    collected: dict[int, list[dict[str, object]]] = {}
    next_index = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {
            pool.submit(_run_chunk, chunk, ensemble_size) for chunk in chunks
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for index, packed in future.result():
                    collected[index] = unpack_rows(packed)
            # Flush every contiguous completed prefix so callers see results
            # (and progress callbacks) incrementally, in cell order.
            while next_index in collected:
                table.extend(collected.pop(next_index))
                if progress is not None:
                    progress(cells[next_index])
                next_index += 1
    return table
