"""Process-pool sweep execution with a fault-tolerant supervisor.

:func:`run_sweep_parallel` shards the cells of a
:class:`~repro.experiments.spec.SweepSpec` across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Several properties make the
parallel table interchangeable with the serial one:

* **Deterministic seeds** — per-cell seeds are derived by
  :meth:`SweepSpec.cells` from the sweep seed and the cell index, and
  per-replicate seeds from the cell seed, so no seed depends on which worker
  runs a cell or when — nor on how many times a cell was attempted.
* **Chunked distribution** — cells are submitted in contiguous chunks (a few
  per worker) to amortise pickling and process start-up over many small
  cells; retried cells are resubmitted as single-cell chunks so a retry's
  blast radius and deadline are exactly one cell.
* **In-order incremental collection** — finished chunks are buffered and
  flushed to the output table in cell order as soon as the next contiguous
  chunk is available, so ``progress`` fires once per cell in the same order
  as the serial runner and the resulting table is row-for-row identical to
  ``run_sweep``'s (up to wall-clock timings).
* **Columnar result transfer** — a cell's rows share one schema (the spec
  fixes the columns), so workers ship each cell as one packed batch: the key
  tuple once plus per-key value columns, instead of ``n_replicates``
  separate dicts each repeating every key string.  With
  ``transfer="shm"``/``"auto"`` the packed chunk additionally bypasses the
  executor's result queue: the worker writes it into one
  :mod:`multiprocessing.shared_memory` segment (numeric columns as raw
  arrays, object columns pickled — see :mod:`repro.experiments.shm`) and
  only the segment name travels through the queue.  The classic pickled
  transfer is retained as the fallback and the two transports produce
  identical rows, so the parent's in-order flush is transport-oblivious.
* **Checkpoint/resume** — with ``checkpoint_dir=`` every completed cell is
  streamed to a self-verifying ``metrics.jsonl`` record keyed by the cell's
  content hash (:func:`~repro.experiments.spec.spec_hash`) next to a
  provenance ``manifest.json`` (see :mod:`repro.experiments.checkpoint`).
  A rerun pointed at the same directory skips the recorded cells and
  splices their rows into the table at the right positions, so a killed
  sweep resumes into a table row-for-row identical to an uninterrupted run.

On top of that substrate sits the **fault-tolerance layer**, built for
hours-long checkpointed sweeps where crashes, hangs and torn stores are the
common case:

* **Attributed failures** — a cell that raises inside a worker surfaces as
  :class:`SweepCellError` naming the cell, its index and the worker-side
  traceback (carried across the pickle boundary).
* **Retry with seeded backoff** — with ``on_error="retry"``/``"skip"``,
  failed cells are retried up to ``retries`` times; each retry waits an
  exponentially growing delay with jitter drawn deterministically from the
  sweep seed and the cell's failure count, so two runs of the same faulty
  sweep behave identically.  Retried rows are bitwise identical to
  first-try rows because seeds never depend on the attempt.
* **Quarantine** — ``on_error="skip"`` turns cells that exhaust their
  retries into structured failure records (index, name, attempts,
  traceback) on the result table's ``failures`` list and in the checkpoint,
  while the rest of the sweep completes.
* **Hang detection** — with ``cell_timeout=``, every in-flight chunk has a
  deadline (``cell_timeout`` × cells in the chunk) whose clock starts when
  the chunk *begins executing* — observed via the worker's ``started``
  breadcrumb — not when it was submitted, so chunks queued behind others
  never accrue deadline time they cannot spend.  A chunk past its deadline
  marks the pool hung: the supervisor kills the worker processes, respawns
  the pool, reschedules only unfinished cells, and counts the hang as a
  failure of the hung chunk's cells.
* **Graceful degradation** — a ``BrokenProcessPool`` or repeated
  shared-memory decode failure demotes the transfer to pickle, and each
  pool kill/breakage consumes one unit of ``respawn_budget``; past the
  budget the sweep *finishes serially in the parent* instead of dying.
  Every demotion emits a :class:`~repro.errors.SweepDegradationWarning`, so
  the run leaves a trail explaining why it ran slower than configured.
* **Deterministic fault injection** — every failure mode above is
  reproducible via :class:`~repro.experiments.faults.FaultPlan`, threaded
  into the worker entry points behind a zero-overhead ``None`` check.

Workers inherit nothing mutable: each one re-imports the library and receives
pickled frozen specs, which keeps the executor oblivious to interpreter state.
Variant cells need no special handling: the spec's frozen
:class:`~repro.core.variants.VariantSpec` (and its ``max_steps`` budget)
pickles with the rest, and each worker routes it onto the scalar or ensemble
variant engine exactly as the serial runner would.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import traceback as traceback_module
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.backends.registry import resolve_backend_name, select_backend_name
from repro.errors import ExperimentError, SweepDegradationWarning
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, SweepSpec

#: Accepted values for ``run_sweep_parallel``'s ``transfer`` parameter.
TRANSFER_MODES = ("auto", "shm", "pickle")

#: Accepted values for ``run_sweep_parallel``'s ``on_error`` parameter.
ON_ERROR_MODES = ("raise", "retry", "skip")

#: Shared-memory decode failures tolerated before demoting to pickle.
SHM_DEMOTE_AFTER = 2


class SweepCellError(ExperimentError):
    """One sweep cell failed inside a worker, with the cell identified.

    Carries ``cell_index``, ``cell_name`` and ``traceback_text`` — the
    worker-side traceback formatted to a string, since live traceback
    objects do not survive the pickle transfer back to the parent — so a
    crashed sweep names the offending cell *and* shows where it died
    instead of surfacing an anonymous pool traceback.
    """

    def __init__(
        self,
        message: str,
        cell_index: Optional[int] = None,
        cell_name: Optional[str] = None,
        traceback_text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.cell_index = cell_index
        self.cell_name = cell_name
        self.traceback_text = traceback_text

    def __str__(self) -> str:
        """The message, with the worker-side traceback appended when known."""
        base = super().__str__()
        if self.traceback_text:
            return f"{base}\n--- worker traceback ---\n{self.traceback_text}"
        return base

    def __reduce__(self):
        """Pickle support: rebuild with identity and traceback intact."""
        return (
            type(self),
            (
                self.args[0] if self.args else "",
                self.cell_index,
                self.cell_name,
                self.traceback_text,
            ),
        )


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given.

    Uses the CPUs this process may actually run on
    (``os.sched_getaffinity``), not the machine-wide ``os.cpu_count`` —
    inside containers and cgroup/affinity-limited CI runners the two differ,
    and sizing the pool by the machine oversubscribes the quota.  Falls back
    to ``os.cpu_count()`` where affinity masks are unavailable (macOS,
    Windows).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Contiguous cells per task: aim for ~4 tasks per worker.

    Small chunks balance load across heterogeneous cell costs; the floor of
    one keeps single-cell sweeps valid.
    """
    return max(1, n_cells // (4 * workers))


def backoff_delay(
    sweep_seed: int, cell_index: int, failure_count: int, base: float
) -> float:
    """Seconds to wait before resubmitting a cell after its n-th failure.

    Exponential in the failure count with multiplicative jitter in
    ``[0.5, 1.0)``, drawn from a generator seeded by ``(sweep_seed,
    cell_index, failure_count)`` — so the whole retry schedule is a pure
    function of the sweep seed, and two runs of the same faulty sweep wait
    identically.  A non-positive ``base`` disables waiting entirely.
    """
    if base <= 0.0 or failure_count <= 0:
        return 0.0
    import numpy as np

    jitter = np.random.default_rng(
        [abs(int(sweep_seed)), int(cell_index), int(failure_count)]
    ).random()
    return base * (2.0 ** (failure_count - 1)) * (0.5 + 0.5 * float(jitter))


def pack_rows(rows: list[dict[str, object]]) -> dict[str, object]:
    """Columnar encoding of uniform-schema rows for cheap pickling.

    One cell's rows always share their key set (the spec fixes the columns),
    so the batch carries the keys once and one value column per key.  Rows
    with diverging schemas — not produced by the runner, but tolerated for
    robustness — fall back to the raw list untouched.
    """
    if not rows:
        return {"n": 0}
    keys = list(rows[0].keys())
    if any(list(row.keys()) != keys for row in rows[1:]):
        return {"rows": rows}
    return {
        "n": len(rows),
        "keys": keys,
        "columns": [[row[key] for row in rows] for key in keys],
    }


def unpack_rows(packed: dict[str, object]) -> list[dict[str, object]]:
    """Inverse of :func:`pack_rows`; rebuilds the rows in their packed order."""
    if "rows" in packed:
        return packed["rows"]  # non-uniform fallback, shipped verbatim
    if not packed["n"]:
        return []
    return [
        dict(zip(packed["keys"], values)) for values in zip(*packed["columns"])
    ]


def _touch_breadcrumb(directory: str, index: int, attempt: int, stage: str) -> None:
    """Drop a ``<index>.<attempt>.<stage>`` marker file, best effort.

    Breadcrumbs are the supervisor's write-ahead log of worker activity:
    ``started`` lands just before a cell executes, ``done`` just after.  When
    the pool breaks (a worker was SIGKILLed or died), the parent reads them
    to attribute the breakage precisely — a cell that *started but never
    finished* was running when the worker died and is charged a failure,
    while cells that never started (or finished but lost their rows with the
    dead worker) are rescheduled for free.
    """
    try:
        with open(os.path.join(directory, f"{index}.{attempt}.{stage}"), "w"):
            pass
    except OSError:
        pass  # attribution degrades to free rescheduling, never to a crash


def _run_cell(
    index: int,
    spec: ExperimentSpec,
    ensemble_size: Optional[int],
    fault_plan=None,
    attempt: int = 0,
    breadcrumb_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> list[dict[str, object]]:
    """Run one cell, wrapping any failure with the cell's identity.

    ``fault_plan``/``attempt`` is the zero-overhead injection hook: the
    production path pays one ``None`` check, and injected faults raise or
    stall *inside* the ``try`` so they surface exactly like organic ones —
    wrapped in :class:`SweepCellError` with the formatted traceback attached.
    ``breadcrumb_dir`` (pool runs only) receives the started/done markers
    the supervisor uses to attribute worker deaths (see
    :func:`_touch_breadcrumb`).
    """
    from repro.experiments.runner import run_experiment

    try:
        if breadcrumb_dir is not None:
            _touch_breadcrumb(breadcrumb_dir, index, attempt, "started")
        if fault_plan is not None:
            fault_plan.fire_in_cell(index, attempt)
        rows = run_experiment(spec, ensemble_size=ensemble_size, backend=backend).rows
        if breadcrumb_dir is not None:
            _touch_breadcrumb(breadcrumb_dir, index, attempt, "done")
        return rows
    except Exception as exc:
        raise SweepCellError(
            f"sweep cell {index} ({spec.name!r}) failed: "
            f"{type(exc).__name__}: {exc}",
            cell_index=index,
            cell_name=spec.name,
            traceback_text=traceback_module.format_exc(),
        ) from exc


def _run_chunk(
    chunk: list[tuple[int, ExperimentSpec]],
    ensemble_size: Optional[int],
    transfer: str = "pickle",
    fault_plan=None,
    attempts: Optional[list[int]] = None,
    breadcrumb_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> tuple:
    """Worker entry point: run a chunk of cells, return a tagged payload.

    Each cell's rows travel as one :func:`pack_rows` columnar batch.  The
    payload is ``("shm", name, size)`` when the chunk was written into a
    shared-memory segment, or ``("pickle", [(index, batch), ...])`` when it
    rides the executor's result queue — including whenever shared memory is
    requested but unusable on this host, the retained fallback.
    ``attempts`` aligns with ``chunk`` and carries each cell's execution
    count for deterministic fault keying; omitted means first attempts.
    """
    if attempts is None:
        attempts = [0] * len(chunk)
    results = [
        (
            index,
            pack_rows(
                _run_cell(
                    index,
                    spec,
                    ensemble_size,
                    fault_plan,
                    attempt,
                    breadcrumb_dir,
                    backend=backend,
                )
            ),
        )
        for (index, spec), attempt in zip(chunk, attempts)
    ]
    if transfer == "shm":
        try:
            from repro.experiments import shm as shm_transfer

            name, size = shm_transfer.encode_chunk(results)
            if fault_plan is not None and fault_plan.corrupts_chunk(
                [index for index, _ in chunk], attempts
            ):
                from repro.experiments import faults as faults_module

                faults_module.corrupt_segment(name, size)
            return ("shm", name, size)
        except (ImportError, OSError):
            pass
    return ("pickle", results)


def _register_payload(payload: tuple) -> None:
    """Track a shared-memory payload's segment in the leak ledger."""
    if payload[0] == "shm":
        from repro.experiments import shm as shm_transfer

        shm_transfer.segment_ledger().track(payload[1])


def _payload_batches(payload: tuple) -> list[tuple[int, dict[str, object]]]:
    """Decode a worker payload into its ``(index, packed_batch)`` pairs."""
    if payload[0] == "shm":
        from repro.experiments import shm as shm_transfer

        return shm_transfer.decode_chunk(payload[1], payload[2])
    return payload[1]


def _harvest_completed(futures, collected) -> None:
    """Move successfully finished futures' batches into ``collected``.

    Called on the error path after the pool has shut down: chunks that were
    already in flight when a sibling failed have run to completion, and their
    rows belong to the completed prefix.  Futures that failed or were
    cancelled stay in ``futures``; best effort — harvesting must not mask the
    original failure.
    """
    for future in list(futures):
        if not future.done() or future.cancelled():
            continue
        try:
            payload = future.result()
        except BaseException:
            continue
        futures.discard(future)
        _register_payload(payload)
        try:
            for index, packed in _payload_batches(payload):
                collected[index] = unpack_rows(packed)
        except Exception:
            continue


def _discard_unread(futures) -> None:
    """Release shared-memory segments held by never-consumed futures.

    Called on the error path after the pool has shut down: any chunk that
    finished but was never decoded may still own a segment, which would
    otherwise outlive the sweep.  Best effort — cleanup must not mask the
    original failure.
    """
    for future in futures:
        if not future.done() or future.cancelled():
            continue
        try:
            payload = future.result()
        except BaseException:
            continue
        if payload[0] == "shm":
            try:
                from repro.experiments import shm as shm_transfer

                shm_transfer.segment_ledger().track(payload[1])
                shm_transfer.discard_chunk(payload[1])
            except (ImportError, OSError):
                pass


def _degradation_warning(message: str) -> None:
    """Emit one entry of the supervisor's degradation warning trail."""
    warnings.warn(message, SweepDegradationWarning, stacklevel=3)


class _InflightChunk:
    """Bookkeeping for one submitted chunk: cells, attempts and deadline.

    ``deadline`` starts ``None`` and is armed by
    :meth:`_SweepSupervisor._arm_deadlines` when the supervisor first
    observes the chunk's ``started`` breadcrumb — the chunk may sit queued
    behind others for arbitrarily long before a worker picks it up, and
    queue time must not count against its deadline.
    """

    __slots__ = ("indices", "attempts", "deadline")

    def __init__(self, indices: list[int], attempts: list[int]) -> None:
        self.indices = indices
        self.attempts = attempts
        self.deadline: Optional[float] = None


class _SweepSupervisor:
    """State machine running one sweep's cells to completion under faults.

    Owns the retry/backoff bookkeeping shared by the pool path and the
    serial paths: ``attempts`` counts executions started per cell (the fault
    plan's key and the worker's ``attempt`` argument), ``failures`` counts
    failures per cell against the ``retries`` budget, ``collected`` buffers
    finished rows until the in-order flush, and ``quarantined`` holds the
    structured failure records of cells given up on under
    ``on_error="skip"``.
    """

    def __init__(
        self,
        cells: list[ExperimentSpec],
        resumed: dict[int, list[dict[str, object]]],
        checkpoint,
        progress,
        ensemble_size: Optional[int],
        transfer: str,
        retries: int,
        backoff: float,
        cell_timeout: Optional[float],
        on_error: str,
        respawn_budget: int,
        fault_plan,
        sweep_seed: int,
        workers: int,
        chunk_size: Optional[int],
        backend: Optional[str] = None,
    ) -> None:
        self.cells = cells
        self.resumed_indices = set(resumed)
        self.checkpoint = checkpoint
        self.progress = progress
        self.ensemble_size = ensemble_size
        self.backend = backend
        self.transfer = transfer
        self.retries = retries
        self.backoff = backoff
        self.cell_timeout = cell_timeout
        self.on_error = on_error
        self.respawn_budget = respawn_budget
        self.fault_plan = fault_plan
        self.sweep_seed = sweep_seed
        self.workers = workers
        self.chunk_size = chunk_size
        self.attempts: dict[int, int] = {}
        self.failures: dict[int, int] = {}
        self.collected: dict[int, list[dict[str, object]]] = dict(resumed)
        self.quarantined: dict[int, dict[str, object]] = {}
        self.unfinished: set[int] = {
            index
            for index in range(len(cells))
            if index not in self.resumed_indices
        }
        self.table = ResultTable()
        self.next_index = 0
        self.respawns = 0
        self.shm_failures = 0
        #: Futures whose payloads were never consumed (abort-path cleanup).
        self.unconsumed: set[Future] = set()
        #: Worker-activity marker directory, created by :meth:`run_pool`.
        self.breadcrumb_dir: Optional[str] = None

    # ------------------------------------------------------------- flushing

    def flush_prefix(self) -> None:
        """Flush every contiguous completed prefix, in cell order.

        Newly completed cells are checkpointed as they flush (resumed cells
        already have their record); quarantined cells contribute their
        failure record to the table and the checkpoint instead of rows.
        ``progress`` fires for every flushed cell — completed, resumed or
        quarantined — preserving the once-per-cell in-order contract.
        """
        while True:
            index = self.next_index
            if index in self.collected:
                rows = self.collected.pop(index)
                if self.checkpoint is not None and index not in self.resumed_indices:
                    self._record_rows(index, rows)
                self.table.extend(rows)
            elif index in self.quarantined:
                failure = self.quarantined[index]
                if self.checkpoint is not None:
                    self.checkpoint.record_failure(
                        index, self.cells[index], failure
                    )
                self.table.failures.append(failure)
            else:
                return
            if self.progress is not None:
                self.progress(self.cells[index])
            self.next_index += 1

    def _record_rows(self, index: int, rows: list[dict[str, object]]) -> None:
        """Checkpoint one cell's rows, honouring any ``torn-record`` fault."""
        torn = (
            self.fault_plan.torn_record_fault(index)
            if self.fault_plan is not None
            else None
        )
        if torn is None:
            self.checkpoint.record(index, self.cells[index], rows)
        else:
            from repro.experiments import faults as faults_module

            faults_module.write_torn_record(
                self.checkpoint, index, self.cells[index], rows, torn
            )

    # ------------------------------------------------------- failure logic

    def _mark_collected(self, index: int, rows: list[dict[str, object]]) -> None:
        """Record a cell as successfully finished."""
        self.collected[index] = rows
        self.unfinished.discard(index)

    def _quarantine(self, index: int, message: str, traceback_text) -> None:
        """Convert an exhausted cell into a structured failure record."""
        self.quarantined[index] = {
            "cell_index": index,
            "cell_name": self.cells[index].name,
            "attempts": self.attempts.get(index, 0),
            "error": message,
            "traceback": traceback_text,
        }
        self.unfinished.discard(index)

    def _count_failure(
        self, index: int, error: SweepCellError
    ) -> Optional[float]:
        """Register one failure of ``index``; return the retry delay.

        Raises ``error`` when the policy says the sweep must abort
        (``on_error="raise"``, or retries exhausted under ``"retry"``);
        returns ``None`` when the cell was quarantined instead; otherwise
        the seeded backoff delay to apply before resubmission.
        """
        self.failures[index] = self.failures.get(index, 0) + 1
        if self.on_error == "raise":
            raise error
        if self.failures[index] > self.retries:
            if self.on_error == "skip":
                self._quarantine(index, str(error.args[0] if error.args else error), error.traceback_text)
                return None
            raise error
        return backoff_delay(
            self.sweep_seed, index, self.failures[index], self.backoff
        )

    # -------------------------------------------------------- serial paths

    def run_cell_with_retries(self, index: int) -> None:
        """Run one cell inline, retrying per policy, until settled.

        Used by the ``workers=1`` path and by the post-degradation serial
        fallback.  Hang faults stall inline for their programmed duration —
        there is no supervising process left to kill them — so serial
        execution trades hang detection for survival, which the degradation
        warning states.
        """
        cell = self.cells[index]
        while True:
            attempt = self.attempts.get(index, 0)
            self.attempts[index] = attempt + 1
            try:
                rows = _run_cell(
                    index,
                    cell,
                    self.ensemble_size,
                    self.fault_plan,
                    attempt,
                    backend=self.backend,
                )
            except SweepCellError as exc:
                delay = self._count_failure(index, exc)
                if delay is None:
                    return
                if delay > 0.0:
                    time.sleep(delay)
                continue
            self._mark_collected(index, rows)
            return

    def run_serial(self) -> None:
        """Run every unfinished cell inline, flushing in order."""
        for index in sorted(self.unfinished):
            self.run_cell_with_retries(index)
            self.flush_prefix()
        self.flush_prefix()

    # ---------------------------------------------------------- pool path

    def _new_pool(self) -> ProcessPoolExecutor:
        """A fresh worker pool sized like the original."""
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly terminate a pool whose workers cannot be trusted.

        SIGKILLs the worker processes first (a hung worker ignores softer
        signals by definition), then shuts the executor down without
        waiting; the short join reaps the corpses so crash tests do not
        accumulate zombies.
        """
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            if process.is_alive():
                process.kill()
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=2.0)

    def _submit(
        self, pool: ProcessPoolExecutor, inflight, indices: list[int]
    ) -> None:
        """Submit one chunk of cell indices to the pool."""
        chunk = [(index, self.cells[index]) for index in indices]
        attempts = []
        for index in indices:
            attempts.append(self.attempts.get(index, 0))
            self.attempts[index] = attempts[-1] + 1
        future = pool.submit(
            _run_chunk,
            chunk,
            self.ensemble_size,
            self.transfer,
            self.fault_plan,
            attempts,
            self.breadcrumb_dir,
            backend=self.backend,
        )
        inflight[future] = _InflightChunk(indices, attempts)
        self.unconsumed.add(future)

    def _reschedule(self, ready, indices, delay: float = 0.0) -> None:
        """Queue unfinished cells for resubmission as single-cell chunks."""
        due = time.monotonic() + delay
        for index in indices:
            if index in self.unfinished:
                ready.append((due, [index]))

    def _consume_payload(self, ready, payload, info) -> None:
        """Decode one successful payload; collect rows or handle transport loss."""
        _register_payload(payload)
        try:
            batches = _payload_batches(payload)
        except Exception as exc:
            self._on_decode_failure(ready, info, exc)
            return
        for index, packed in batches:
            self._mark_collected(index, unpack_rows(packed))

    def _on_cell_failure(self, ready, info, error: SweepCellError) -> None:
        """One chunk raised: retry/quarantine the named cell, requeue the rest."""
        failing = error.cell_index
        if failing is None or failing not in info.indices:
            failing = info.indices[0]
        siblings = [index for index in info.indices if index != failing]
        self._reschedule(ready, siblings)
        delay = self._count_failure(failing, error)  # may raise (abort)
        if delay is not None:
            self._reschedule(ready, [failing], delay)

    def _on_decode_failure(self, ready, info, exc: Exception) -> None:
        """A chunk's shm payload would not decode: count, maybe demote, retry."""
        self.shm_failures += 1
        _degradation_warning(
            f"shared-memory payload of cells {info.indices} failed to decode "
            f"({type(exc).__name__}: {exc}); rescheduling "
            f"({self.shm_failures} decode failure(s) so far)"
        )
        if self.shm_failures >= SHM_DEMOTE_AFTER and self.transfer == "shm":
            self.transfer = "pickle"
            _degradation_warning(
                f"demoting result transfer to pickle after {self.shm_failures} "
                "shared-memory decode failures"
            )
        for index in info.indices:
            if index not in self.unfinished:
                continue
            error = SweepCellError(
                f"sweep cell {index} ({self.cells[index].name!r}) lost to a "
                f"shared-memory decode failure: {type(exc).__name__}: {exc}",
                cell_index=index,
                cell_name=self.cells[index].name,
                traceback_text=traceback_module.format_exc(),
            )
            delay = self._count_failure(index, error)  # may raise (abort)
            if delay is not None:
                self._reschedule(ready, [index], delay)

    def _spend_respawn(self, reason: str) -> bool:
        """Consume one respawn; return ``False`` when the budget is exhausted."""
        self.respawns += 1
        if self.respawns > self.respawn_budget:
            _degradation_warning(
                f"{reason}; respawn budget ({self.respawn_budget}) exhausted — "
                "finishing the remaining cells serially in the parent"
            )
            return False
        _degradation_warning(
            f"{reason}; respawning the worker pool "
            f"(respawn {self.respawns}/{self.respawn_budget})"
        )
        return True

    def _breadcrumb(self, index: int, attempt: int, stage: str) -> bool:
        """Whether the worker dropped the given marker for ``(index, attempt)``."""
        if self.breadcrumb_dir is None:
            return False
        return os.path.exists(
            os.path.join(self.breadcrumb_dir, f"{index}.{attempt}.{stage}")
        )

    def _arm_deadlines(self, inflight) -> None:
        """Start the deadline clock of every chunk observed executing.

        ``run_pool`` submits all ready chunks to the executor up front (~4
        waves per worker), so a chunk can wait in the executor's queue for
        several multiples of its own runtime; charging that wait against the
        deadline would mark perfectly healthy chunks hung.  The clock
        therefore starts only when the chunk's first cell drops its
        ``started`` breadcrumb.  Arming happens at observation time — at
        most one poll interval (see :meth:`_next_timeout`) after the actual
        start — so the deadline errs slightly lenient, never falsely early.
        """
        if self.cell_timeout is None:
            return
        now = time.monotonic()
        for future, info in inflight.items():
            if info.deadline is None and not future.done():
                if self._breadcrumb(info.indices[0], info.attempts[0], "started"):
                    info.deadline = now + self.cell_timeout * len(info.indices)

    def _charge_breakage(self, ready, info) -> None:
        """Attribute a pool breakage to the cells that were mid-execution.

        Reads the chunk's breadcrumbs: a cell that *started but never
        finished* its submitted attempt was running when the worker died and
        is charged a failure (retry/quarantine/abort per policy).  Cells
        that never started, or that finished but lost their rows with the
        dead worker, are rescheduled with nothing charged — they are
        victims, not suspects.
        """
        for index, attempt in zip(list(info.indices), info.attempts):
            if index not in self.unfinished:
                continue
            suspect = self._breadcrumb(index, attempt, "started") and not (
                self._breadcrumb(index, attempt, "done")
            )
            if not suspect:
                self._reschedule(ready, [index])
                continue
            error = SweepCellError(
                f"sweep cell {index} ({self.cells[index].name!r}) was "
                "running when the worker pool broke (worker killed or "
                "crashed hard)",
                cell_index=index,
                cell_name=self.cells[index].name,
            )
            delay = self._count_failure(index, error)  # may raise (abort)
            if delay is not None:
                self._reschedule(ready, [index], delay)

    def _drain_inflight(
        self, ready, inflight, hung: set, charge_breakage: bool = False
    ) -> None:
        """Settle every in-flight chunk around a pool kill.

        Chunks that finished successfully are harvested; a chunk that
        completed with a genuine :class:`SweepCellError` just before the
        kill is charged like any main-loop failure (retry budget consumed,
        abort policies abort now rather than after a wasted rerun); hung
        chunks count a failure against each of their unfinished cells
        (retry/quarantine/abort per policy); with ``charge_breakage`` the
        remaining chunks go through breadcrumb attribution
        (:meth:`_charge_breakage`); otherwise — victims of our own kill —
        they are rescheduled immediately with no failure charged.
        """
        for future, info in list(inflight.items()):
            self.unconsumed.discard(future)
            payload = None
            cell_error: Optional[SweepCellError] = None
            if future.done() and not future.cancelled() and future not in hung:
                try:
                    payload = future.result()
                except SweepCellError as exc:
                    cell_error = exc
                except BaseException:
                    payload = None
            if payload is not None:
                self._consume_payload(ready, payload, info)
            elif cell_error is not None:
                self._on_cell_failure(ready, info, cell_error)  # may raise
            elif future in hung:
                for index in list(info.indices):
                    if index not in self.unfinished:
                        continue
                    error = SweepCellError(
                        f"sweep cell {index} ({self.cells[index].name!r}) "
                        f"hung: chunk exceeded its deadline of "
                        f"{self.cell_timeout}s per cell",
                        cell_index=index,
                        cell_name=self.cells[index].name,
                    )
                    delay = self._count_failure(index, error)  # may raise
                    if delay is not None:
                        self._reschedule(ready, [index], delay)
            elif charge_breakage:
                self._charge_breakage(ready, info)
            else:
                self._reschedule(ready, info.indices)
        inflight.clear()

    def _next_timeout(self, ready, inflight) -> Optional[float]:
        """Seconds until the next deadline, backoff expiry or arming poll.

        While hang detection is on and some in-flight chunk has no deadline
        yet (its ``started`` breadcrumb has not been observed), the wait is
        capped at a short poll interval so the supervisor wakes to arm the
        clock — otherwise a worker that hangs on its very first cell would
        leave the parent blocked in ``wait()`` forever.
        """
        marks = [entry[0] for entry in ready]
        unarmed = False
        for info in inflight.values():
            if info.deadline is not None:
                marks.append(info.deadline)
            elif self.cell_timeout is not None:
                unarmed = True
        if unarmed:
            poll = max(0.02, min(self.cell_timeout / 4.0, 0.25))
            marks.append(time.monotonic() + poll)
        if not marks:
            return None
        return max(0.0, min(marks) - time.monotonic())

    def run_pool(self) -> bool:
        """Drive the pool until done or degraded; ``True`` means finished.

        Returns ``False`` when the respawn budget ran out and the remaining
        cells should be finished serially by the caller.  Aborting policies
        re-raise out of here after the same harvest/flush/cleanup sequence
        the pre-supervisor error path performed, so completed work is never
        discarded.
        """
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = default_chunk_size(len(self.unfinished), self.workers)
        pending = sorted(self.unfinished)
        ready: list[tuple[float, list[int]]] = [
            (0.0, pending[i : i + chunk_size])
            for i in range(0, len(pending), chunk_size)
        ]
        inflight: dict[Future, _InflightChunk] = {}
        self.breadcrumb_dir = tempfile.mkdtemp(prefix="repro-sweep-breadcrumbs-")
        pool = self._new_pool()
        try:
            self.flush_prefix()  # a resumed prefix is available immediately
            while ready or inflight:
                now = time.monotonic()
                for entry in [e for e in ready if e[0] <= now]:
                    ready.remove(entry)
                    indices = [i for i in entry[1] if i in self.unfinished]
                    if indices:
                        self._submit(pool, inflight, indices)
                if not inflight:
                    if ready:
                        time.sleep(
                            max(0.0, min(e[0] for e in ready) - time.monotonic())
                        )
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=self._next_timeout(ready, inflight),
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for future in done:
                    info = inflight.pop(future)
                    try:
                        payload = future.result()
                    except SweepCellError as exc:
                        self.unconsumed.discard(future)
                        self._on_cell_failure(ready, info, exc)
                        continue
                    except BrokenProcessPool:
                        inflight[future] = info  # handled wholesale below
                        pool_broken = True
                        break
                    self.unconsumed.discard(future)
                    self._consume_payload(ready, payload, info)
                if pool_broken:
                    self._drain_inflight(
                        ready, inflight, hung=set(), charge_breakage=True
                    )
                    self._kill_pool(pool)
                    if self.transfer == "shm":
                        self.transfer = "pickle"
                        _degradation_warning(
                            "demoting result transfer to pickle after the "
                            "process pool broke (worker died mid-chunk)"
                        )
                    if not self._spend_respawn("worker pool broke"):
                        return False
                    pool = self._new_pool()
                    self.flush_prefix()
                    continue
                self.flush_prefix()
                if self.cell_timeout is not None and inflight:
                    self._arm_deadlines(inflight)
                    cutoff = time.monotonic()
                    hung = {
                        future
                        for future, info in inflight.items()
                        if info.deadline is not None
                        and info.deadline <= cutoff
                        and not future.done()
                    }
                    if hung:
                        self._kill_pool(pool)
                        self._drain_inflight(ready, inflight, hung)
                        self.flush_prefix()
                        if not self._spend_respawn(
                            f"killed hung worker pool ({len(hung)} chunk(s) "
                            "past deadline)"
                        ):
                            return False
                        pool = self._new_pool()
            self.flush_prefix()
            pool.shutdown()
            return True
        except BaseException:
            # A failing cell must not discard finished work or leave the
            # rest of the sweep running: cancel queued chunks (the shutdown
            # waits for in-flight ones to finish), harvest their results,
            # flush the completed contiguous prefix (recoverable via
            # checkpoint/resume), and release unread shared-memory segments
            # before re-raising the attributed error.
            pool.shutdown(cancel_futures=True)
            try:
                _harvest_completed(self.unconsumed, self.collected)
                for index in list(self.collected):
                    self.unfinished.discard(index)
                self.flush_prefix()
            except Exception:
                pass  # never mask the original failure with flush errors
            _discard_unread(self.unconsumed)
            raise
        finally:
            shutil.rmtree(self.breadcrumb_dir, ignore_errors=True)
            self.breadcrumb_dir = None


def run_sweep_parallel(
    sweep: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    chunk_size: Optional[int] = None,
    ensemble_size: Optional[int] = None,
    transfer: str = "auto",
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retries: int = 0,
    backoff: float = 0.05,
    cell_timeout: Optional[float] = None,
    on_error: str = "raise",
    respawn_budget: int = 2,
    fault_plan=None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run a sweep's cells on a process pool; rows match the serial runner.

    Parameters
    ----------
    sweep:
        The sweep to expand and run.
    workers:
        Pool size; ``None`` uses every CPU this process may run on
        (affinity-aware, see :func:`default_worker_count`) and ``1`` runs
        inline (no pool, useful as the deterministic baseline in tests).
    progress:
        Called once per cell, in cell order, as results are collected —
        including for cells resumed from a checkpoint and for quarantined
        cells.
    chunk_size:
        Contiguous cells per worker task; defaults to
        :func:`default_chunk_size` over the cells still to run.
    ensemble_size:
        When > 1, workers run each cell's replicates through the vectorized
        :class:`~repro.core.ensemble.EnsembleDynamics` engine in batches of
        this size.
    transfer:
        Result transport: ``"shm"`` ships packed chunks through shared
        memory, ``"pickle"`` through the executor's result queue, and
        ``"auto"`` (default) picks shared memory when the host supports it.
        Both transports produce identical rows.  Repeated shared-memory
        decode failures or a broken pool demote the transport to pickle for
        the rest of the run, with a warning.
    checkpoint_dir:
        Artifact directory for checkpoint/resume
        (:class:`~repro.experiments.checkpoint.SweepCheckpoint`).  Completed
        cells are streamed to ``metrics.jsonl`` as they flush; cells whose
        spec hash already has a record are skipped and their recorded rows
        spliced in, so a killed sweep resumes into an identical table.
    retries:
        How many times a failed cell is retried (with seeded exponential
        backoff, see :func:`backoff_delay`) before the ``on_error`` policy
        settles it.  Ignored under ``on_error="raise"``, which aborts on the
        first failure.
    backoff:
        Base delay in seconds of the retry backoff schedule; ``0`` retries
        immediately.
    cell_timeout:
        Per-cell deadline in seconds.  A chunk that spends more than
        ``cell_timeout * len(chunk)`` *executing* (the clock starts when a
        worker picks the chunk up, not when it was submitted, so queue time
        behind other chunks is free) marks the pool hung: the supervisor
        kills and respawns the pool, reschedules only unfinished cells, and
        counts the hang as a failure of the hung chunk's cells.  ``None``
        (default) disables hang detection.  Hang detection needs a worker
        pool to supervise: with ``workers=1`` (and on the post-degradation
        serial fallback) the setting is inert and a
        :class:`~repro.errors.SweepDegradationWarning` says so.
    on_error:
        ``"raise"`` (default) aborts the sweep on the first cell failure,
        exactly like the pre-supervisor behaviour; ``"retry"`` retries up
        to ``retries`` times and aborts only when a cell exhausts them;
        ``"skip"`` also retries, but quarantines exhausted cells as
        structured failure records (on ``result.failures`` and in the
        checkpoint) and lets the rest of the sweep complete.
    respawn_budget:
        Pool kills/breakages tolerated before giving up on process
        parallelism: past the budget the remaining cells run serially in
        the parent (with a warning) instead of the sweep dying.
    fault_plan:
        A :class:`~repro.experiments.faults.FaultPlan` for deterministic
        fault injection (tests and chaos benches); ``None`` — the default —
        is the zero-overhead production path.
    backend:
        Flip-loop backend request for ensemble execution.  The parent
        resolves it to a concrete backend name *once* (full precedence:
        this argument > ``REPRO_BACKEND`` > ``sweep.backend`` > auto, then
        availability fallback with a single warning) and ships the resolved
        name to the workers, so each worker neither probes nor re-warns.
        Ignored — recorded as ``"scalar"`` — when ``ensemble_size`` does not
        select the ensemble engine.  Backends are bitwise identical, so the
        choice never affects rows; the checkpoint manifest records it as
        provenance.
    """
    if workers is not None and workers <= 0:
        raise ExperimentError(f"workers must be positive, got {workers}")
    if chunk_size is not None and chunk_size <= 0:
        raise ExperimentError(f"chunk_size must be positive, got {chunk_size}")
    if transfer not in TRANSFER_MODES:
        raise ExperimentError(
            f"transfer must be one of {TRANSFER_MODES}, got {transfer!r}"
        )
    if on_error not in ON_ERROR_MODES:
        raise ExperimentError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    if retries < 0:
        raise ExperimentError(f"retries must be non-negative, got {retries}")
    if respawn_budget < 0:
        raise ExperimentError(
            f"respawn_budget must be non-negative, got {respawn_budget}"
        )
    if cell_timeout is not None and cell_timeout <= 0:
        raise ExperimentError(
            f"cell_timeout must be positive, got {cell_timeout}"
        )
    cells = list(sweep.cells())

    # Resolve the backend once in the parent: workers receive the concrete
    # name, so availability probing (and any fallback warning) happens
    # exactly once per sweep instead of once per worker process.
    if ensemble_size is not None and ensemble_size > 1:
        resolved_backend = resolve_backend_name(
            select_backend_name(backend, sweep.backend)
        )
        worker_backend: Optional[str] = resolved_backend
    else:
        resolved_backend = "scalar"
        worker_backend = None

    checkpoint = None
    resumed: dict[int, list[dict[str, object]]] = {}
    if checkpoint_dir is not None:
        from repro.experiments.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(
            checkpoint_dir, cells, sweep=sweep, backend=resolved_backend
        )
        resumed = checkpoint.resumed_rows()

    workers = workers if workers is not None else default_worker_count()
    workers = min(workers, len(cells) - len(resumed)) or 1

    if transfer in ("shm", "auto") and workers > 1:
        from repro.experiments import shm as shm_transfer

        # The availability probe runs before the pool forks on purpose: it
        # starts the parent's multiprocessing resource tracker, which the
        # workers then inherit, so worker-side segment registrations and the
        # parent's unlinks reach the same tracker (no spurious leak warnings
        # at worker shutdown).  Hosts without usable shared memory fall back
        # to the retained pickle transfer.
        transfer = "shm" if shm_transfer.shm_available() else "pickle"

    supervisor = _SweepSupervisor(
        cells=cells,
        resumed=resumed,
        checkpoint=checkpoint,
        progress=progress,
        ensemble_size=ensemble_size,
        transfer=transfer,
        retries=retries,
        backoff=backoff,
        cell_timeout=cell_timeout,
        on_error=on_error,
        respawn_budget=respawn_budget,
        fault_plan=fault_plan,
        sweep_seed=int(getattr(sweep, "seed", 0) or 0),
        workers=workers,
        chunk_size=chunk_size,
        backend=worker_backend,
    )
    if workers == 1:
        if cell_timeout is not None and supervisor.unfinished:
            _degradation_warning(
                "cell_timeout is set but execution is serial (workers=1): "
                "hang detection needs a worker pool to kill and respawn, so "
                "a hung cell will stall the sweep — use workers > 1 for "
                "hang protection"
            )
        supervisor.run_serial()
    elif not supervisor.run_pool():
        supervisor.run_serial()
    if checkpoint is not None:
        # The sweep settled every cell (rows or quarantine record), so the
        # store is final: materialise the read-side summary.json aggregates
        # the serving layer (repro.serving) answers queries from.
        checkpoint.write_summary()
    return supervisor.table
