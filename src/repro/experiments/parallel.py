"""Process-pool sweep execution.

:func:`run_sweep_parallel` shards the cells of a
:class:`~repro.experiments.spec.SweepSpec` across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Several properties make the
parallel table interchangeable with the serial one:

* **Deterministic seeds** — per-cell seeds are derived by
  :meth:`SweepSpec.cells` from the sweep seed and the cell index, and
  per-replicate seeds from the cell seed, so no seed depends on which worker
  runs a cell or when.
* **Chunked distribution** — cells are submitted in contiguous chunks (a few
  per worker) to amortise pickling and process start-up over many small
  cells.
* **In-order incremental collection** — finished chunks are buffered and
  flushed to the output table in cell order as soon as the next contiguous
  chunk is available, so ``progress`` fires once per cell in the same order
  as the serial runner and the resulting table is row-for-row identical to
  ``run_sweep``'s (up to wall-clock timings).
* **Columnar result transfer** — a cell's rows share one schema (the spec
  fixes the columns), so workers ship each cell as one packed batch: the key
  tuple once plus per-key value columns, instead of ``n_replicates``
  separate dicts each repeating every key string.  With
  ``transfer="shm"``/``"auto"`` the packed chunk additionally bypasses the
  executor's result queue: the worker writes it into one
  :mod:`multiprocessing.shared_memory` segment (numeric columns as raw
  arrays, object columns pickled — see :mod:`repro.experiments.shm`) and
  only the segment name travels through the queue.  The classic pickled
  transfer is retained as the fallback and the two transports produce
  identical rows, so the parent's in-order flush is transport-oblivious.
* **Checkpoint/resume** — with ``checkpoint_dir=`` every completed cell is
  streamed to a ``metrics.jsonl`` record keyed by the cell's content hash
  (:func:`~repro.experiments.spec.spec_hash`) next to a provenance
  ``manifest.json`` (see :mod:`repro.experiments.checkpoint`).  A rerun
  pointed at the same directory skips the recorded cells and splices their
  rows into the table at the right positions, so a killed sweep resumes
  into a table row-for-row identical to an uninterrupted run.
* **Attributed failures** — a cell that raises inside a worker surfaces as
  :class:`SweepCellError` naming the cell and its index; the parent then
  cancels every not-yet-started chunk instead of letting the pool run to
  completion, lets in-flight chunks finish, and flushes the completed
  contiguous prefix (checkpointed when a ``checkpoint_dir`` is set, so the
  work is recoverable) before re-raising.

Workers inherit nothing mutable: each one re-imports the library and receives
pickled frozen specs, which keeps the executor oblivious to interpreter state.
Variant cells need no special handling: the spec's frozen
:class:`~repro.core.variants.VariantSpec` (and its ``max_steps`` budget)
pickles with the rest, and each worker routes it onto the scalar or ensemble
variant engine exactly as the serial runner would.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, SweepSpec

#: Accepted values for ``run_sweep_parallel``'s ``transfer`` parameter.
TRANSFER_MODES = ("auto", "shm", "pickle")


class SweepCellError(ExperimentError):
    """One sweep cell failed inside a worker, with the cell identified.

    Carries ``cell_index`` and ``cell_name`` so a crashed sweep names the
    offending cell instead of surfacing an anonymous pool traceback; the
    original exception is summarised in the message (tracebacks do not
    survive the pickle transfer back to the parent, the cause string does).
    """

    def __init__(
        self,
        message: str,
        cell_index: Optional[int] = None,
        cell_name: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.cell_index = cell_index
        self.cell_name = cell_name

    def __reduce__(self):
        """Pickle support: rebuild with the identity attributes intact."""
        return (
            type(self),
            (self.args[0] if self.args else "", self.cell_index, self.cell_name),
        )


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given.

    Uses the CPUs this process may actually run on
    (``os.sched_getaffinity``), not the machine-wide ``os.cpu_count`` —
    inside containers and cgroup/affinity-limited CI runners the two differ,
    and sizing the pool by the machine oversubscribes the quota.  Falls back
    to ``os.cpu_count()`` where affinity masks are unavailable (macOS,
    Windows).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Contiguous cells per task: aim for ~4 tasks per worker.

    Small chunks balance load across heterogeneous cell costs; the floor of
    one keeps single-cell sweeps valid.
    """
    return max(1, n_cells // (4 * workers))


def pack_rows(rows: list[dict[str, object]]) -> dict[str, object]:
    """Columnar encoding of uniform-schema rows for cheap pickling.

    One cell's rows always share their key set (the spec fixes the columns),
    so the batch carries the keys once and one value column per key.  Rows
    with diverging schemas — not produced by the runner, but tolerated for
    robustness — fall back to the raw list untouched.
    """
    if not rows:
        return {"n": 0}
    keys = list(rows[0].keys())
    if any(list(row.keys()) != keys for row in rows[1:]):
        return {"rows": rows}
    return {
        "n": len(rows),
        "keys": keys,
        "columns": [[row[key] for row in rows] for key in keys],
    }


def unpack_rows(packed: dict[str, object]) -> list[dict[str, object]]:
    """Inverse of :func:`pack_rows`; rebuilds the rows in their packed order."""
    if "rows" in packed:
        return packed["rows"]  # non-uniform fallback, shipped verbatim
    if not packed["n"]:
        return []
    return [
        dict(zip(packed["keys"], values)) for values in zip(*packed["columns"])
    ]


def _run_cell(
    index: int, spec: ExperimentSpec, ensemble_size: Optional[int]
) -> list[dict[str, object]]:
    """Run one cell, wrapping any failure with the cell's identity."""
    from repro.experiments.runner import run_experiment

    try:
        return run_experiment(spec, ensemble_size=ensemble_size).rows
    except Exception as exc:
        raise SweepCellError(
            f"sweep cell {index} ({spec.name!r}) failed: "
            f"{type(exc).__name__}: {exc}",
            cell_index=index,
            cell_name=spec.name,
        ) from exc


def _run_chunk(
    chunk: list[tuple[int, ExperimentSpec]],
    ensemble_size: Optional[int],
    transfer: str = "pickle",
) -> tuple:
    """Worker entry point: run a chunk of cells, return a tagged payload.

    Each cell's rows travel as one :func:`pack_rows` columnar batch.  The
    payload is ``("shm", name, size)`` when the chunk was written into a
    shared-memory segment, or ``("pickle", [(index, batch), ...])`` when it
    rides the executor's result queue — including whenever shared memory is
    requested but unusable on this host, the retained fallback.
    """
    results = [
        (index, pack_rows(_run_cell(index, spec, ensemble_size)))
        for index, spec in chunk
    ]
    if transfer == "shm":
        try:
            from repro.experiments import shm as shm_transfer

            name, size = shm_transfer.encode_chunk(results)
            return ("shm", name, size)
        except (ImportError, OSError):
            pass
    return ("pickle", results)


def _payload_batches(payload: tuple) -> list[tuple[int, dict[str, object]]]:
    """Decode a worker payload into its ``(index, packed_batch)`` pairs."""
    if payload[0] == "shm":
        from repro.experiments import shm as shm_transfer

        return shm_transfer.decode_chunk(payload[1], payload[2])
    return payload[1]


def _harvest_completed(futures, collected) -> None:
    """Move successfully finished futures' batches into ``collected``.

    Called on the error path after the pool has shut down: chunks that were
    already in flight when a sibling failed have run to completion, and their
    rows belong to the completed prefix.  Futures that failed or were
    cancelled stay in ``futures``; best effort — harvesting must not mask the
    original failure.
    """
    for future in list(futures):
        if not future.done() or future.cancelled():
            continue
        try:
            payload = future.result()
        except BaseException:
            continue
        futures.discard(future)
        try:
            for index, packed in _payload_batches(payload):
                collected[index] = unpack_rows(packed)
        except Exception:
            continue


def _discard_unread(futures) -> None:
    """Release shared-memory segments held by never-consumed futures.

    Called on the error path after the pool has shut down: any chunk that
    finished but was never decoded may still own a segment, which would
    otherwise outlive the sweep.  Best effort — cleanup must not mask the
    original failure.
    """
    for future in futures:
        if not future.done() or future.cancelled():
            continue
        try:
            payload = future.result()
        except BaseException:
            continue
        if payload[0] == "shm":
            try:
                from repro.experiments import shm as shm_transfer

                shm_transfer.discard_chunk(payload[1])
            except (ImportError, OSError):
                pass


def run_sweep_parallel(
    sweep: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    chunk_size: Optional[int] = None,
    ensemble_size: Optional[int] = None,
    transfer: str = "auto",
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> ResultTable:
    """Run a sweep's cells on a process pool; rows match the serial runner.

    Parameters
    ----------
    sweep:
        The sweep to expand and run.
    workers:
        Pool size; ``None`` uses every CPU this process may run on
        (affinity-aware, see :func:`default_worker_count`) and ``1`` runs
        inline (no pool, useful as the deterministic baseline in tests).
    progress:
        Called once per cell, in cell order, as results are collected —
        including for cells resumed from a checkpoint.
    chunk_size:
        Contiguous cells per worker task; defaults to
        :func:`default_chunk_size` over the cells still to run.
    ensemble_size:
        When > 1, workers run each cell's replicates through the vectorized
        :class:`~repro.core.ensemble.EnsembleDynamics` engine in batches of
        this size.
    transfer:
        Result transport: ``"shm"`` ships packed chunks through shared
        memory, ``"pickle"`` through the executor's result queue, and
        ``"auto"`` (default) picks shared memory when the host supports it.
        Both transports produce identical rows.
    checkpoint_dir:
        Artifact directory for checkpoint/resume
        (:class:`~repro.experiments.checkpoint.SweepCheckpoint`).  Completed
        cells are streamed to ``metrics.jsonl`` as they flush; cells whose
        spec hash already has a record are skipped and their recorded rows
        spliced in, so a killed sweep resumes into an identical table.
    """
    if workers is not None and workers <= 0:
        raise ExperimentError(f"workers must be positive, got {workers}")
    if chunk_size is not None and chunk_size <= 0:
        raise ExperimentError(f"chunk_size must be positive, got {chunk_size}")
    if transfer not in TRANSFER_MODES:
        raise ExperimentError(
            f"transfer must be one of {TRANSFER_MODES}, got {transfer!r}"
        )
    cells = list(sweep.cells())

    checkpoint = None
    resumed: dict[int, list[dict[str, object]]] = {}
    if checkpoint_dir is not None:
        from repro.experiments.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(checkpoint_dir, cells, sweep=sweep)
        resumed = checkpoint.resumed_rows()
    resumed_indices = set(resumed)
    pending_cells = [
        (index, cell)
        for index, cell in enumerate(cells)
        if index not in resumed_indices
    ]

    workers = workers if workers is not None else default_worker_count()
    workers = min(workers, len(pending_cells)) or 1

    table = ResultTable()
    if workers == 1:
        for index, cell in enumerate(cells):
            if index in resumed_indices:
                rows = resumed[index]
            else:
                rows = _run_cell(index, cell, ensemble_size)
                if checkpoint is not None:
                    checkpoint.record(index, cell, rows)
            table.extend(rows)
            if progress is not None:
                progress(cell)
        return table

    if transfer in ("shm", "auto"):
        from repro.experiments import shm as shm_transfer

        # The availability probe runs before the pool forks on purpose: it
        # starts the parent's multiprocessing resource tracker, which the
        # workers then inherit, so worker-side segment registrations and the
        # parent's unlinks reach the same tracker (no spurious leak warnings
        # at worker shutdown).  Hosts without usable shared memory fall back
        # to the retained pickle transfer.
        transfer = "shm" if shm_transfer.shm_available() else "pickle"

    if chunk_size is None:
        chunk_size = default_chunk_size(len(pending_cells), workers)
    chunks = [
        pending_cells[i : i + chunk_size]
        for i in range(0, len(pending_cells), chunk_size)
    ]

    collected: dict[int, list[dict[str, object]]] = dict(resumed)
    next_index = 0

    def flush_prefix() -> None:
        """Flush every contiguous completed prefix, in cell order.

        Newly completed cells are checkpointed as they flush (resumed cells
        already have their record); ``progress`` fires for both, preserving
        the serial runner's once-per-cell in-order contract.
        """
        nonlocal next_index
        while next_index in collected:
            rows = collected.pop(next_index)
            if checkpoint is not None and next_index not in resumed_indices:
                checkpoint.record(next_index, cells[next_index], rows)
            table.extend(rows)
            if progress is not None:
                progress(cells[next_index])
            next_index += 1

    with ProcessPoolExecutor(max_workers=workers) as pool:
        unconsumed = {
            pool.submit(_run_chunk, chunk, ensemble_size, transfer)
            for chunk in chunks
        }
        pending = set(unconsumed)
        try:
            flush_prefix()  # a resumed prefix is available immediately
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    payload = future.result()
                    unconsumed.discard(future)
                    for index, packed in _payload_batches(payload):
                        collected[index] = unpack_rows(packed)
                flush_prefix()
        except BaseException:
            # A failing cell must not discard finished work or leave the
            # rest of the sweep running: cancel queued chunks (the shutdown
            # waits for in-flight ones to finish), harvest their results,
            # flush the completed contiguous prefix (recoverable via
            # checkpoint/resume), and release unread shared-memory segments
            # before re-raising the attributed error.
            pool.shutdown(cancel_futures=True)
            try:
                _harvest_completed(unconsumed, collected)
                flush_prefix()
            except Exception:
                pass  # never mask the original failure with flush errors
            _discard_unread(unconsumed)
            raise
    return table
