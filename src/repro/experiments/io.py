"""Persistence of experiment results.

The benchmark harness writes CSV for quick inspection; this module adds a
JSON round-trip that preserves types (ints stay ints, booleans stay booleans)
and a small manifest format bundling a result table with the configuration
and seed information needed to regenerate it.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.experiments.results import ResultTable
from repro.types import FlipRule, SchedulerKind

PathLike = Union[str, Path]


def json_default(value: object) -> object:
    """JSON encoder fallback for numpy scalars and library enums.

    Shared by the table/manifest writers here and the sweep checkpoint
    stream (:mod:`repro.experiments.checkpoint`), so every artifact the
    experiment harness persists coerces exotic values the same way.
    """
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


#: Backwards-compatible alias (the helper predates its public use).
_json_default = json_default


def save_table(table: ResultTable, path: PathLike) -> Path:
    """Write a result table to ``path`` as a JSON list of row objects."""
    if len(table) == 0:
        raise ExperimentError("cannot save an empty result table")
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(table.rows, handle, indent=2, default=_json_default)
    return path


def load_table(path: PathLike) -> ResultTable:
    """Read a result table previously written by :func:`save_table`."""
    path = Path(path)
    with open(path) as handle:
        rows = json.load(handle)
    if not isinstance(rows, list):
        raise ExperimentError(f"{path} does not contain a JSON list of rows")
    return ResultTable(rows)


def config_to_dict(config: ModelConfig) -> dict[str, object]:
    """Serialise a :class:`ModelConfig` to a plain JSON-friendly dict."""
    data = asdict(config)
    data["scheduler"] = config.scheduler.value
    data["flip_rule"] = config.flip_rule.value
    # Derived fields are recomputed on load.
    data.pop("neighborhood_agents", None)
    data.pop("happiness_threshold", None)
    return data


def config_from_dict(data: dict[str, object]) -> ModelConfig:
    """Inverse of :func:`config_to_dict`."""
    payload = dict(data)
    payload["scheduler"] = SchedulerKind(payload.get("scheduler", "continuous"))
    payload["flip_rule"] = FlipRule(payload.get("flip_rule", "only_if_happy"))
    return ModelConfig(**payload)


def save_manifest(
    path: PathLike,
    table: ResultTable,
    config: Optional[ModelConfig] = None,
    name: str = "experiment",
    seed: Optional[int] = None,
    notes: str = "",
) -> Path:
    """Bundle a result table with its provenance into one JSON file.

    The manifest records the library version, the experiment name, the model
    configuration (if one applies globally), the master seed and free-form
    notes, so a results file found later can be traced back to the code and
    parameters that produced it.
    """
    if len(table) == 0:
        raise ExperimentError("cannot save an empty result table")
    manifest = {
        "format": "repro-experiment-manifest",
        "version": 1,
        "library_version": __version__,
        "name": name,
        "seed": seed,
        "notes": notes,
        "config": config_to_dict(config) if config is not None else None,
        "rows": table.rows,
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, default=_json_default)
    return path


def load_manifest(path: PathLike) -> dict[str, object]:
    """Load a manifest written by :func:`save_manifest`.

    Returns a dict with the original metadata, the ``config`` rebuilt as a
    :class:`ModelConfig` (or ``None``) and the rows as a :class:`ResultTable`.
    """
    path = Path(path)
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != "repro-experiment-manifest":
        raise ExperimentError(f"{path} is not a repro experiment manifest")
    result = dict(manifest)
    result["table"] = ResultTable(manifest.get("rows", []))
    config_data = manifest.get("config")
    result["config"] = config_from_dict(config_data) if config_data else None
    return result
