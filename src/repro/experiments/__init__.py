"""Experiment harness: specs, runners, result tables and paper experiments.

Execution model
---------------
An :class:`ExperimentSpec` names one *cell* — a model configuration plus a
replicate count and a master seed — and a :class:`SweepSpec` expands a base
configuration into a grid of cells along the tau / horizon / density axes.
Every replicate seed is derived deterministically (sweep seed → cell seed →
replicate seed), so any row of any table can be reproduced in isolation from
the seed stored in it.

Three execution strategies compose freely on top of that seeding scheme:

* **Serial** (the default): ``run_sweep(sweep)`` runs cells and replicates
  one at a time through the scalar :class:`~repro.core.dynamics.GlauberDynamics`
  engine.  This is the reference everything else must match.
* **Vectorized replicates**: ``run_sweep(sweep, ensemble_size=R)`` batches
  each cell's replicates through
  :class:`~repro.core.ensemble.EnsembleDynamics`, which advances ``R``
  lockstep replicas per NumPy call and produces the same rows as the serial
  path (timings aside).  Pick ``R`` as the cell's replicate count when it is
  modest (≤ 16); for larger replicate counts batches of 8–16 keep the
  working set (a few ``(R, n, n)`` arrays) cache-friendly with most of the
  vectorization benefit.
* **Parallel cells**: ``run_sweep(sweep, workers=N)`` (or
  :func:`run_sweep_parallel` directly) shards cells across a process pool
  with chunked distribution and in-order incremental collection, yielding a
  row-for-row identical table.  Pick ``N`` as the number of physical cores
  for compute-bound sweeps (the default is affinity-aware,
  :func:`default_worker_count`); cells are independent, so efficiency is
  near linear once each worker gets a handful of cells.  Results travel
  back through shared memory where the host supports it (pickle fallback,
  identical rows), and ``checkpoint_dir=`` adds crash-durable
  checkpoint/resume via :class:`SweepCheckpoint` — a killed sweep rerun
  against the same directory skips recorded cells and reproduces the
  uninterrupted table.

The two levers multiply: ``workers=N, ensemble_size=R`` runs N cells
concurrently, each advancing R replicas per vectorized step.
``tests/test_core_ensemble.py`` and ``tests/test_experiments_parallel.py``
pin the equivalences; ``benchmarks/bench_ensemble_throughput.py`` tracks the
speedups.

Variant rules compose with all three strategies: specs carry a
:class:`~repro.core.variants.VariantSpec` (two-sided comfort band, per-type
intolerances) that the runners route onto the matching scalar state or
ensemble engine, with identical rows either way
(``tests/test_core_variant_ensemble.py`` pins the bitwise equivalence,
``benchmarks/bench_variants.py`` the variant-engine throughput).  Because no
variant rule carries the paper's Lyapunov termination guarantee, such specs
must set ``max_flips`` or ``max_steps``; per-replicate ``terminated`` columns
report which runs settled within the budget.

Trajectory recording
--------------------
Specs carry ``record_trajectory`` / ``record_every`` flags (CLI:
``repro sweep --record-trajectory [--record-every K]``).  The scalar engine
records a :class:`~repro.core.dynamics.Trajectory` every ``K`` flips; the
ensemble engine records an :class:`~repro.core.ensemble.EnsembleTrajectory`
— ``(R, samples)`` arrays sampled every ``K`` lockstep rounds, with
``replica(r)`` scalar views — and both feed the same ``traj_*`` summary
columns, which are identical across engines because the summaries only read
the (shared) first/last samples plus energy monotonicity.  Recording is
cheap on either engine: energy and magnetization are incremental counters
(O(1) per flip to maintain, O(1)/O(R) to read), so dense recording no longer
performs per-sample full-grid recomputes.
"""

from repro.experiments.figures import (
    Figure1Result,
    ScalingResult,
    figure1_snapshots,
    figure2_interval_sweep,
    figure3_exponent_table,
    figure6_trigger_table,
    monotonicity_experiment,
    symmetry_experiment,
    theorem1_scaling,
    theorem2_scaling,
)
from repro.experiments.checkpoint import (
    SweepCheckpoint,
    repair_store,
    verify_store,
)
from repro.experiments.faults import FaultPlan, FaultSpec, InjectedFault
from repro.experiments.io import (
    config_from_dict,
    config_to_dict,
    load_manifest,
    load_table,
    save_manifest,
    save_table,
)
from repro.experiments.parallel import (
    SweepCellError,
    default_worker_count,
    run_sweep_parallel,
)
from repro.experiments.shm import segment_ledger
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    aggregate_sweep,
    run_experiment,
    run_replicate,
    run_sweep,
)
from repro.experiments.spec import ExperimentSpec, SweepSpec, spec_hash
from repro.experiments.validation import (
    density_sweep_experiment,
    dynamics_ablation_experiment,
    firewall_experiment,
    kawasaki_comparison_experiment,
    lemma19_unhappy_experiment,
    percolation_substrate_experiment,
    proposition1_experiment,
    radical_expansion_experiment,
)
from repro.experiments.workloads import (
    bench_quick_mode,
    default_tau_grid,
    density_ladder,
    figure1_config,
    full_scale_requested,
    grid_side_for_horizon,
    scaling_horizons,
    sweep_config,
    theorem1_taus,
    theorem2_taus,
)

__all__ = [
    "ExperimentSpec",
    "FaultPlan",
    "FaultSpec",
    "Figure1Result",
    "InjectedFault",
    "ResultTable",
    "ScalingResult",
    "SweepCellError",
    "SweepCheckpoint",
    "SweepSpec",
    "aggregate_sweep",
    "bench_quick_mode",
    "config_from_dict",
    "config_to_dict",
    "default_tau_grid",
    "default_worker_count",
    "density_ladder",
    "density_sweep_experiment",
    "dynamics_ablation_experiment",
    "figure1_config",
    "figure1_snapshots",
    "figure2_interval_sweep",
    "figure3_exponent_table",
    "figure6_trigger_table",
    "firewall_experiment",
    "full_scale_requested",
    "grid_side_for_horizon",
    "kawasaki_comparison_experiment",
    "lemma19_unhappy_experiment",
    "load_manifest",
    "load_table",
    "monotonicity_experiment",
    "percolation_substrate_experiment",
    "proposition1_experiment",
    "radical_expansion_experiment",
    "repair_store",
    "run_experiment",
    "run_replicate",
    "run_sweep",
    "run_sweep_parallel",
    "save_manifest",
    "save_table",
    "scaling_horizons",
    "segment_ledger",
    "spec_hash",
    "sweep_config",
    "symmetry_experiment",
    "theorem1_scaling",
    "theorem1_taus",
    "theorem2_scaling",
    "theorem2_taus",
    "verify_store",
]
