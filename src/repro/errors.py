"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` and
friends coming from misuse of numpy, for example) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A model, experiment or substrate configuration is invalid.

    Raised for out-of-range parameters (e.g. an intolerance outside
    ``[0, 1]``), incompatible combinations (a horizon larger than the grid)
    or malformed planted configurations.
    """


class StateError(ReproError, RuntimeError):
    """An operation was attempted on a model in an incompatible state.

    For example stepping a dynamics engine that has already terminated with
    ``strict=True``, or asking for a trajectory that was never recorded.
    """


class AnalysisError(ReproError, ValueError):
    """A measurement routine received data it cannot analyse.

    Raised when a configuration array has the wrong shape or dtype, or when a
    requested region/agent lies outside the grid.
    """


class PercolationError(ReproError, ValueError):
    """A percolation substrate routine received invalid input.

    Raised for probabilities outside ``[0, 1]``, empty lattices, or
    disconnected endpoints when a path is required.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failure (empty sweep, inconsistent replicates)."""


class ServingError(ReproError, RuntimeError):
    """The artifact store / query layer received an unusable store or query.

    Raised for stores without a usable manifest, malformed query strings,
    ambiguous queries (an unspecified axis the store does not pin to a
    single value), and reproduction runs whose manifest cannot be expanded
    back into executable specs.
    """


class QueryMiss(ServingError):
    """A query could not be answered from the store under the active policy.

    Raised by the query engine under ``on_miss="error"`` when no exact cell
    matches and the nearest cell is farther than the allowed distance (or
    the store has no answerable cells at all).  ``on_miss="compute"``
    schedules a simulation instead of raising.
    """


class StoreDamaged(ServingError):
    """A store failed its startup integrity audit.

    Raised by ``repro serve``/``repro query`` when :func:`verify_store`
    finds problems (torn tails, corrupt lines, CRC mismatches, manifest
    drift) in a store about to be served, naming the damage kinds.  The
    ``--allow-damaged`` opt-out downgrades this to serving only the cells
    that pass the line-level integrity checks.
    """


class ServiceOverload(ServingError):
    """The query service is at its concurrent-compute capacity.

    Raised when a compute-on-miss request finds the compute gate full and no
    degraded (nearest-cell) answer is possible.  The HTTP layer maps it to
    ``429 Too Many Requests`` with a ``Retry-After`` header taken from
    :attr:`retry_after`.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceeded(ServingError):
    """A request's deadline expired while waiting for a shared computation.

    Raised by the single-flight cache when a coalesced request waits past its
    per-request deadline for the leader's computation.  The leader itself is
    never aborted mid-simulation — its answer lands in the cache for the next
    caller — so the deadline bounds *waiting*, not work already underway.
    """


class ServingDegradationWarning(UserWarning):
    """The query service degraded gracefully instead of failing a request.

    Emitted when the compute gate is saturated and a compute-on-miss request
    is answered from the nearest stored cell (flagged ``degraded``) instead
    of running a simulation — the serving-tier analogue of
    :class:`SweepDegradationWarning`, leaving the same auditable trail.
    """


class SweepDegradationWarning(UserWarning):
    """The sweep supervisor degraded gracefully instead of failing.

    Emitted once per degradation step — a hung worker pool killed and
    respawned, the shared-memory transport demoted to pickle after repeated
    failures, or the respawn budget exhausted and the sweep finished
    serially — so a long run leaves an auditable trail explaining why it ran
    slower than configured instead of dying.
    """


class CheckpointWarning(UserWarning):
    """A checkpoint store was readable but not pristine.

    Emitted when the metrics log loader drops a torn, unparseable or
    CRC-mismatched line, naming the file, line number and byte count, so an
    operator can tell a clean resume from a lossy one.
    """
