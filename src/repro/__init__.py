"""repro — a reproduction of "Self-organized Segregation on the Grid".

This package implements the Schelling / zero-temperature Ising segregation
model of Omidvar & Franceschetti (PODC 2017) with Glauber dynamics on a torus,
together with every substrate the paper's analysis relies on (percolation,
first-passage percolation, chemical distances, block renormalisation), the
theoretical thresholds and exponents of Theorems 1 and 2, and an experiment
harness that regenerates the paper's figures.

Quickstart::

    from repro import ModelConfig, simulate, segregation_metrics

    config = ModelConfig.square(side=80, horizon=3, tau=0.45)
    result = simulate(config, seed=0)
    print(segregation_metrics(result.final_spins, config).as_dict())
"""

from repro._version import PAPER, __version__
from repro.analysis import (
    SegregationMetrics,
    almost_monochromatic_radius_map,
    check_firewall_robustness,
    classify_blocks,
    expected_almost_region_size,
    expected_region_size,
    interface_density,
    local_homogeneity,
    monochromatic_radius,
    monochromatic_radius_map,
    segregation_metrics,
    summarize_regions,
    try_expand_radical_region,
    unhappy_fraction,
)
from repro.core import (
    EnsembleDynamics,
    EnsembleRunResult,
    EnsembleTrajectory,
    GlauberDynamics,
    KawasakiDynamics,
    ModelConfig,
    ModelState,
    Simulation,
    SimulationResult,
    TorusGrid,
    VariantSpec,
    lyapunov_energy,
    neighborhood_size,
    planted_radical_region_configuration,
    random_configuration,
    run_ensemble,
    run_to_completion,
    simulate,
)
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    PercolationError,
    ReproError,
    StateError,
)
from repro.experiments import (
    ExperimentSpec,
    ResultTable,
    SweepSpec,
    figure1_snapshots,
    figure2_interval_sweep,
    figure3_exponent_table,
    figure6_trigger_table,
    run_sweep,
    run_sweep_parallel,
    theorem1_scaling,
    theorem2_scaling,
)
from repro.percolation import (
    FirstPassagePercolation,
    SitePercolation,
    chemical_distance,
    estimate_theta,
)
from repro.theory import (
    binary_entropy,
    classify_regime,
    lower_exponent,
    tau1,
    tau2,
    trigger_epsilon,
    upper_exponent,
)
from repro.types import (
    AgentType,
    DynamicsKind,
    FlipRule,
    Regime,
    SchedulerKind,
    VariantKind,
)

__all__ = [
    "AgentType",
    "AnalysisError",
    "ConfigurationError",
    "DynamicsKind",
    "EnsembleDynamics",
    "EnsembleRunResult",
    "EnsembleTrajectory",
    "ExperimentError",
    "ExperimentSpec",
    "FirstPassagePercolation",
    "FlipRule",
    "GlauberDynamics",
    "KawasakiDynamics",
    "ModelConfig",
    "ModelState",
    "PAPER",
    "PercolationError",
    "Regime",
    "ReproError",
    "ResultTable",
    "SchedulerKind",
    "SegregationMetrics",
    "Simulation",
    "SimulationResult",
    "SitePercolation",
    "StateError",
    "SweepSpec",
    "TorusGrid",
    "VariantKind",
    "VariantSpec",
    "__version__",
    "almost_monochromatic_radius_map",
    "binary_entropy",
    "check_firewall_robustness",
    "chemical_distance",
    "classify_blocks",
    "classify_regime",
    "estimate_theta",
    "expected_almost_region_size",
    "expected_region_size",
    "figure1_snapshots",
    "figure2_interval_sweep",
    "figure3_exponent_table",
    "figure6_trigger_table",
    "interface_density",
    "local_homogeneity",
    "lower_exponent",
    "lyapunov_energy",
    "monochromatic_radius",
    "monochromatic_radius_map",
    "neighborhood_size",
    "planted_radical_region_configuration",
    "random_configuration",
    "run_ensemble",
    "run_sweep",
    "run_sweep_parallel",
    "run_to_completion",
    "segregation_metrics",
    "simulate",
    "summarize_regions",
    "tau1",
    "tau2",
    "theorem1_scaling",
    "theorem2_scaling",
    "trigger_epsilon",
    "try_expand_radical_region",
    "unhappy_fraction",
    "upper_exponent",
]
