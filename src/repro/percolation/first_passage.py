"""First-passage percolation with i.i.d. site passage times.

Lemma 7 of the paper bounds the speed at which unhappiness can spread by
comparing the process to first-passage percolation on the renormalised block
lattice with exponential passage times, and then applies Kesten's
concentration theorem (Theorem 3) for the point-to-point passage time
``T_k``.  This module implements that substrate: i.i.d. passage times attached
to sites, shortest passage times by Dijkstra, the time constant
``mu = lim T_k / k`` and a Monte-Carlo check of the ``sqrt(k)`` concentration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import PercolationError
from repro.rng import SeedLike, make_rng
from repro.utils.stats import SummaryStats, summarize

_NEIGHBOR_OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: A passage-time sampler: ``(rng, shape) -> non-negative array of that shape``.
PassageTimeSampler = Callable[[np.random.Generator, tuple[int, int]], np.ndarray]


def exponential_passage_times(mean: float = 1.0) -> PassageTimeSampler:
    """i.i.d. exponential passage times with the given mean.

    The paper's renormalised process uses exponential waiting times with mean
    ``1/N``; rescaling the mean only rescales ``T_k`` linearly, which the
    Lemma 7 proof uses explicitly.
    """
    if mean <= 0:
        raise PercolationError(f"mean must be positive, got {mean}")

    def sampler(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
        return rng.exponential(mean, size=shape)

    return sampler


def uniform_passage_times(low: float = 0.0, high: float = 1.0) -> PassageTimeSampler:
    """i.i.d. uniform passage times on ``[low, high]`` (an alternative F)."""
    if low < 0 or high <= low:
        raise PercolationError(f"need 0 <= low < high, got low={low}, high={high}")

    def sampler(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
        return rng.uniform(low, high, size=shape)

    return sampler


class FirstPassagePercolation:
    """One realisation of site FPP on a rectangular box."""

    def __init__(self, passage_times: np.ndarray) -> None:
        times = np.asarray(passage_times, dtype=float)
        if times.ndim != 2 or times.size == 0:
            raise PercolationError(
                f"passage_times must be a non-empty 2-D array, got shape {times.shape}"
            )
        if np.any(times < 0) or not np.all(np.isfinite(times)):
            raise PercolationError("passage times must be finite and non-negative")
        self.passage_times = times

    @classmethod
    def sample(
        cls,
        n_rows: int,
        n_cols: int,
        sampler: Optional[PassageTimeSampler] = None,
        seed: SeedLike = None,
    ) -> "FirstPassagePercolation":
        """Draw i.i.d. passage times (exponential mean-1 by default)."""
        if sampler is None:
            sampler = exponential_passage_times(1.0)
        rng = make_rng(seed)
        return cls(sampler(rng, (n_rows, n_cols)))

    @property
    def shape(self) -> tuple[int, int]:
        """Box shape ``(n_rows, n_cols)``."""
        return self.passage_times.shape

    def passage_time_field(self, source: tuple[int, int]) -> np.ndarray:
        """Minimum passage time from ``source`` to every site (Dijkstra).

        The passage time of a path is the sum of the passage times of its
        vertices *excluding the source* (so the field is 0 at the source); the
        paper's convention of summing all vertices differs by the constant
        ``t(source)``, which cancels in every difference the lemmas use.
        """
        n_rows, n_cols = self.shape
        source = (source[0] % n_rows, source[1] % n_cols)
        best = np.full(self.shape, np.inf)
        best[source] = 0.0
        visited = np.zeros(self.shape, dtype=bool)
        heap: list[tuple[float, int, int]] = [(0.0, source[0], source[1])]
        while heap:
            time, row, col = heapq.heappop(heap)
            if visited[row, col]:
                continue
            visited[row, col] = True
            for dr, dc in _NEIGHBOR_OFFSETS:
                nr, nc = row + dr, col + dc
                if not (0 <= nr < n_rows and 0 <= nc < n_cols):
                    continue
                if visited[nr, nc]:
                    continue
                candidate = time + self.passage_times[nr, nc]
                if candidate < best[nr, nc]:
                    best[nr, nc] = candidate
                    heapq.heappush(heap, (candidate, nr, nc))
        return best

    def passage_time(self, source: tuple[int, int], target: tuple[int, int]) -> float:
        """Minimum passage time between two sites."""
        field = self.passage_time_field(source)
        n_rows, n_cols = self.shape
        return float(field[target[0] % n_rows, target[1] % n_cols])


@dataclass(frozen=True)
class PassageTimeStudy:
    """Monte-Carlo study of the point-to-point passage time ``T_k``."""

    k: int
    samples: np.ndarray

    def summary(self) -> SummaryStats:
        """Summary statistics of the sampled ``T_k``."""
        return summarize(self.samples)

    @property
    def time_constant_estimate(self) -> float:
        """``E[T_k] / k``, converging to the time constant ``mu``."""
        return float(np.mean(self.samples) / self.k)

    @property
    def normalized_fluctuation(self) -> float:
        """``std(T_k) / sqrt(k)`` — bounded in ``k`` under Kesten's theorem."""
        return float(np.std(self.samples, ddof=1) / np.sqrt(self.k))

    def concentration_probability(self, x: float) -> float:
        """Empirical ``P(|T_k - E[T_k]| > x sqrt(k))`` (Theorem 3's left side)."""
        deviation = np.abs(self.samples - self.samples.mean())
        return float(np.mean(deviation > x * np.sqrt(self.k)))


def study_passage_times(
    k: int,
    n_trials: int,
    sampler: Optional[PassageTimeSampler] = None,
    transverse_margin: int = 6,
    seed: SeedLike = None,
) -> PassageTimeStudy:
    """Sample ``T_k`` — the passage time from the origin to ``k e_1`` — ``n_trials`` times.

    The lattice is a strip of height ``2 * transverse_margin + 1`` so that
    geodesics can wander transversally, which is enough for the time constant
    and fluctuation comparisons used by the E12 benchmark.
    """
    if k <= 0:
        raise PercolationError(f"k must be positive, got {k}")
    if n_trials <= 0:
        raise PercolationError(f"n_trials must be positive, got {n_trials}")
    rng = make_rng(seed)
    height = 2 * transverse_margin + 1
    source = (transverse_margin, 0)
    target = (transverse_margin, k)
    samples = np.empty(n_trials, dtype=float)
    for trial in range(n_trials):
        fpp = FirstPassagePercolation.sample(height, k + 1, sampler, rng)
        samples[trial] = fpp.passage_time(source, target)
    return PassageTimeStudy(k=k, samples=samples)


def time_constant_curve(
    ks: list[int],
    n_trials: int,
    sampler: Optional[PassageTimeSampler] = None,
    seed: SeedLike = None,
) -> list[PassageTimeStudy]:
    """``T_k`` studies for several ``k`` (convergence of ``T_k / k`` to ``mu``)."""
    rng = make_rng(seed)
    return [
        study_passage_times(k, n_trials, sampler=sampler, seed=rng) for k in sorted(ks)
    ]
