"""Percolation substrates used by the paper's proofs and benchmarks."""

from repro.percolation.chemical import (
    StretchEstimate,
    chemical_distance,
    estimate_chemical_stretch,
    l1_distance,
)
from repro.percolation.cluster import (
    RadiusTailEstimate,
    cluster_containing,
    cluster_radius,
    cluster_sizes,
    estimate_radius_tail,
    label_clusters,
    largest_cluster_size,
)
from repro.percolation.first_passage import (
    FirstPassagePercolation,
    PassageTimeStudy,
    exponential_passage_times,
    study_passage_times,
    time_constant_curve,
    uniform_passage_times,
)
from repro.percolation.renormalization import BlockGrid, divisible_block_side
from repro.percolation.site import (
    SQUARE_SITE_CRITICAL_PROBABILITY,
    SitePercolation,
    ThetaEstimate,
    estimate_theta,
    is_supercritical,
)
from repro.percolation.union_find import UnionFind

__all__ = [
    "BlockGrid",
    "FirstPassagePercolation",
    "PassageTimeStudy",
    "RadiusTailEstimate",
    "SQUARE_SITE_CRITICAL_PROBABILITY",
    "SitePercolation",
    "StretchEstimate",
    "ThetaEstimate",
    "UnionFind",
    "chemical_distance",
    "cluster_containing",
    "cluster_radius",
    "cluster_sizes",
    "divisible_block_side",
    "estimate_chemical_stretch",
    "estimate_radius_tail",
    "estimate_theta",
    "exponential_passage_times",
    "is_supercritical",
    "l1_distance",
    "label_clusters",
    "largest_cluster_size",
    "study_passage_times",
    "time_constant_curve",
    "uniform_passage_times",
]
