"""Percolation substrates used by the paper's proofs and benchmarks.

Measurement pipeline
--------------------
Cluster labelling is the hottest measurement path of the whole repository —
it underlies :mod:`repro.analysis.clusters`, :mod:`repro.analysis.segregation`
and every cluster-reporting benchmark — and is fully batched:

* :class:`~repro.percolation.union_find.UnionFind` exposes array APIs next to
  the scalar ones: ``union_many(a, b)`` merges whole edge lists per NumPy
  call (min-index linking, O(log) convergence passes) and ``find_many(idx)``
  resolves whole index arrays with vectorized path compression (active-set
  walk plus path halving).  Scalar and batched calls compose on one
  structure; component counts and sizes stay exact either way.
* :func:`~repro.percolation.cluster.label_clusters` labels 4-connected
  components with zero Python-per-edge/per-site work: horizontal runs are
  collapsed with a running max, run-level edges go through one
  ``union_many`` call and labels come from one ``find_many`` pass.  Output
  is bitwise identical to the scalar reference implementation (kept as
  ``_label_clusters_reference`` and property-tested against it), at >= 10x
  its speed on 512x512 masks (``benchmarks/bench_cluster_labeling.py``).
"""

from repro.percolation.chemical import (
    StretchEstimate,
    chemical_distance,
    estimate_chemical_stretch,
    l1_distance,
)
from repro.percolation.cluster import (
    ClusterBoundingStats,
    RadiusTailEstimate,
    cluster_bounding_stats,
    cluster_containing,
    cluster_radii,
    cluster_radius,
    cluster_sizes,
    estimate_radius_tail,
    label_clusters,
    largest_cluster_size,
)
from repro.percolation.first_passage import (
    FirstPassagePercolation,
    PassageTimeStudy,
    exponential_passage_times,
    study_passage_times,
    time_constant_curve,
    uniform_passage_times,
)
from repro.percolation.renormalization import BlockGrid, divisible_block_side
from repro.percolation.site import (
    SQUARE_SITE_CRITICAL_PROBABILITY,
    SitePercolation,
    ThetaEstimate,
    estimate_theta,
    is_supercritical,
)
from repro.percolation.union_find import UnionFind

__all__ = [
    "BlockGrid",
    "ClusterBoundingStats",
    "FirstPassagePercolation",
    "PassageTimeStudy",
    "RadiusTailEstimate",
    "SQUARE_SITE_CRITICAL_PROBABILITY",
    "SitePercolation",
    "StretchEstimate",
    "ThetaEstimate",
    "UnionFind",
    "chemical_distance",
    "cluster_bounding_stats",
    "cluster_containing",
    "cluster_radii",
    "cluster_radius",
    "cluster_sizes",
    "divisible_block_side",
    "estimate_chemical_stretch",
    "estimate_radius_tail",
    "estimate_theta",
    "exponential_passage_times",
    "is_supercritical",
    "l1_distance",
    "label_clusters",
    "largest_cluster_size",
    "study_passage_times",
    "time_constant_curve",
    "uniform_passage_times",
]
