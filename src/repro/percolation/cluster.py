"""Connected-component analysis of boolean masks on the square lattice.

The paper uses three facts about clusters of open (or "good") sites:
sub-critical clusters have exponentially decaying radius (Grimmett, Theorem
5.4, quoted as Theorem 5), super-critical open clusters contain most sites,
and the geometry of a cluster is captured by its radius in l1 distance.
This module provides the cluster labelling and per-cluster statistics that the
substrate benchmarks and the segregation analysis both rely on.

Connectivity is 4-neighbour (site percolation on ``Z^2``), optionally with
toroidal wrap-around because the model lives on a torus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PercolationError
from repro.percolation.union_find import UnionFind
from repro.rng import SeedLike, make_rng


def label_clusters(mask: np.ndarray, periodic: bool = False) -> np.ndarray:
    """Label 4-connected components of ``mask``.

    Returns an integer array of the same shape: ``-1`` outside the mask and a
    component id in ``0 .. n_components - 1`` inside, ids ordered by first
    (row-major) appearance.

    All per-edge and per-site work is batched: open lattice edges are merged
    with one :meth:`~repro.percolation.union_find.UnionFind.union_many` call
    and open sites are resolved with one
    :meth:`~repro.percolation.union_find.UnionFind.find_many` call, so the
    labelling cost is a handful of array passes regardless of the mask.  The
    label arrays are bitwise identical to :func:`_label_clusters_reference`.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PercolationError(f"mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    labels = np.full(mask.shape, -1, dtype=np.int64)
    open_indices = np.flatnonzero(mask.ravel())
    if open_indices.size == 0:
        return labels

    index = np.arange(mask.size, dtype=np.int64).reshape(mask.shape)
    # Horizontal runs first: a running max of run-start indices gives every
    # open cell the flat index of the leftmost cell of its run, so each run
    # collapses in a single union pass (depth-1 trees rooted at the run
    # start) and the remaining edges only connect run starts.
    left_open = np.zeros_like(mask)
    left_open[:, 1:] = mask[:, :-1]
    is_start = mask & ~left_open
    run_start = np.maximum.accumulate(np.where(is_start, index, -1), axis=1)

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    in_run = mask & left_open
    sources.append(run_start[in_run])
    targets.append(index[in_run])
    vertical = mask[:-1, :] & mask[1:, :]
    sources.append(run_start[:-1, :][vertical])
    targets.append(run_start[1:, :][vertical])
    if periodic:
        wrap_cols = mask[:, -1] & mask[:, 0]
        sources.append(run_start[:, -1][wrap_cols])
        targets.append(run_start[:, 0][wrap_cols])
        wrap_rows = mask[-1, :] & mask[0, :]
        sources.append(run_start[-1, :][wrap_rows])
        targets.append(run_start[0, :][wrap_rows])

    uf = UnionFind(mask.size)
    uf.union_many(np.concatenate(sources), np.concatenate(targets))
    roots = uf.find_many(open_indices)
    # Batched unions on a fresh structure make each cluster's representative
    # its minimum flat index, so ranking the distinct roots in index order is
    # exactly the reference loop's first-row-major-appearance ordering.
    is_root = np.zeros(mask.size, dtype=bool)
    is_root[roots] = True
    appearance_rank = np.cumsum(is_root) - 1
    labels.ravel()[open_indices] = appearance_rank[roots]
    return labels


def _label_clusters_reference(mask: np.ndarray, periodic: bool = False) -> np.ndarray:
    """Scalar reference implementation of :func:`label_clusters`.

    One Python-level union per open edge and one find per open site.  Kept as
    the equivalence oracle for the property tests and the labelling benchmark;
    production code should always call :func:`label_clusters`.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PercolationError(f"mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    uf = UnionFind(mask.size)
    flat = mask.ravel()

    def merge(a_rows, a_cols, b_rows, b_cols) -> None:
        a_idx = (a_rows * n_cols + a_cols).ravel()
        b_idx = (b_rows * n_cols + b_cols).ravel()
        both = flat[a_idx] & flat[b_idx]
        for a, b in zip(a_idx[both], b_idx[both]):
            uf.union(int(a), int(b))

    rows = np.arange(n_rows)
    cols = np.arange(n_cols)
    grid_rows, grid_cols = np.meshgrid(rows, cols, indexing="ij")
    # Horizontal edges.
    merge(grid_rows[:, :-1], grid_cols[:, :-1], grid_rows[:, 1:], grid_cols[:, 1:])
    # Vertical edges.
    merge(grid_rows[:-1, :], grid_cols[:-1, :], grid_rows[1:, :], grid_cols[1:, :])
    if periodic:
        merge(grid_rows[:, -1:], grid_cols[:, -1:], grid_rows[:, :1], grid_cols[:, :1])
        merge(grid_rows[-1:, :], grid_cols[-1:, :], grid_rows[:1, :], grid_cols[:1, :])

    labels = np.full(mask.shape, -1, dtype=np.int64)
    next_label = 0
    root_to_label: dict[int, int] = {}
    open_indices = np.flatnonzero(flat)
    for index in open_indices:
        root = uf.find(int(index))
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels.ravel()[index] = root_to_label[root]
    return labels


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of every labelled cluster, indexed by label id."""
    labels = np.asarray(labels)
    valid = labels[labels >= 0]
    if valid.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(valid)


def largest_cluster_size(labels: np.ndarray) -> int:
    """Size of the largest cluster (0 when the mask is empty)."""
    sizes = cluster_sizes(labels)
    return int(sizes.max()) if sizes.size else 0


def cluster_containing(labels: np.ndarray, site: tuple[int, int]) -> np.ndarray:
    """Boolean mask of the cluster containing ``site`` (empty if site is closed)."""
    labels = np.asarray(labels)
    label = labels[site]
    if label < 0:
        return np.zeros_like(labels, dtype=bool)
    return labels == label


def _fold_l1_offsets(
    dr: np.ndarray, dc: np.ndarray, shape: tuple[int, int], periodic: bool
) -> np.ndarray:
    """Per-site l1 distances from absolute row/col offsets, torus-aware."""
    if periodic:
        dr = np.minimum(dr, shape[0] - dr)
        dc = np.minimum(dc, shape[1] - dc)
    return dr + dc


def cluster_radii(
    labels: np.ndarray, centers: np.ndarray, periodic: bool = False
) -> np.ndarray:
    """l1 radii of *every* labelled cluster measured from per-cluster centers.

    ``centers`` has shape ``(n_clusters, 2)``: row/column of the measurement
    origin of each cluster id (any value works for clusters the caller does
    not care about — their entries are computed but carry no meaning).  The
    result is an ``(n_clusters,)`` array whose entry ``c`` is
    ``max{|x - centers[c]|_1 : labels[x] == c}``, the paper's
    ``sup{Delta(0, x) : x in cluster}``.

    All clusters resolve in one label-indexed reduction pass: per-site l1
    distances to the owning cluster's center followed by a single
    ``np.maximum.at`` scatter — no per-cluster Python work, which is what
    makes the batched :func:`estimate_radius_tail` and the per-cluster
    geometry of large masks cheap.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise PercolationError(f"labels must be 2-D, got shape {labels.shape}")
    n_clusters = int(labels.max()) + 1 if labels.size else 0
    centers = np.asarray(centers, dtype=np.int64)
    if centers.shape != (n_clusters, 2):
        raise PercolationError(
            f"centers must have shape ({n_clusters}, 2), got {centers.shape}"
        )
    radii = np.zeros(n_clusters, dtype=np.int64)
    if n_clusters == 0:
        return radii
    rows, cols = np.nonzero(labels >= 0)
    owners = labels[rows, cols]
    distances = _fold_l1_offsets(
        np.abs(rows - centers[owners, 0]),
        np.abs(cols - centers[owners, 1]),
        labels.shape,
        periodic,
    )
    np.maximum.at(radii, owners, distances)
    return radii


@dataclass(frozen=True)
class ClusterBoundingStats:
    """Per-cluster sizes and (open-boundary) bounding boxes, indexed by label.

    All arrays have one entry per cluster id.  The bounding boxes ignore
    toroidal wrap-around — they describe each cluster's extent in array
    coordinates, the form size/extent screens over labelled masks consume
    (e.g. discarding clusters too small or too flat to reach a target
    radius before any per-cluster work).
    """

    sizes: np.ndarray
    min_row: np.ndarray
    max_row: np.ndarray
    min_col: np.ndarray
    max_col: np.ndarray

    @property
    def heights(self) -> np.ndarray:
        """Number of rows each cluster's bounding box spans."""
        return self.max_row - self.min_row + 1

    @property
    def widths(self) -> np.ndarray:
        """Number of columns each cluster's bounding box spans."""
        return self.max_col - self.min_col + 1


def cluster_bounding_stats(labels: np.ndarray) -> ClusterBoundingStats:
    """Sizes and bounding boxes of every labelled cluster in one reduction pass.

    One ``np.bincount`` resolves all sizes and four ``np.minimum.at`` /
    ``np.maximum.at`` scatters resolve all bounding boxes, regardless of how
    many clusters the mask contains.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise PercolationError(f"labels must be 2-D, got shape {labels.shape}")
    rows, cols = np.nonzero(labels >= 0)
    owners = labels[rows, cols]
    n_clusters = int(owners.max()) + 1 if owners.size else 0
    sizes = np.bincount(owners, minlength=n_clusters)
    min_row = np.full(n_clusters, labels.shape[0], dtype=np.int64)
    max_row = np.full(n_clusters, -1, dtype=np.int64)
    min_col = np.full(n_clusters, labels.shape[1], dtype=np.int64)
    max_col = np.full(n_clusters, -1, dtype=np.int64)
    np.minimum.at(min_row, owners, rows)
    np.maximum.at(max_row, owners, rows)
    np.minimum.at(min_col, owners, cols)
    np.maximum.at(max_col, owners, cols)
    return ClusterBoundingStats(
        sizes=sizes,
        min_row=min_row,
        max_row=max_row,
        min_col=min_col,
        max_col=max_col,
    )


def cluster_radius(
    labels: np.ndarray, site: tuple[int, int], periodic: bool = False
) -> int:
    """l1 radius of the cluster containing ``site`` measured from ``site``.

    Matches the paper's definition ``sup{Delta(0, x) : x in cluster}`` used in
    Lemma 14 and Grimmett's Theorem 5.4.  Returns ``-1`` when ``site`` is not
    in the mask.  The single-site form of :func:`cluster_radii`'s reduction
    (same distance folding), restricted to the one cluster's members so that
    scalar query loops — e.g. the Lemma 14 block analysis — never pay the
    all-clusters reduction per call; batched call sites should use
    :func:`cluster_radii` instead.
    """
    member = cluster_containing(labels, site)
    if not member[site]:
        return -1
    rows, cols = np.nonzero(member)
    distances = _fold_l1_offsets(
        np.abs(rows - site[0]), np.abs(cols - site[1]), member.shape, periodic
    )
    return int(distances.max())


#: Lattice-cell budget per batched radius-tail chunk (draw + composite +
#: labels stay within a few megabytes regardless of ``n_trials``).
_RADIUS_TAIL_CHUNK_CELLS = 1 << 20


@dataclass(frozen=True)
class RadiusTailEstimate:
    """Monte-Carlo estimate of ``P(cluster radius >= k)`` for several ``k``."""

    p_open: float
    radii: np.ndarray
    probabilities: np.ndarray
    n_trials: int

    def decay_rate(self) -> float:
        """Estimated exponential decay rate ``psi`` from a log-linear fit.

        Grimmett's Theorem 5.4 guarantees ``P(A_k) < e^{-k psi(p)}`` below
        criticality; the fitted slope of ``-log P`` against ``k`` estimates
        ``psi``.  Radii whose estimated probability is zero are ignored.
        """
        keep = self.probabilities > 0
        if keep.sum() < 2:
            raise PercolationError(
                "not enough non-zero tail probabilities to fit a decay rate"
            )
        slope, _ = np.polyfit(self.radii[keep], -np.log(self.probabilities[keep]), 1)
        return float(slope)


def estimate_radius_tail(
    p_open: float,
    radii: list[int],
    box_radius: int,
    n_trials: int,
    seed: SeedLike = None,
) -> RadiusTailEstimate:
    """Monte-Carlo estimate of the origin cluster radius tail at density ``p_open``.

    Draws ``n_trials`` independent Bernoulli configurations on a
    ``(2 box_radius + 1)``-sided box, conditions on the origin being open, and
    records how often the origin's cluster reaches l1 distance ``k`` for each
    requested ``k``.  Used by the E12 substrate benchmark to exhibit the
    exponential decay below criticality.

    Trials run batched in bounded chunks: each chunk is one
    ``(chunk, side, side)`` draw (sequential chunk draws consume the RNG
    stream exactly like per-trial draws), one labelling pass over a
    composite mask with a closed separator row between consecutive trials
    (so clusters cannot bridge them), and one :func:`cluster_radii`
    reduction for every origin cluster at once.  The chunk size caps memory
    at a few megabytes however large ``n_trials`` is.  Bitwise identical to
    the retained per-trial loop :func:`_estimate_radius_tail_reference`
    under a fixed seed.
    """
    if not 0.0 <= p_open <= 1.0:
        raise PercolationError(f"p_open must lie in [0, 1], got {p_open}")
    if any(k > box_radius for k in radii):
        raise PercolationError("requested radii exceed the simulation box radius")
    rng = make_rng(seed)
    side = 2 * box_radius + 1
    radii_arr = np.asarray(sorted(radii), dtype=int)
    hits = np.zeros(radii_arr.size, dtype=np.int64)
    # Bound the per-chunk footprint (draw + composite + labels) to a few MB.
    chunk_size = max(_RADIUS_TAIL_CHUNK_CELLS // (side * side), 1)
    for chunk_start in range(0, max(n_trials, 0), chunk_size):
        chunk = min(chunk_size, n_trials - chunk_start)
        batch = rng.random((chunk, side, side)) < p_open
        batch[:, box_radius, box_radius] = True  # condition on the origin being open

        # Composite mask: trials stacked vertically with one always-closed
        # separator row in between, so a single (open-boundary) labelling
        # pass resolves every trial without clusters leaking across trials.
        composite = np.zeros((chunk, side + 1, side), dtype=bool)
        composite[:, :side, :] = batch
        labels = label_clusters(composite.reshape(chunk * (side + 1), side)[:-1])

        origin_rows = np.arange(chunk) * (side + 1) + box_radius
        origin_labels = labels[origin_rows, box_radius]
        n_clusters = int(labels.max()) + 1
        centers = np.zeros((n_clusters, 2), dtype=np.int64)
        centers[origin_labels, 0] = origin_rows
        centers[origin_labels, 1] = box_radius
        origin_radii = cluster_radii(labels, centers)[origin_labels]
        hits += (origin_radii[:, None] >= radii_arr[None, :]).sum(axis=0)
    return RadiusTailEstimate(
        p_open=p_open,
        radii=radii_arr,
        probabilities=hits / max(n_trials, 1),
        n_trials=max(n_trials, 0),
    )


def _estimate_radius_tail_reference(
    p_open: float,
    radii: list[int],
    box_radius: int,
    n_trials: int,
    seed: SeedLike = None,
) -> RadiusTailEstimate:
    """Per-trial loop — the reference for :func:`estimate_radius_tail`.

    One mask draw, labelling pass and origin :func:`cluster_radius` query per
    trial.  Retained as the equivalence oracle for the property tests;
    production code should always call the batched estimator.
    """
    if not 0.0 <= p_open <= 1.0:
        raise PercolationError(f"p_open must lie in [0, 1], got {p_open}")
    if any(k > box_radius for k in radii):
        raise PercolationError("requested radii exceed the simulation box radius")
    rng = make_rng(seed)
    side = 2 * box_radius + 1
    origin = (box_radius, box_radius)
    radii_arr = np.asarray(sorted(radii), dtype=int)
    hits = np.zeros(radii_arr.size, dtype=np.int64)
    for _ in range(n_trials):
        mask = rng.random((side, side)) < p_open
        mask[origin] = True  # condition on the origin being open
        labels = label_clusters(mask)
        radius = cluster_radius(labels, origin)
        hits += radius >= radii_arr
    return RadiusTailEstimate(
        p_open=p_open,
        radii=radii_arr,
        probabilities=hits / max(n_trials, 1),
        n_trials=max(n_trials, 0),
    )
