"""Connected-component analysis of boolean masks on the square lattice.

The paper uses three facts about clusters of open (or "good") sites:
sub-critical clusters have exponentially decaying radius (Grimmett, Theorem
5.4, quoted as Theorem 5), super-critical open clusters contain most sites,
and the geometry of a cluster is captured by its radius in l1 distance.
This module provides the cluster labelling and per-cluster statistics that the
substrate benchmarks and the segregation analysis both rely on.

Connectivity is 4-neighbour (site percolation on ``Z^2``), optionally with
toroidal wrap-around because the model lives on a torus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PercolationError
from repro.percolation.union_find import UnionFind


def label_clusters(mask: np.ndarray, periodic: bool = False) -> np.ndarray:
    """Label 4-connected components of ``mask``.

    Returns an integer array of the same shape: ``-1`` outside the mask and a
    component id in ``0 .. n_components - 1`` inside, ids ordered by first
    (row-major) appearance.

    All per-edge and per-site work is batched: open lattice edges are merged
    with one :meth:`~repro.percolation.union_find.UnionFind.union_many` call
    and open sites are resolved with one
    :meth:`~repro.percolation.union_find.UnionFind.find_many` call, so the
    labelling cost is a handful of array passes regardless of the mask.  The
    label arrays are bitwise identical to :func:`_label_clusters_reference`.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PercolationError(f"mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    labels = np.full(mask.shape, -1, dtype=np.int64)
    open_indices = np.flatnonzero(mask.ravel())
    if open_indices.size == 0:
        return labels

    index = np.arange(mask.size, dtype=np.int64).reshape(mask.shape)
    # Horizontal runs first: a running max of run-start indices gives every
    # open cell the flat index of the leftmost cell of its run, so each run
    # collapses in a single union pass (depth-1 trees rooted at the run
    # start) and the remaining edges only connect run starts.
    left_open = np.zeros_like(mask)
    left_open[:, 1:] = mask[:, :-1]
    is_start = mask & ~left_open
    run_start = np.maximum.accumulate(np.where(is_start, index, -1), axis=1)

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    in_run = mask & left_open
    sources.append(run_start[in_run])
    targets.append(index[in_run])
    vertical = mask[:-1, :] & mask[1:, :]
    sources.append(run_start[:-1, :][vertical])
    targets.append(run_start[1:, :][vertical])
    if periodic:
        wrap_cols = mask[:, -1] & mask[:, 0]
        sources.append(run_start[:, -1][wrap_cols])
        targets.append(run_start[:, 0][wrap_cols])
        wrap_rows = mask[-1, :] & mask[0, :]
        sources.append(run_start[-1, :][wrap_rows])
        targets.append(run_start[0, :][wrap_rows])

    uf = UnionFind(mask.size)
    uf.union_many(np.concatenate(sources), np.concatenate(targets))
    roots = uf.find_many(open_indices)
    # Batched unions on a fresh structure make each cluster's representative
    # its minimum flat index, so ranking the distinct roots in index order is
    # exactly the reference loop's first-row-major-appearance ordering.
    is_root = np.zeros(mask.size, dtype=bool)
    is_root[roots] = True
    appearance_rank = np.cumsum(is_root) - 1
    labels.ravel()[open_indices] = appearance_rank[roots]
    return labels


def _label_clusters_reference(mask: np.ndarray, periodic: bool = False) -> np.ndarray:
    """Scalar reference implementation of :func:`label_clusters`.

    One Python-level union per open edge and one find per open site.  Kept as
    the equivalence oracle for the property tests and the labelling benchmark;
    production code should always call :func:`label_clusters`.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PercolationError(f"mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    uf = UnionFind(mask.size)
    flat = mask.ravel()

    def merge(a_rows, a_cols, b_rows, b_cols) -> None:
        a_idx = (a_rows * n_cols + a_cols).ravel()
        b_idx = (b_rows * n_cols + b_cols).ravel()
        both = flat[a_idx] & flat[b_idx]
        for a, b in zip(a_idx[both], b_idx[both]):
            uf.union(int(a), int(b))

    rows = np.arange(n_rows)
    cols = np.arange(n_cols)
    grid_rows, grid_cols = np.meshgrid(rows, cols, indexing="ij")
    # Horizontal edges.
    merge(grid_rows[:, :-1], grid_cols[:, :-1], grid_rows[:, 1:], grid_cols[:, 1:])
    # Vertical edges.
    merge(grid_rows[:-1, :], grid_cols[:-1, :], grid_rows[1:, :], grid_cols[1:, :])
    if periodic:
        merge(grid_rows[:, -1:], grid_cols[:, -1:], grid_rows[:, :1], grid_cols[:, :1])
        merge(grid_rows[-1:, :], grid_cols[-1:, :], grid_rows[:1, :], grid_cols[:1, :])

    labels = np.full(mask.shape, -1, dtype=np.int64)
    next_label = 0
    root_to_label: dict[int, int] = {}
    open_indices = np.flatnonzero(flat)
    for index in open_indices:
        root = uf.find(int(index))
        if root not in root_to_label:
            root_to_label[root] = next_label
            next_label += 1
        labels.ravel()[index] = root_to_label[root]
    return labels


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of every labelled cluster, indexed by label id."""
    labels = np.asarray(labels)
    valid = labels[labels >= 0]
    if valid.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(valid)


def largest_cluster_size(labels: np.ndarray) -> int:
    """Size of the largest cluster (0 when the mask is empty)."""
    sizes = cluster_sizes(labels)
    return int(sizes.max()) if sizes.size else 0


def cluster_containing(labels: np.ndarray, site: tuple[int, int]) -> np.ndarray:
    """Boolean mask of the cluster containing ``site`` (empty if site is closed)."""
    labels = np.asarray(labels)
    label = labels[site]
    if label < 0:
        return np.zeros_like(labels, dtype=bool)
    return labels == label


def cluster_radius(
    labels: np.ndarray, site: tuple[int, int], periodic: bool = False
) -> int:
    """l1 radius of the cluster containing ``site`` measured from ``site``.

    Matches the paper's definition ``sup{Delta(0, x) : x in cluster}`` used in
    Lemma 14 and Grimmett's Theorem 5.4.  Returns ``-1`` when ``site`` is not
    in the mask.
    """
    member = cluster_containing(labels, site)
    if not member[site]:
        return -1
    n_rows, n_cols = member.shape
    rows, cols = np.nonzero(member)
    dr = np.abs(rows - site[0])
    dc = np.abs(cols - site[1])
    if periodic:
        dr = np.minimum(dr, n_rows - dr)
        dc = np.minimum(dc, n_cols - dc)
    return int((dr + dc).max())


@dataclass(frozen=True)
class RadiusTailEstimate:
    """Monte-Carlo estimate of ``P(cluster radius >= k)`` for several ``k``."""

    p_open: float
    radii: np.ndarray
    probabilities: np.ndarray
    n_trials: int

    def decay_rate(self) -> float:
        """Estimated exponential decay rate ``psi`` from a log-linear fit.

        Grimmett's Theorem 5.4 guarantees ``P(A_k) < e^{-k psi(p)}`` below
        criticality; the fitted slope of ``-log P`` against ``k`` estimates
        ``psi``.  Radii whose estimated probability is zero are ignored.
        """
        keep = self.probabilities > 0
        if keep.sum() < 2:
            raise PercolationError(
                "not enough non-zero tail probabilities to fit a decay rate"
            )
        slope, _ = np.polyfit(self.radii[keep], -np.log(self.probabilities[keep]), 1)
        return float(slope)


def estimate_radius_tail(
    p_open: float,
    radii: list[int],
    box_radius: int,
    n_trials: int,
    rng: np.random.Generator,
) -> RadiusTailEstimate:
    """Monte-Carlo estimate of the origin cluster radius tail at density ``p_open``.

    Draws ``n_trials`` independent Bernoulli configurations on a
    ``(2 box_radius + 1)``-sided box, conditions on the origin being open, and
    records how often the origin's cluster reaches l1 distance ``k`` for each
    requested ``k``.  Used by the E12 substrate benchmark to exhibit the
    exponential decay below criticality.
    """
    if not 0.0 <= p_open <= 1.0:
        raise PercolationError(f"p_open must lie in [0, 1], got {p_open}")
    if any(k > box_radius for k in radii):
        raise PercolationError("requested radii exceed the simulation box radius")
    side = 2 * box_radius + 1
    origin = (box_radius, box_radius)
    radii_arr = np.asarray(sorted(radii), dtype=int)
    hits = np.zeros(radii_arr.size, dtype=np.int64)
    effective_trials = 0
    for _ in range(n_trials):
        mask = rng.random((side, side)) < p_open
        mask[origin] = True  # condition on the origin being open
        effective_trials += 1
        labels = label_clusters(mask)
        radius = cluster_radius(labels, origin)
        hits += radius >= radii_arr
    probabilities = hits / max(effective_trials, 1)
    return RadiusTailEstimate(
        p_open=p_open,
        radii=radii_arr,
        probabilities=probabilities,
        n_trials=effective_trials,
    )
