"""Chemical distance on open sites of a percolation configuration.

Theorem 4 of the paper (Garet & Marchand) says that in super-critical site
percolation, the chemical distance ``D(0, x)`` — the length of the shortest
path of open sites joining ``0`` and ``x`` — is with high probability at most
``(1 + alpha) ||x||_1``.  The r-chemical paths of Section IV.B inherit their
"length proportional to r" property from this theorem.  This module computes
chemical distances by breadth-first search and provides a Monte-Carlo
estimator of the stretch factor ``D(0, x) / ||x||_1`` used by the E12
benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import PercolationError
from repro.rng import SeedLike, make_rng

#: BFS neighbourhood of the square lattice (4-connectivity).
_NEIGHBOR_OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))


def chemical_distance(
    open_mask: np.ndarray,
    source: tuple[int, int],
    target: tuple[int, int],
    periodic: bool = False,
) -> float:
    """Number of steps of the shortest open path from ``source`` to ``target``.

    Returns ``inf`` when the two sites are not connected (or either is
    closed).  Distances count lattice steps, so adjacent sites are at distance
    1 and a site is at distance 0 from itself, matching ``D(0, x)`` up to the
    inclusive/exclusive vertex-counting convention (the paper counts vertices,
    which differs by exactly one; stretch statistics are unaffected
    asymptotically and we keep the step-counting convention throughout).
    """
    mask = np.asarray(open_mask, dtype=bool)
    if mask.ndim != 2:
        raise PercolationError(f"open_mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    source = (source[0] % n_rows, source[1] % n_cols)
    target = (target[0] % n_rows, target[1] % n_cols)
    if not mask[source] or not mask[target]:
        return float("inf")
    if source == target:
        return 0.0
    distances = np.full(mask.shape, -1, dtype=np.int64)
    distances[source] = 0
    queue: deque[tuple[int, int]] = deque([source])
    while queue:
        row, col = queue.popleft()
        base = distances[row, col]
        for dr, dc in _NEIGHBOR_OFFSETS:
            nr, nc = row + dr, col + dc
            if periodic:
                nr %= n_rows
                nc %= n_cols
            elif not (0 <= nr < n_rows and 0 <= nc < n_cols):
                continue
            if not mask[nr, nc] or distances[nr, nc] >= 0:
                continue
            distances[nr, nc] = base + 1
            if (nr, nc) == target:
                return float(base + 1)
            queue.append((nr, nc))
    return float("inf")


def l1_distance(
    a: tuple[int, int], b: tuple[int, int], shape: tuple[int, int], periodic: bool = False
) -> int:
    """l1 distance between two sites, optionally on the torus."""
    dr = abs(a[0] - b[0])
    dc = abs(a[1] - b[1])
    if periodic:
        dr = min(dr, shape[0] - dr)
        dc = min(dc, shape[1] - dc)
    return int(dr + dc)


@dataclass(frozen=True)
class StretchEstimate:
    """Monte-Carlo estimate of the chemical-distance stretch at density ``p``."""

    p_open: float
    separation: int
    n_trials: int
    n_connected: int
    stretches: np.ndarray

    @property
    def connection_rate(self) -> float:
        """Fraction of trials in which the two reference sites were connected."""
        return self.n_connected / self.n_trials if self.n_trials else 0.0

    def exceed_probability(self, alpha: float) -> float:
        """Empirical ``P(D(0, x) >= (1 + alpha) ||x||_1 | connected)``.

        Theorem 4 states this probability decays exponentially in
        ``||x||_1`` for ``p`` close enough to 1.
        """
        if self.stretches.size == 0:
            return 0.0
        return float(np.mean(self.stretches >= 1.0 + alpha))


def estimate_chemical_stretch(
    p_open: float,
    separation: int,
    n_trials: int,
    margin: int = 8,
    seed: SeedLike = None,
) -> StretchEstimate:
    """Estimate the stretch ``D(0, x) / ||x||_1`` between two sites ``separation`` apart.

    Each trial draws a fresh Bernoulli configuration on a box large enough to
    leave ``margin`` sites of slack around the two reference sites (both
    forced open, mirroring the conditioning ``0 <-> x`` of Theorem 4).
    """
    if separation <= 0:
        raise PercolationError(f"separation must be positive, got {separation}")
    if n_trials <= 0:
        raise PercolationError(f"n_trials must be positive, got {n_trials}")
    rng = make_rng(seed)
    side = separation + 2 * margin + 1
    source = (side // 2, margin)
    target = (side // 2, margin + separation)
    stretches = []
    connected = 0
    for _ in range(n_trials):
        mask = rng.random((side, side)) < p_open
        mask[source] = True
        mask[target] = True
        distance = chemical_distance(mask, source, target)
        if np.isfinite(distance):
            connected += 1
            stretches.append(distance / separation)
    return StretchEstimate(
        p_open=p_open,
        separation=separation,
        n_trials=n_trials,
        n_connected=connected,
        stretches=np.asarray(stretches, dtype=float),
    )
