"""Bernoulli site percolation on finite boxes of the square lattice.

The chemical-firewall argument of the paper (Section IV.B) renormalises the
grid into good/bad blocks and treats good blocks as the open sites of a
super-critical site percolation; the sub-critical side (clusters of bad
blocks) is controlled with Grimmett's exponential radius decay.  This module
provides the plain percolation substrate those arguments run on: open-site
configurations, cluster structure, spanning detection and a Monte-Carlo
estimator of the percolation probability ``theta(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import PercolationError
from repro.percolation.cluster import (
    cluster_containing,
    cluster_sizes,
    label_clusters,
    largest_cluster_size,
)
from repro.rng import SeedLike, make_rng

#: Numerical value of the site-percolation threshold on the square lattice
#: (Newman & Ziff); the paper only needs "above"/"below" comparisons.
SQUARE_SITE_CRITICAL_PROBABILITY = 0.592746


class SitePercolation:
    """One realisation of Bernoulli site percolation on a rectangular box."""

    def __init__(self, open_mask: np.ndarray, p_open: Optional[float] = None) -> None:
        mask = np.asarray(open_mask, dtype=bool)
        if mask.ndim != 2 or mask.size == 0:
            raise PercolationError(
                f"open_mask must be a non-empty 2-D boolean array, got shape {mask.shape}"
            )
        self.open_mask = mask
        self.p_open = p_open
        self._labels: Optional[np.ndarray] = None

    # ----------------------------------------------------------- constructors

    @classmethod
    def sample(
        cls, n_rows: int, n_cols: int, p_open: float, seed: SeedLike = None
    ) -> "SitePercolation":
        """Draw an i.i.d. Bernoulli(``p_open``) configuration."""
        if not 0.0 <= p_open <= 1.0:
            raise PercolationError(f"p_open must lie in [0, 1], got {p_open}")
        if n_rows <= 0 or n_cols <= 0:
            raise PercolationError(
                f"box dimensions must be positive, got {n_rows}x{n_cols}"
            )
        rng = make_rng(seed)
        mask = rng.random((n_rows, n_cols)) < p_open
        return cls(mask, p_open=p_open)

    # ----------------------------------------------------------------- basics

    @property
    def shape(self) -> tuple[int, int]:
        """Box shape ``(n_rows, n_cols)``."""
        return self.open_mask.shape

    @property
    def n_open(self) -> int:
        """Number of open sites."""
        return int(np.count_nonzero(self.open_mask))

    def open_fraction(self) -> float:
        """Empirical density of open sites."""
        return self.n_open / self.open_mask.size

    def labels(self) -> np.ndarray:
        """Cluster labels (cached after the first call)."""
        if self._labels is None:
            self._labels = label_clusters(self.open_mask)
        return self._labels

    def n_clusters(self) -> int:
        """Number of open clusters."""
        sizes = cluster_sizes(self.labels())
        return int(sizes.size)

    def largest_cluster(self) -> int:
        """Size of the largest open cluster."""
        return largest_cluster_size(self.labels())

    def cluster_of(self, site: tuple[int, int]) -> np.ndarray:
        """Boolean mask of the cluster containing ``site``."""
        return cluster_containing(self.labels(), site)

    # ------------------------------------------------------------- percolation

    def spans_horizontally(self) -> bool:
        """Whether some open cluster touches both the left and right edges."""
        labels = self.labels()
        left = set(labels[:, 0][labels[:, 0] >= 0].tolist())
        right = set(labels[:, -1][labels[:, -1] >= 0].tolist())
        return bool(left & right)

    def spans_vertically(self) -> bool:
        """Whether some open cluster touches both the top and bottom edges."""
        labels = self.labels()
        top = set(labels[0, :][labels[0, :] >= 0].tolist())
        bottom = set(labels[-1, :][labels[-1, :] >= 0].tolist())
        return bool(top & bottom)

    def percolates(self) -> bool:
        """Whether a spanning cluster exists in either direction."""
        return self.spans_horizontally() or self.spans_vertically()


@dataclass(frozen=True)
class ThetaEstimate:
    """Monte-Carlo estimate of the percolation probability ``theta(p)``."""

    p_open: float
    theta: float
    spanning_fraction: float
    n_trials: int
    box_side: int


def estimate_theta(
    p_open: float, box_side: int, n_trials: int, seed: SeedLike = None
) -> ThetaEstimate:
    """Estimate ``theta(p)`` — the chance the origin joins a giant cluster.

    On a finite box the infinite cluster is approximated by a spanning
    cluster; ``theta`` is estimated as the probability that the centre site is
    open and belongs to a cluster that spans the box.  The Lemma 13 benchmark
    uses this to show the good-block process is comfortably super-critical.
    """
    if n_trials <= 0:
        raise PercolationError(f"n_trials must be positive, got {n_trials}")
    rng = make_rng(seed)
    center = (box_side // 2, box_side // 2)
    in_giant = 0
    spanning = 0
    for _ in range(n_trials):
        config = SitePercolation.sample(box_side, box_side, p_open, rng)
        if config.percolates():
            spanning += 1
            labels = config.labels()
            center_label = labels[center]
            if center_label >= 0:
                left = set(labels[:, 0][labels[:, 0] >= 0].tolist())
                right = set(labels[:, -1][labels[:, -1] >= 0].tolist())
                top = set(labels[0, :][labels[0, :] >= 0].tolist())
                bottom = set(labels[-1, :][labels[-1, :] >= 0].tolist())
                spanning_labels = (left & right) | (top & bottom)
                if int(center_label) in spanning_labels:
                    in_giant += 1
    return ThetaEstimate(
        p_open=p_open,
        theta=in_giant / n_trials,
        spanning_fraction=spanning / n_trials,
        n_trials=n_trials,
        box_side=box_side,
    )


def is_supercritical(p_open: float) -> bool:
    """Whether ``p_open`` exceeds the square-lattice site threshold."""
    if not 0.0 <= p_open <= 1.0:
        raise PercolationError(f"p_open must lie in [0, 1], got {p_open}")
    return p_open > SQUARE_SITE_CRITICAL_PROBABILITY
