"""Block renormalisation of grid configurations.

Several arguments in the paper renormalise the ``n x n`` grid into square
blocks (w-blocks of side ``w + 1`` built from neighbourhoods of radius
``w/2``, 2w^3- and 6w^3-blocks for the chemical firewall) and then reason
about the block lattice as a new site process.  This module provides the
generic machinery: partitioning a grid into blocks, aggregating per-block
statistics, and exposing the block adjacency structure as a networkx graph
for path arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BlockGrid:
    """A partition of a grid of shape ``grid_shape`` into square blocks."""

    grid_shape: tuple[int, int]
    block_side: int

    def __post_init__(self) -> None:
        n_rows, n_cols = self.grid_shape
        if self.block_side <= 0:
            raise ConfigurationError(
                f"block_side must be positive, got {self.block_side}"
            )
        if n_rows % self.block_side or n_cols % self.block_side:
            raise ConfigurationError(
                f"grid shape {self.grid_shape} is not divisible by block side "
                f"{self.block_side}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the block lattice."""
        return (
            self.grid_shape[0] // self.block_side,
            self.grid_shape[1] // self.block_side,
        )

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        rows, cols = self.shape
        return rows * cols

    def block_of_site(self, row: int, col: int) -> tuple[int, int]:
        """Block coordinates of the block containing the grid site."""
        n_rows, n_cols = self.grid_shape
        return ((row % n_rows) // self.block_side, (col % n_cols) // self.block_side)

    def site_slice(self, block_row: int, block_col: int) -> tuple[slice, slice]:
        """Slices selecting the grid sites of one block."""
        rows, cols = self.shape
        if not (0 <= block_row < rows and 0 <= block_col < cols):
            raise ConfigurationError(
                f"block ({block_row}, {block_col}) outside block lattice {self.shape}"
            )
        r0 = block_row * self.block_side
        c0 = block_col * self.block_side
        return (slice(r0, r0 + self.block_side), slice(c0, c0 + self.block_side))

    def block_view(self, array: np.ndarray) -> np.ndarray:
        """Reshape ``array`` to ``(block_rows, block_cols, side, side)`` (a view)."""
        arr = np.asarray(array)
        if arr.shape != self.grid_shape:
            raise ConfigurationError(
                f"array shape {arr.shape} does not match grid shape {self.grid_shape}"
            )
        rows, cols = self.shape
        side = self.block_side
        return arr.reshape(rows, side, cols, side).swapaxes(1, 2)

    def block_sums(self, array: np.ndarray) -> np.ndarray:
        """Sum of ``array`` over each block."""
        return self.block_view(array).sum(axis=(2, 3))

    def block_means(self, array: np.ndarray) -> np.ndarray:
        """Mean of ``array`` over each block."""
        return self.block_view(array).mean(axis=(2, 3))

    def block_all(self, mask: np.ndarray) -> np.ndarray:
        """Per-block AND of a boolean mask (e.g. "block is monochromatic +1")."""
        return self.block_view(np.asarray(mask, dtype=bool)).all(axis=(2, 3))

    def block_any(self, mask: np.ndarray) -> np.ndarray:
        """Per-block OR of a boolean mask."""
        return self.block_view(np.asarray(mask, dtype=bool)).any(axis=(2, 3))

    def expand(self, block_values: np.ndarray) -> np.ndarray:
        """Broadcast per-block values back to full grid resolution."""
        values = np.asarray(block_values)
        if values.shape != self.shape:
            raise ConfigurationError(
                f"block_values shape {values.shape} does not match block lattice {self.shape}"
            )
        return np.repeat(np.repeat(values, self.block_side, axis=0), self.block_side, axis=1)

    def adjacency_graph(self, periodic: bool = True) -> nx.Graph:
        """4-neighbour adjacency graph of the block lattice.

        The chemical-path arguments of Section IV.B are phrased in terms of
        paths and cycles on this graph ("m-paths" and "m-cycles").
        """
        rows, cols = self.shape
        graph = nx.Graph()
        for row in range(rows):
            for col in range(cols):
                graph.add_node((row, col))
        for row in range(rows):
            for col in range(cols):
                right = (row, (col + 1) % cols)
                down = ((row + 1) % rows, col)
                if periodic or col + 1 < cols:
                    graph.add_edge((row, col), right)
                if periodic or row + 1 < rows:
                    graph.add_edge((row, col), down)
        return graph


def divisible_block_side(grid_side: int, target_side: int) -> int:
    """Largest block side ``<= target_side`` dividing ``grid_side`` (at least 1).

    The paper's block sides (``w + 1``, ``2 w^3``, ``6 w^3``) rarely divide a
    convenient grid side exactly; experiments snap to the nearest divisor so
    the renormalised lattice tiles the torus.
    """
    if grid_side <= 0 or target_side <= 0:
        raise ConfigurationError("grid_side and target_side must be positive")
    best = 1
    for candidate in range(1, min(grid_side, target_side) + 1):
        if grid_side % candidate == 0:
            best = candidate
    return best
