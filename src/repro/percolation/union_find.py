"""Disjoint-set (union-find) structure used for cluster labelling.

A plain array-based implementation with union by size and path compression.
It is used by the site-percolation substrate and by the segregation cluster
analysis, both of which label connected components of boolean masks on grids
that may or may not wrap around.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over the integers ``0 .. n_elements - 1``."""

    def __init__(self, n_elements: int) -> None:
        if n_elements <= 0:
            raise ValueError(f"n_elements must be positive, got {n_elements}")
        self._parent = np.arange(n_elements, dtype=np.int64)
        self._size = np.ones(n_elements, dtype=np.int64)
        self._n_components = n_elements

    @property
    def n_elements(self) -> int:
        """Number of elements managed by the structure."""
        return self._parent.size

    @property
    def n_components(self) -> int:
        """Current number of disjoint components."""
        return self._n_components

    def find(self, x: int) -> int:
        """Representative of the component containing ``x`` (path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; returns True if they were distinct."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        return int(self._size[self.find(x)])

    def labels(self) -> np.ndarray:
        """Array mapping every element to its component representative."""
        return np.array([self.find(i) for i in range(self.n_elements)], dtype=np.int64)

    def component_sizes(self) -> dict[int, int]:
        """Mapping from representative to component size."""
        labels = self.labels()
        roots, counts = np.unique(labels, return_counts=True)
        return {int(root): int(count) for root, count in zip(roots, counts)}
