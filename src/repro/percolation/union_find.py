"""Disjoint-set (union-find) structure used for cluster labelling.

A plain array-based implementation with union by size and path compression,
plus batched array APIs (:meth:`UnionFind.union_many`,
:meth:`UnionFind.find_many`) that process whole edge lists per NumPy call.
The batched path is what :func:`repro.percolation.cluster.label_clusters`
runs on: labelling a mask performs a handful of vectorized passes instead of
one Python-level ``union`` per lattice edge and one ``find`` per open site.

Both APIs share one parent array, so scalar and batched operations can be
mixed freely.  Batched unions link the larger root *index* under the smaller
one (rather than by size); every new edge therefore points to a strictly
smaller index, which makes the batch loop cycle-free and gives merged
components the smallest involved flat index as their representative.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over the integers ``0 .. n_elements - 1``."""

    def __init__(self, n_elements: int) -> None:
        if n_elements <= 0:
            raise ValueError(f"n_elements must be positive, got {n_elements}")
        self._parent = np.arange(n_elements, dtype=np.int64)
        self._identity = self._parent.copy()
        self._size = np.ones(n_elements, dtype=np.int64)
        self._n_components = n_elements
        # union_many defers per-root size updates; scalar accessors rebuild
        # them on demand so mixed scalar/batched usage stays exact.
        self._sizes_stale = False

    @property
    def n_elements(self) -> int:
        """Number of elements managed by the structure."""
        return self._parent.size

    @property
    def n_components(self) -> int:
        """Current number of disjoint components."""
        return self._n_components

    def find(self, x: int) -> int:
        """Representative of the component containing ``x`` (path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def find_many(self, indices: np.ndarray) -> np.ndarray:
        """Representatives of many elements at once (vectorized).

        Walks every queried chain in lockstep (one gather per level of the
        deepest chain) and then compresses all queried elements straight to
        their roots, so repeated batched finds stay near O(1) per element.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(idx.shape, dtype=np.int64)
        parent = self._parent
        roots = parent[idx]
        if idx.ndim != 1:
            roots = roots.ravel()
        # Walk only the chains that have not reached a fixed point yet (the
        # gather volume is the sum of chain depths, not max-depth passes over
        # the whole query) and halve every visited path as we go, so chains
        # shared between queries are short by the time they are re-walked.
        active = np.flatnonzero(parent[roots] != roots)
        while active.size:
            walking = roots[active]
            skip = parent[parent[walking]]
            parent[walking] = skip
            roots[active] = skip
            active = active[parent[skip] != skip]
        roots = roots.reshape(idx.shape)
        parent[idx] = roots
        return roots

    def _refresh_sizes(self) -> None:
        """Rebuild per-root component sizes after deferred batched unions."""
        if not self._sizes_stale:
            return
        roots = self.find_many(self._identity)
        self._size = np.bincount(roots, minlength=self.n_elements).astype(np.int64)
        self._sizes_stale = False

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; returns True if they were distinct."""
        self._refresh_sizes()
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def union_many(self, a: np.ndarray, b: np.ndarray) -> int:
        """Merge ``a[i]`` with ``b[i]`` for every ``i``; returns the merge count.

        All edges are processed per batch: each pass links every still-distinct
        pair's larger root under the smaller one (``np.minimum.at`` resolves
        collisions when several edges share a root) and re-resolves the
        touched roots, converging in O(log) passes.  The component count is
        updated from the root-count diff; per-root sizes are rebuilt lazily
        the next time a size-dependent accessor (or scalar ``union``) runs.
        """
        a = np.asarray(a, dtype=np.int64).ravel()
        b = np.asarray(b, dtype=np.int64).ravel()
        if a.shape != b.shape:
            raise ValueError(
                f"union_many arguments must have equal lengths, got {a.size} and {b.size}"
            )
        if a.size == 0:
            return 0
        parent = self._parent
        # Merge accounting: only roots satisfy parent[i] == i, so diffing the
        # fixed-point count around the batch gives the merge total in two
        # fused O(n) scans — cheapest when the batch is of the structure's
        # order (the labelling workload).  For small batches on large
        # structures, count per pass instead: every distinct live ``hi`` is a
        # root that receives exactly one link, i.e. exactly one merge.
        count_by_scan = 8 * a.size >= self.n_elements
        if count_by_scan:
            roots_before = int(np.count_nonzero(parent == self._identity))
        roots_a = self.find_many(a)
        roots_b = self.find_many(b)
        lo = np.minimum(roots_a, roots_b)
        hi = np.maximum(roots_a, roots_b)
        n_merges = 0
        while True:
            live = hi != lo
            if not live.any():
                break
            lo = lo[live]
            hi = hi[live]
            if not count_by_scan:
                n_merges += int(np.unique(hi).size)
            # Link each larger root towards the smallest partner seen this
            # pass; every new edge points to a strictly smaller index, so no
            # pass can create a cycle.
            np.minimum.at(parent, hi, lo)
            lo = self.find_many(lo)
            hi = self.find_many(hi)
            lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)

        if count_by_scan:
            n_merges = roots_before - int(np.count_nonzero(parent == self._identity))
        self._n_components -= n_merges
        if n_merges:
            self._sizes_stale = True
        return n_merges

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        self._refresh_sizes()
        return int(self._size[self.find(x)])

    def labels(self) -> np.ndarray:
        """Array mapping every element to its component representative."""
        return self.find_many(np.arange(self.n_elements, dtype=np.int64))

    def component_sizes(self) -> dict[int, int]:
        """Mapping from representative to component size."""
        labels = self.labels()
        roots, counts = np.unique(labels, return_counts=True)
        return {int(root): int(count) for root, count in zip(roots, counts)}
