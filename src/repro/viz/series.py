"""Tabular output helpers: CSV files and markdown tables.

The benchmark harness reports every figure/table of the paper as rows of
plain dictionaries; these helpers render them for the terminal (markdown) and
persist them for later plotting (CSV), since no plotting library is available
offline.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.errors import ExperimentError

Row = Mapping[str, object]


def _columns(rows: Sequence[Row]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def write_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows (dicts) to a CSV file; returns the path."""
    if not rows:
        raise ExperimentError("cannot write an empty row set to CSV")
    path = Path(path)
    columns = _columns(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return path


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def render_markdown_table(rows: Sequence[Row], float_format: str = ".4g") -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        raise ExperimentError("cannot render an empty row set")
    columns = _columns(rows)
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, separator]
    for row in rows:
        cells = [_format_value(row.get(column, ""), float_format) for column in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
