"""ASCII rendering of configurations.

There is no plotting library available offline, so the examples and the
Figure 1 benchmark render configurations as character grids (optionally
downsampled by majority vote per block) and as PPM images
(:mod:`repro.viz.ppm`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AnalysisError
from repro.utils.validation import require_spin_array

#: Default glyphs: '#' for +1 agents, '.' for -1 agents.
DEFAULT_GLYPHS = {1: "#", -1: "."}


def downsample_majority(spins: np.ndarray, factor: int) -> np.ndarray:
    """Shrink a configuration by majority vote over ``factor x factor`` blocks.

    Rows/columns that do not fill a complete block are dropped, which is fine
    for display purposes.  Ties resolve to ``+1``.
    """
    spins = require_spin_array(spins)
    if factor <= 0:
        raise AnalysisError(f"factor must be positive, got {factor}")
    if factor == 1:
        return spins.copy()
    n_rows = (spins.shape[0] // factor) * factor
    n_cols = (spins.shape[1] // factor) * factor
    if n_rows == 0 or n_cols == 0:
        raise AnalysisError(
            f"factor {factor} is too large for configuration shape {spins.shape}"
        )
    trimmed = spins[:n_rows, :n_cols].astype(np.int64)
    blocks = trimmed.reshape(n_rows // factor, factor, n_cols // factor, factor)
    sums = blocks.sum(axis=(1, 3))
    return np.where(sums >= 0, 1, -1).astype(np.int8)


def render_ascii(
    spins: np.ndarray,
    glyphs: Optional[dict[int, str]] = None,
    max_side: int = 80,
) -> str:
    """Render a configuration as a newline-joined character grid.

    Configurations wider or taller than ``max_side`` are downsampled by
    majority vote so the output stays terminal-sized.
    """
    spins = require_spin_array(spins)
    if glyphs is None:
        glyphs = DEFAULT_GLYPHS
    factor = max(1, int(np.ceil(max(spins.shape) / max_side)))
    display = downsample_majority(spins, factor)
    lines = []
    for row in display:
        lines.append("".join(glyphs[int(value)] for value in row))
    return "\n".join(lines)


def render_with_happiness(
    spins: np.ndarray,
    happy_mask: np.ndarray,
    max_side: int = 80,
) -> str:
    """Render agents with happiness information, matching Figure 1's legend.

    ``#``/``.`` mark happy +1/-1 agents; ``+``/``-`` mark unhappy +1/-1
    agents.  No downsampling is applied (happiness is not meaningfully
    averaged), so large grids are cropped to the top-left ``max_side`` square.
    """
    spins = require_spin_array(spins)
    if happy_mask.shape != spins.shape:
        raise AnalysisError(
            f"happy_mask shape {happy_mask.shape} does not match spins {spins.shape}"
        )
    view_rows = min(spins.shape[0], max_side)
    view_cols = min(spins.shape[1], max_side)
    lines = []
    for row in range(view_rows):
        chars = []
        for col in range(view_cols):
            if spins[row, col] == 1:
                chars.append("#" if happy_mask[row, col] else "+")
            else:
                chars.append("." if happy_mask[row, col] else "-")
        lines.append("".join(chars))
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two ASCII renderings horizontally (for before/after displays)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    width = max((len(line) for line in left_lines), default=0)
    padding = " " * gap
    lines = []
    for i in range(height):
        l_line = left_lines[i] if i < len(left_lines) else ""
        r_line = right_lines[i] if i < len(right_lines) else ""
        lines.append(l_line.ljust(width) + padding + r_line)
    return "\n".join(lines)
