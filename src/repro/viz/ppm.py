"""Plain PPM/PGM image export (no external imaging dependency).

The Figure 1 benchmark writes its panels as binary PPM images using the
paper's colour legend: green/blue for happy +1/-1 agents, white/yellow for
unhappy +1/-1 agents.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import AnalysisError
from repro.utils.validation import require_spin_array

#: Figure 1 legend, as RGB triples.
FIGURE1_COLORS = {
    ("plus", "happy"): (60, 170, 60),      # green
    ("minus", "happy"): (50, 80, 200),     # blue
    ("plus", "unhappy"): (255, 255, 255),  # white
    ("minus", "unhappy"): (240, 210, 40),  # yellow
}


def spins_to_rgb(
    spins: np.ndarray, happy_mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Convert a configuration (plus optional happiness mask) to an RGB array."""
    spins = require_spin_array(spins)
    if happy_mask is None:
        happy_mask = np.ones(spins.shape, dtype=bool)
    if happy_mask.shape != spins.shape:
        raise AnalysisError(
            f"happy_mask shape {happy_mask.shape} does not match spins {spins.shape}"
        )
    rgb = np.zeros((*spins.shape, 3), dtype=np.uint8)
    selections = {
        ("plus", "happy"): (spins == 1) & happy_mask,
        ("minus", "happy"): (spins == -1) & happy_mask,
        ("plus", "unhappy"): (spins == 1) & ~happy_mask,
        ("minus", "unhappy"): (spins == -1) & ~happy_mask,
    }
    for key, mask in selections.items():
        rgb[mask] = FIGURE1_COLORS[key]
    return rgb


def write_ppm(rgb: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an RGB array as a binary (P6) PPM file; returns the path."""
    rgb = np.asarray(rgb, dtype=np.uint8)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise AnalysisError(f"rgb must have shape (rows, cols, 3), got {rgb.shape}")
    path = Path(path)
    header = f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(rgb.tobytes())
    return path


def write_pgm(values: np.ndarray, path: Union[str, Path]) -> Path:
    """Write a 2-D array as an 8-bit grayscale (P5) PGM file, rescaled to 0-255."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise AnalysisError(f"values must be 2-D, got shape {arr.shape}")
    low, high = float(arr.min()), float(arr.max())
    if high > low:
        scaled = (arr - low) / (high - low) * 255.0
    else:
        scaled = np.zeros_like(arr)
    gray = scaled.astype(np.uint8)
    path = Path(path)
    header = f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(gray.tobytes())
    return path


def write_configuration_image(
    spins: np.ndarray,
    path: Union[str, Path],
    happy_mask: Optional[np.ndarray] = None,
) -> Path:
    """One-call helper: configuration (+ happiness) straight to a PPM file."""
    return write_ppm(spins_to_rgb(spins, happy_mask), path)
