"""Rendering helpers: ASCII grids, PPM images and tabular output."""

from repro.viz.ascii_art import (
    DEFAULT_GLYPHS,
    downsample_majority,
    render_ascii,
    render_with_happiness,
    side_by_side,
)
from repro.viz.ppm import (
    FIGURE1_COLORS,
    spins_to_rgb,
    write_configuration_image,
    write_pgm,
    write_ppm,
)
from repro.viz.series import render_markdown_table, write_csv

__all__ = [
    "DEFAULT_GLYPHS",
    "FIGURE1_COLORS",
    "downsample_majority",
    "render_ascii",
    "render_markdown_table",
    "render_with_happiness",
    "side_by_side",
    "spins_to_rgb",
    "write_configuration_image",
    "write_csv",
    "write_pgm",
    "write_ppm",
]
