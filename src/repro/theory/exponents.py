"""Exponent multipliers ``a(tau)`` and ``b(tau)`` of Theorems 1 and 2.

Theorem 1 (and Theorem 2 for the almost-monochromatic region) states

``2^{a(tau) N - o(N)} <= E[M] <= 2^{b(tau) N + o(N)}``

with, from the proofs,

* ``a(tau) = [1 - (2 eps' + eps'^2)] [1 - H(tau')]``  (Eq. 12 / Eq. 21)
* ``b(tau) = (3/2) (1 + eps')^2 [1 - H(tau')]``

where ``eps' > f(tau)`` is the radical-region expansion factor (Eq. 10) and
``tau' = (tau N - 2)/(N - 1)`` (asymptotically ``tau`` itself).  Figure 3 of
the paper plots these multipliers at the infimum ``eps' = f(tau)``; this
module reproduces those curves and the monotonicity properties stated in the
theorems (``a`` and ``b`` decrease with ``tau`` below 1/2 and, by symmetry,
increase above 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.entropy import binary_entropy_complement
from repro.theory.thresholds import mirrored_tau, tau_prime, trigger_epsilon


def _effective_tau(tau: float, neighborhood_agents: Optional[int]) -> float:
    """``tau'`` at finite ``N``, or the asymptotic limit ``tau`` itself."""
    tau = mirrored_tau(tau)
    if neighborhood_agents is None:
        return tau
    return tau_prime(tau, neighborhood_agents)


def _epsilon_prime(tau: float, epsilon_prime: Optional[float]) -> float:
    """Validate or derive the expansion factor ``eps'``."""
    tau = mirrored_tau(tau)
    infimum = trigger_epsilon(tau)
    if epsilon_prime is None:
        return infimum
    if epsilon_prime < infimum:
        raise ConfigurationError(
            f"epsilon_prime={epsilon_prime} is below the trigger infimum "
            f"f(tau)={infimum:.4f} for tau={tau}"
        )
    return float(epsilon_prime)


def lower_exponent(
    tau: float,
    neighborhood_agents: Optional[int] = None,
    epsilon_prime: Optional[float] = None,
) -> float:
    """``a(tau)``: the lower-bound exponent multiplier of Theorems 1 and 2.

    ``neighborhood_agents`` switches between the asymptotic curve
    (``tau' = tau``) and the finite-``N`` value; ``epsilon_prime`` defaults to
    the infimum ``f(tau)`` used for Figure 3.
    """
    if not 0.0 < tau < 1.0:
        raise ConfigurationError(f"tau must lie in (0, 1), got {tau}")
    eps = _epsilon_prime(tau, epsilon_prime)
    rate = binary_entropy_complement(_effective_tau(tau, neighborhood_agents))
    return float((1.0 - (2.0 * eps + eps * eps)) * rate)


def upper_exponent(
    tau: float,
    neighborhood_agents: Optional[int] = None,
    epsilon_prime: Optional[float] = None,
) -> float:
    """``b(tau)``: the upper-bound exponent multiplier of Theorems 1 and 2."""
    if not 0.0 < tau < 1.0:
        raise ConfigurationError(f"tau must lie in (0, 1), got {tau}")
    eps = _epsilon_prime(tau, epsilon_prime)
    rate = binary_entropy_complement(_effective_tau(tau, neighborhood_agents))
    return float(1.5 * (1.0 + eps) ** 2 * rate)


def expected_region_size_bounds(
    tau: float, neighborhood_agents: int, epsilon_prime: Optional[float] = None
) -> tuple[float, float]:
    """Numeric ``(lower, upper)`` bounds ``2^{a N}`` and ``2^{b N}`` on ``E[M]``.

    These ignore the ``o(N)`` corrections, so at small ``N`` they should be
    read as orders of magnitude rather than sharp bounds; the scaling
    benchmarks compare measured growth *rates* against ``a`` and ``b`` rather
    than absolute sizes.
    """
    a = lower_exponent(tau, neighborhood_agents, epsilon_prime)
    b = upper_exponent(tau, neighborhood_agents, epsilon_prime)
    return (2.0 ** (a * neighborhood_agents), 2.0 ** (b * neighborhood_agents))


@dataclass(frozen=True)
class ExponentCurve:
    """A sampled Figure-3 style curve of ``a(tau)`` and ``b(tau)``."""

    taus: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def as_rows(self) -> list[dict[str, float]]:
        """Rows suitable for a result table / CSV export."""
        return [
            {"tau": float(t), "a": float(a), "b": float(b)}
            for t, a, b in zip(self.taus, self.lower, self.upper)
        ]


def figure3_curves(
    taus: Optional[np.ndarray] = None, neighborhood_agents: Optional[int] = None
) -> ExponentCurve:
    """Reproduce the curves of Figure 3 over the theorem range.

    The default grid spans ``(tau2, 1 - tau2)`` excluding a small window
    around ``1/2`` (where the exponents are largest and the paper's point
    ``tau = 1/2`` itself is excluded).
    """
    from repro.theory.thresholds import tau2  # local import avoids a cycle at import time

    if taus is None:
        low = tau2() + 1e-3
        taus = np.concatenate(
            [np.linspace(low, 0.499, 60), np.linspace(0.501, 1.0 - low, 60)]
        )
    taus = np.asarray(taus, dtype=float)
    lower = np.array([lower_exponent(float(t), neighborhood_agents) for t in taus])
    upper = np.array([upper_exponent(float(t), neighborhood_agents) for t in taus])
    return ExponentCurve(taus=taus, lower=lower, upper=upper)


def is_monotone_on_half_interval(values: np.ndarray, taus: np.ndarray) -> bool:
    """Check the theorem's monotonicity: decreasing below 1/2, increasing above.

    Used by the Figure 3 benchmark to assert the qualitative shape of the
    reproduced curves.
    """
    values = np.asarray(values, dtype=float)
    taus = np.asarray(taus, dtype=float)
    below = values[taus < 0.5]
    above = values[taus > 0.5]
    below_ok = np.all(np.diff(below) <= 1e-12) if below.size > 1 else True
    above_ok = np.all(np.diff(above) >= -1e-12) if above.size > 1 else True
    return bool(below_ok and above_ok)
