"""Closed-form results of the paper: thresholds, exponents and bounds."""

from repro.theory.bounds import (
    exact_radical_region_probability,
    exact_unhappy_probability,
    firewall_radius_scale,
    radical_in_neighborhood_exponent,
    radical_region_probability_exponent,
    unhappy_probability_bounds,
    unhappy_probability_exponent,
)
from repro.theory.entropy import (
    binary_entropy,
    binary_entropy_complement,
    binomial_tail_exponent,
)
from repro.theory.exponents import (
    ExponentCurve,
    expected_region_size_bounds,
    figure3_curves,
    is_monotone_on_half_interval,
    lower_exponent,
    upper_exponent,
)
from repro.theory.intervals import (
    RegimeInterval,
    classify_regime,
    figure2_intervals,
    segregation_expected,
    static_expected,
)
from repro.theory.thresholds import (
    interval_widths,
    mirrored_tau,
    tau1,
    tau1_equation,
    tau2,
    tau2_equation,
    tau_bar,
    tau_hat,
    tau_prime,
    trigger_epsilon,
    trigger_epsilon_curve,
)

__all__ = [
    "ExponentCurve",
    "RegimeInterval",
    "binary_entropy",
    "binary_entropy_complement",
    "binomial_tail_exponent",
    "classify_regime",
    "exact_radical_region_probability",
    "exact_unhappy_probability",
    "expected_region_size_bounds",
    "figure2_intervals",
    "figure3_curves",
    "firewall_radius_scale",
    "interval_widths",
    "is_monotone_on_half_interval",
    "lower_exponent",
    "mirrored_tau",
    "radical_in_neighborhood_exponent",
    "radical_region_probability_exponent",
    "segregation_expected",
    "static_expected",
    "tau1",
    "tau1_equation",
    "tau2",
    "tau2_equation",
    "tau_bar",
    "tau_hat",
    "tau_prime",
    "trigger_epsilon",
    "trigger_epsilon_curve",
    "unhappy_probability_bounds",
    "unhappy_probability_exponent",
    "upper_exponent",
]
