"""Regime classification of the intolerance axis (Figure 2).

The paper, together with the prior work it cites, partitions the intolerance
interval ``[0, 1]`` (for ``p = 1/2`` on the two-dimensional torus) into:

* ``tau < 1/4`` or ``tau > 3/4`` — the initial configuration is static w.h.p.
  (Barmpalias et al. [26], the equal-intolerance special case).
* ``tau in [1/4, tau2]`` or ``tau in [1 - tau2, 3/4]`` — behaviour unknown.
* ``tau in (tau2, tau1]`` or ``tau in [1 - tau1, 1 - tau2)`` — expected
  almost-monochromatic region exponential in ``N`` (Theorem 2, the black
  region of Figure 2).
* ``tau in (tau1, 1/2)`` or ``tau in (1/2, 1 - tau1)`` — expected
  monochromatic region exponential in ``N`` (Theorem 1, the grey region).
* ``tau = 1/2`` — open in two dimensions (polynomial in one dimension).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.theory.thresholds import tau1, tau2
from repro.types import Regime


@dataclass(frozen=True)
class RegimeInterval:
    """A half-open or closed sub-interval of the intolerance axis."""

    low: float
    high: float
    low_inclusive: bool
    high_inclusive: bool
    regime: Regime
    source: str

    def contains(self, tau: float) -> bool:
        """Whether ``tau`` falls inside this interval."""
        above = tau > self.low or (self.low_inclusive and tau == self.low)
        below = tau < self.high or (self.high_inclusive and tau == self.high)
        return above and below

    def describe(self) -> str:
        """Human-readable interval string, e.g. ``(0.433, 0.500)``."""
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"{left}{self.low:.4f}, {self.high:.4f}{right} -> {self.regime.value}"


def figure2_intervals() -> list[RegimeInterval]:
    """The full partition of ``[0, 1]`` into known regimes (Figure 2)."""
    t1 = tau1()
    t2 = tau2()
    return [
        RegimeInterval(0.0, 0.25, True, False, Regime.STATIC, "Barmpalias et al. [26]"),
        RegimeInterval(0.25, t2, True, True, Regime.UNKNOWN, "open"),
        RegimeInterval(
            t2, t1, False, True, Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC, "Theorem 2"
        ),
        RegimeInterval(
            t1, 0.5, False, False, Regime.EXPONENTIAL_MONOCHROMATIC, "Theorem 1"
        ),
        RegimeInterval(0.5, 0.5, True, True, Regime.BALANCED, "open (tau = 1/2)"),
        RegimeInterval(
            0.5, 1.0 - t1, False, False, Regime.EXPONENTIAL_MONOCHROMATIC, "Theorem 1"
        ),
        RegimeInterval(
            1.0 - t1,
            1.0 - t2,
            True,
            False,
            Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC,
            "Theorem 2",
        ),
        RegimeInterval(1.0 - t2, 0.75, True, True, Regime.UNKNOWN, "open"),
        RegimeInterval(0.75, 1.0, False, True, Regime.STATIC, "Barmpalias et al. [26]"),
    ]


def classify_regime(tau: float) -> Regime:
    """Return the predicted regime for intolerance ``tau`` (Figure 2)."""
    if not 0.0 <= tau <= 1.0:
        raise ConfigurationError(f"tau must lie in [0, 1], got {tau}")
    for interval in figure2_intervals():
        if interval.contains(tau):
            return interval.regime
    raise ConfigurationError(f"no regime interval covers tau={tau}")  # pragma: no cover


def segregation_expected(tau: float) -> bool:
    """True when the paper predicts exponentially large (almost) segregated regions."""
    return classify_regime(tau) in (
        Regime.EXPONENTIAL_MONOCHROMATIC,
        Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC,
    )


def static_expected(tau: float) -> bool:
    """True when the initial configuration is expected to remain static w.h.p."""
    return classify_regime(tau) is Regime.STATIC
