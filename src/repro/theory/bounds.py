"""Probability bounds from the paper's lemmas, in exact and asymptotic form.

The segregation benchmarks compare three quantities against Monte-Carlo
estimates:

* Lemma 19 — the probability ``p_u`` that an arbitrary agent is unhappy in the
  initial Bernoulli(1/2) configuration, bracketed by
  ``c 2^{-[1 - H(tau')] N} / sqrt(N)``.
* Lemma 20 / 22 — the probability that a neighbourhood of radius
  ``(1 + eps') w`` is a *radical region* and the probability that a radius-r
  neighbourhood contains one.
* The exact binomial expressions behind both, which are computable with scipy
  at any finite ``N`` and are what the Monte-Carlo estimates should match.
"""

from __future__ import annotations

import math
from typing import Optional

from scipy import stats

from repro.core.config import ModelConfig
from repro.core.initializer import radical_region_threshold
from repro.core.neighborhood import neighborhood_size
from repro.errors import ConfigurationError
from repro.theory.entropy import binary_entropy_complement
from repro.theory.thresholds import mirrored_tau, tau_prime, trigger_epsilon


def exact_unhappy_probability(config: ModelConfig) -> float:
    """Exact ``p_u`` for the initial configuration (Eq. 30 of the paper).

    An agent is unhappy when fewer than ``ceil(tau N)`` of the ``N`` agents in
    its neighbourhood (itself included) share its type; with a Bernoulli(p)
    initialisation and the agent's own type fixed, the same-type count is
    ``1 + Binomial(N - 1, q)`` where ``q`` is ``p`` for a ``+1`` agent and
    ``1 - p`` for a ``-1`` agent.  For ``p = 1/2`` the two terms coincide and
    reduce to the paper's expression.
    """
    n = config.neighborhood_agents
    threshold = config.happiness_threshold
    # Unhappy iff 1 + Binomial(N-1, q) <= threshold - 1.
    k = threshold - 2
    if k < 0:
        return 0.0
    p = config.density
    prob_plus = float(stats.binom.cdf(k, n - 1, p))
    prob_minus = float(stats.binom.cdf(k, n - 1, 1.0 - p))
    return p * prob_plus + (1.0 - p) * prob_minus


def unhappy_probability_bounds(config: ModelConfig) -> tuple[float, float]:
    """Lemma 19 bracket ``(lower, upper)`` on ``p_u`` for ``p = 1/2``.

    The constants of the lemma are not made explicit in the paper; the
    returned bracket uses the central-binomial-coefficient inequalities from
    the lemma's own proof, which are valid for every ``N`` with explicit
    constants.
    """
    if abs(config.density - 0.5) > 1e-12:
        raise ConfigurationError("Lemma 19 is stated for density p = 1/2")
    n = config.neighborhood_agents
    tp = tau_prime(mirrored_tau(config.tau), n)
    if tp <= 0.0 or tp >= 0.5:
        raise ConfigurationError(
            f"Lemma 19 requires 0 < tau' < 1/2, got tau'={tp:.4f}"
        )
    rate = binary_entropy_complement(tp)
    # From the proof: binom(N-1, tau'(N-1)) <= sum <= (1-tau')/(1-2tau') * binom,
    # and Stirling brackets the central coefficient within explicit constants.
    base = 2.0 ** (-rate * (n - 1)) / math.sqrt(
        max((n - 1) * tp * (1.0 - tp), 1e-12)
    )
    lower = (1.0 / math.sqrt(8.0)) * base * 2.0 ** (-1.0)
    upper = (1.0 / math.sqrt(math.pi / 2.0)) * base * (1.0 - tp) / (1.0 - 2.0 * tp)
    return lower, upper


def unhappy_probability_exponent(tau: float, neighborhood_agents: Optional[int] = None) -> float:
    """The decay exponent ``1 - H(tau')`` of Lemma 19 (per neighbourhood agent)."""
    tau = mirrored_tau(tau)
    if neighborhood_agents is None:
        effective = tau
    else:
        effective = tau_prime(tau, neighborhood_agents)
    return binary_entropy_complement(effective)


def exact_radical_region_probability(
    config: ModelConfig, epsilon_prime: Optional[float] = None
) -> float:
    """Exact probability that a radius ``(1 + eps') w`` window is a radical region.

    A radical region (for a ``+1`` cascade) holds *fewer than*
    ``tau_hat (1 + eps')^2 N`` agents of type ``-1``; with the Bernoulli(p)
    initialisation the minority count is ``Binomial(N_R, 1 - p)`` where
    ``N_R`` is the number of agents in the window.
    """
    if epsilon_prime is None:
        epsilon_prime = trigger_epsilon(config.tau)
    radius = int(math.floor((1.0 + epsilon_prime) * config.horizon))
    n_region = neighborhood_size(radius)
    threshold = radical_region_threshold(config, epsilon_prime)
    if threshold <= 0:
        return 0.0
    return float(stats.binom.cdf(threshold - 1, n_region, 1.0 - config.density))


def radical_region_probability_exponent(
    tau: float, epsilon_prime: Optional[float] = None
) -> float:
    """Lemma 20 asymptotic exponent ``[1 - H(tau)](1 + eps')^2`` per agent.

    The probability that a window of radius ``(1 + eps') w`` is a radical
    region behaves like ``2^{-[1 - H(tau)](1 + eps')^2 N}`` up to ``o(N)``
    corrections (the ``tau''`` of the lemma converges to ``tau``).
    """
    tau = mirrored_tau(tau)
    if epsilon_prime is None:
        epsilon_prime = trigger_epsilon(tau)
    return binary_entropy_complement(tau) * (1.0 + epsilon_prime) ** 2


def radical_in_neighborhood_exponent(
    tau: float, epsilon_prime: Optional[float] = None
) -> float:
    """Lemma 22 exponent: ``[1 - H(tau)](2 eps' + eps'^2)`` per agent.

    A neighbourhood of radius ``r = 2^{[1 - H(tau')] N / 2 - o(N)}`` contains a
    radical region with probability at least
    ``2^{-[1 - H(tau')](2 eps' + eps'^2) N - o(N)}``; this is the exponent that
    carries through to the lower bound ``a(tau)``.
    """
    tau = mirrored_tau(tau)
    if epsilon_prime is None:
        epsilon_prime = trigger_epsilon(tau)
    eps = epsilon_prime
    return binary_entropy_complement(tau) * (2.0 * eps + eps * eps)


def firewall_radius_scale(tau: float, neighborhood_agents: int) -> float:
    """The paper's radius scale ``r = 2^{[1 - H(tau')] N / 2}`` (Lemma 6 et seq.).

    This is the natural length scale of the monochromatic regions; the
    scaling benchmarks report it alongside the measured radii.
    """
    rate = unhappy_probability_exponent(tau, neighborhood_agents)
    return 2.0 ** (rate * neighborhood_agents / 2.0)
