"""The paper's intolerance thresholds and auxiliary rescaled intolerances.

This module evaluates:

* ``tau1 ≈ 0.433`` — the solution of Eq. (1),
  ``(3/4)[1 - H(4 tau/3)] - [1 - H(tau)] = 0``, separating the
  monochromatic regime (Theorem 1) from the almost-monochromatic regime
  (Theorem 2).
* ``tau2 = 11/32 = 0.34375 ≈ 0.344`` — the relevant root of Eq. (3),
  ``1024 tau^2 - 384 tau + 11 = 0``, the lower end of the almost-monochromatic
  regime.
* ``f(tau)`` — Eq. (10), the infimum of the radical-region expansion factor
  ``eps'`` needed to trigger a cascade (Figure 6).
* the rescaled intolerances ``tau'``, ``tau_hat`` and ``tau_bar`` used in the
  lemmas.
"""

from __future__ import annotations

import functools
import math

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError
from repro.theory.entropy import binary_entropy


def tau1_equation(tau: float) -> float:
    """Left-hand side of Eq. (1); ``tau1`` is its root in ``(3/8, 1/2)``."""
    if not 0.0 < tau < 0.75:
        raise ConfigurationError(f"tau must lie in (0, 0.75) for Eq. (1), got {tau}")
    return 0.75 * (1.0 - binary_entropy(4.0 * tau / 3.0)) - (1.0 - binary_entropy(tau))


@functools.lru_cache(maxsize=1)
def tau1() -> float:
    """The threshold ``tau1 ≈ 0.433`` of Theorem 1 (root of Eq. 1)."""
    # Eq. (1) has the trivial root tau = 3/4 H-related degeneracies outside
    # the interval of interest; the paper's tau1 is the root just below 1/2.
    return float(optimize.brentq(tau1_equation, 0.40, 0.499, xtol=1e-12))


def tau2_equation(tau: float) -> float:
    """Left-hand side of Eq. (3); ``tau2`` is its larger root."""
    return 1024.0 * tau * tau - 384.0 * tau + 11.0


@functools.lru_cache(maxsize=1)
def tau2() -> float:
    """The threshold ``tau2 = 11/32 = 0.34375`` of Theorem 2 (root of Eq. 3).

    The quadratic ``1024 x^2 - 384 x + 11`` factors over the rationals; its
    roots are ``1/32`` and ``11/32`` and the paper's ``tau2 ≈ 0.344`` is the
    larger one.
    """
    roots = np.roots([1024.0, -384.0, 11.0])
    return float(max(roots.real))


def trigger_epsilon(tau: float) -> float:
    """Eq. (10): the infimum ``f(tau)`` of the expansion factor ``eps'``.

    Defined for ``tau`` strictly between ``tau2`` and ``1/2``; approaches 0 as
    ``tau -> 1/2`` and grows as agents become more tolerant.  For
    ``tau > 1/2`` the symmetric value ``f(1 - tau)`` applies (Section IV.C).
    """
    if not 0.0 < tau < 1.0:
        raise ConfigurationError(f"tau must lie in (0, 1), got {tau}")
    if tau > 0.5:
        tau = 1.0 - tau
    if tau == 0.5:
        return 0.0
    delta = tau - 0.5
    radicand = 9.0 * delta * delta - 7.0 * delta * (3.0 * tau + 0.5)
    if radicand < 0:
        raise ConfigurationError(
            f"f(tau) is not real for tau={tau}; it is defined on (tau2, 1/2)"
        )
    return float((3.0 * delta + math.sqrt(radicand)) / (2.0 * (3.0 * tau + 0.5)))


def trigger_epsilon_curve(taus: np.ndarray) -> np.ndarray:
    """Vectorised ``f(tau)`` over an array of intolerances (Figure 6)."""
    return np.array([trigger_epsilon(float(t)) for t in np.asarray(taus, dtype=float)])


def tau_prime(tau: float, neighborhood_agents: int) -> float:
    """The paper's ``tau' = (tau N - 2) / (N - 1)`` (Lemma 19).

    Accounts for the strict happiness inequality and the agent at the centre
    of the neighbourhood.  Clamped below at 0 for tiny neighbourhoods.
    """
    if neighborhood_agents < 2:
        raise ConfigurationError(
            f"neighborhood_agents must be at least 2, got {neighborhood_agents}"
        )
    value = (tau * neighborhood_agents - 2.0) / (neighborhood_agents - 1.0)
    return float(max(value, 0.0))


def tau_hat(tau: float, neighborhood_agents: int, epsilon: float = 0.0) -> float:
    """The paper's ``tau_hat = tau (1 - 1 / (tau N^{1/2 - eps}))`` (Section III).

    ``epsilon`` is the technical exponent of the concentration argument; the
    asymptotically conservative choice ``epsilon = 0`` is the default.
    """
    if tau <= 0.0:
        return 0.0
    if not 0.0 <= epsilon < 0.5:
        raise ConfigurationError(f"epsilon must lie in [0, 1/2), got {epsilon}")
    scale = neighborhood_agents ** (0.5 - epsilon)
    return float(max(tau * (1.0 - 1.0 / (tau * scale)), 0.0))


def tau_bar(tau: float, neighborhood_agents: int) -> float:
    """The paper's ``tau_bar = 1 - tau + 2/N`` used for ``tau > 1/2`` (Sec. IV.C)."""
    if not 0.0 <= tau <= 1.0:
        raise ConfigurationError(f"tau must lie in [0, 1], got {tau}")
    return float(1.0 - tau + 2.0 / neighborhood_agents)


def mirrored_tau(tau: float) -> float:
    """Map an intolerance above 1/2 to its symmetric counterpart below 1/2.

    The paper extends every result from ``tau < 1/2`` to ``tau > 1/2`` via the
    super-unhappy-agent symmetry; theory functions use this helper to apply
    the reflection.
    """
    if not 0.0 <= tau <= 1.0:
        raise ConfigurationError(f"tau must lie in [0, 1], got {tau}")
    return tau if tau <= 0.5 else 1.0 - tau


def interval_widths() -> dict[str, float]:
    """Widths of the segregation intervals highlighted in Figure 2.

    Returns the width of the monochromatic interval
    ``(tau1, 1 - tau1) \\ {1/2}`` (≈ 0.134) and of the full interval including
    the almost-monochromatic extension ``(tau2, 1 - tau2) \\ {1/2}``
    (≈ 0.312).
    """
    return {
        "monochromatic": 1.0 - 2.0 * tau1(),
        "almost_monochromatic": 1.0 - 2.0 * tau2(),
    }
