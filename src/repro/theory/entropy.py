"""Binary entropy and related information-theoretic helpers.

The exponents of the paper's Theorems 1 and 2 are all expressed through the
binary entropy function ``H`` (Eq. 2) evaluated at (rescaled versions of) the
intolerance, so this small module is the foundation of the whole
:mod:`repro.theory` package.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def binary_entropy(x: float | np.ndarray) -> float | np.ndarray:
    """The binary entropy ``H(x) = -x log2 x - (1-x) log2 (1-x)``.

    Accepts scalars or arrays; ``H(0) = H(1) = 0`` by continuity.  Values
    outside ``[0, 1]`` raise :class:`~repro.errors.ConfigurationError`.
    """
    arr = np.asarray(x, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ConfigurationError(f"binary entropy argument must lie in [0, 1], got {x}")
    result = np.zeros_like(arr)
    interior = (arr > 0.0) & (arr < 1.0)
    values = arr[interior]
    result[interior] = -values * np.log2(values) - (1.0 - values) * np.log2(1.0 - values)
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(result)
    return result


def binary_entropy_complement(x: float | np.ndarray) -> float | np.ndarray:
    """``1 - H(x)``, the rate that appears in every exponent of the paper."""
    result = 1.0 - np.asarray(binary_entropy(x), dtype=float)
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(result)
    return result


def binomial_tail_exponent(fraction: float) -> float:
    """Large-deviation exponent of ``P(Binomial(N, 1/2) <= fraction * N)``.

    For ``fraction < 1/2`` the probability decays like
    ``2^{-[1 - H(fraction)] N}`` (up to polynomial factors); this is exactly
    the quantity ``1 - H(tau')`` of Lemma 19.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
    return float(binary_entropy_complement(fraction))
