"""Random number generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The helpers
here normalise those inputs and derive independent child generators for
replicate experiments so that replicates never share streams.

The second half of the module is the *blocked* RNG substrate used by the
vectorized ensemble engine: :class:`BlockedReplicaStreams` pre-draws each
replica's PCG64 raw-word stream in blocks and re-derives numpy's scalar
``Generator.exponential`` / ``Generator.integers`` draws from those words in
vectorized batches, consuming the underlying bit stream *exactly* as the
per-call scalar path would.  That exactness is what lets the ensemble engine
amortise per-flip ``Generator`` call overhead across replicas while staying
bitwise identical to scalar runs.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances are passed through unchanged so that callers can
    share a stream deliberately; integers and ``SeedSequence`` objects create
    a fresh PCG64 generator; ``None`` draws fresh OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    The derivation uses :meth:`numpy.random.SeedSequence.spawn`, which
    guarantees non-overlapping streams.  When ``seed`` is already a
    ``Generator`` the child sequences are drawn from it instead, which keeps
    the call reproducible for a fixed parent state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def replicate_seeds(seed: SeedLike, count: int) -> list[int]:
    """Return ``count`` reproducible integer seeds derived from ``seed``.

    Useful when replicate descriptions need to be serialisable (e.g. stored in
    a result table) rather than carrying generator objects around.
    """
    rngs = spawn_rngs(seed, count)
    return [int(rng.integers(0, 2**31 - 1)) for rng in rngs]


def ensure_distinct(seeds: Sequence[int]) -> None:
    """Raise ``ValueError`` if ``seeds`` contains duplicates.

    Experiment specs call this to guard against accidentally launching
    replicates that would produce identical trajectories.
    """
    if len(set(seeds)) != len(seeds):
        raise ValueError("replicate seeds must be distinct")


def choice_without_replacement(
    rng: np.random.Generator, population: Iterable[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct elements from ``population``.

    Thin wrapper that materialises the population once and validates the
    request, used by the Kawasaki swapper and the planted-configuration
    generators.
    """
    items = np.asarray(list(population))
    if size > items.size:
        raise ValueError(
            f"cannot sample {size} distinct items from a population of {items.size}"
        )
    return rng.choice(items, size=size, replace=False)


# --------------------------------------------------------------------------
# Blocked replica streams
#
# numpy's scalar draws are thin wrappers over a PCG64 64-bit word stream:
#
# * ``Generator.exponential(scale)`` is ``scale * standard_exponential()``,
#   and the standard exponential is Marsaglia-Tsang ziggurat sampling — the
#   fast path consumes exactly one word ``u`` and returns
#   ``(u >> 11) * WE[(u >> 3) & 0xFF]`` whenever ``u >> 11 < KE[(u >> 3) &
#   0xFF]`` (about 97.8% of draws); the slow path consumes more words.
# * ``Generator.integers(0, n)`` for ``n <= 2**32`` is Lemire's bounded
#   sampler over a *32-bit* sub-stream: PCG64 serves ``next_uint32`` by
#   splitting each 64-bit word into a low half (served first) and a buffered
#   high half, and the buffer survives interleaved 64-bit draws.
#
# Both reductions are exact, so a block of raw words pre-drawn from a
# replica's generator can be turned into the same value sequence the scalar
# calls would produce — across many replicas at once, with numpy array ops.
# The ziggurat tables are numpy internals; they are recovered *exactly* at
# first use by steering a probe PCG64 through chosen output words (see
# ``_calibrate_ziggurat_tables``), then cached on disk per numpy version.
# --------------------------------------------------------------------------

#: The 128-bit LCG multiplier of numpy's PCG64 bit generator.
PCG64_MULTIPLIER = 47026247687942121848144207491837523525
_PCG64_MASK = (1 << 128) - 1
_PCG64_MULT_INV = pow(PCG64_MULTIPLIER, -1, 1 << 128)
_U32_MASK = 0xFFFFFFFF
_ZIG_RI_BITS = 53  #: ziggurat significand width: word >> 11


def pcg64_state_after(state: int, inc: int, delta: int) -> int:
    """The 128-bit PCG64 LCG state ``delta`` 64-bit draws after ``state``.

    Mirrors ``PCG64.advance``: one LCG step per output word.  Used to position
    scratch generators at arbitrary offsets inside a pre-drawn word block and
    to count the words a replayed scalar draw consumed.
    """
    mult, plus = 1, 0
    cur_mult, cur_plus = PCG64_MULTIPLIER, inc
    while delta:
        if delta & 1:
            mult = (mult * cur_mult) & _PCG64_MASK
            plus = (plus * cur_mult + cur_plus) & _PCG64_MASK
        cur_plus = ((cur_mult + 1) * cur_plus) & _PCG64_MASK
        cur_mult = (cur_mult * cur_mult) & _PCG64_MASK
        delta >>= 1
    return (state * mult + plus) & _PCG64_MASK


def _probe_generator_for_word(probe: np.random.Generator, word: int) -> None:
    """Position ``probe`` so that its next 64-bit output is exactly ``word``.

    PCG64's output is the XSL-RR mix of the *post-step* LCG state; a state
    whose high 64 bits are zero mixes to its own low word (rotation 0), so
    stepping the LCG map backwards from that state yields the generator state
    that will emit ``word`` next.
    """
    state = probe.bit_generator.state
    inc = state["state"]["inc"]
    state["state"]["state"] = ((word - inc) * _PCG64_MULT_INV) & _PCG64_MASK
    state["has_uint32"] = 0
    state["uinteger"] = 0
    probe.bit_generator.state = state


def _probe_draw(probe: np.random.Generator, word: int) -> tuple[float, int]:
    """Feed ``word`` to ``standard_exponential``; return (value, words used)."""
    _probe_generator_for_word(probe, word)
    state = probe.bit_generator.state["state"]
    before, inc = state["state"], state["inc"]
    value = probe.standard_exponential()
    after = probe.bit_generator.state["state"]["state"]
    consumed, rolling = 0, before
    while rolling != after:
        rolling = (rolling * PCG64_MULTIPLIER + inc) & _PCG64_MASK
        consumed += 1
        if consumed > 4096:  # pragma: no cover - defensive
            raise RuntimeError("probe draw did not converge")
    return value, consumed


def _calibrate_ziggurat_tables() -> tuple[np.ndarray, np.ndarray]:
    """Recover numpy's exponential-ziggurat tables exactly, by probing.

    For each of the 256 layers the fast-path value table ``WE`` is read off a
    single controlled draw with significand 1 (``1 * WE[idx]`` is ``WE[idx]``
    bitwise), and the acceptance threshold ``KE`` is pinned by binary search
    on the fast/slow classification, observable as exactly-one-word
    consumption.  Layers that never take the fast path get ``KE = 0`` (their
    ``WE`` is never read).  The recovery is exact rather than statistical:
    every probe feeds the ziggurat a chosen word.
    """
    probe = np.random.Generator(np.random.PCG64(0))
    we = np.zeros(256, dtype=np.float64)
    ke = np.zeros(256, dtype=np.uint64)
    top = (1 << _ZIG_RI_BITS) - 1

    def accepted(idx: int, significand: int) -> bool:
        return _probe_draw(probe, (significand << 11) | (idx << 3))[1] == 1

    for idx in range(256):
        if accepted(idx, top):
            ke[idx] = 1 << _ZIG_RI_BITS
        elif not accepted(idx, 0):
            ke[idx] = 0
        else:
            low, high = 0, top  # accepted(low), not accepted(high)
            while high - low > 1:
                mid = (low + high) // 2
                if accepted(idx, mid):
                    low = mid
                else:
                    high = mid
            ke[idx] = high
        if ke[idx] > 1:
            value, consumed = _probe_draw(probe, (1 << 11) | (idx << 3))
            assert consumed == 1
            we[idx] = value
    return we, ke


def _ziggurat_cache_path() -> Path:
    """Per-numpy-version disk cache for the recovered ziggurat tables.

    Scoped to the calling user (uid suffix where the platform has one) so a
    world-writable tempdir never lets another account plant a cache file the
    current user would load; loads are additionally re-verified against live
    draws at freshly randomised probe words (:func:`_verify_ziggurat_tables`).
    """
    uid = getattr(os, "getuid", lambda: "any")()
    return (
        Path(tempfile.gettempdir())
        / f"repro-zigexp-{np.__version__}-u{uid}.npz"
    )


_ZIGGURAT_TABLES: Optional[tuple[np.ndarray, np.ndarray]] = None


def ziggurat_exponential_tables() -> tuple[np.ndarray, np.ndarray]:
    """The ``(WE, KE)`` fast-path tables of numpy's standard exponential.

    Calibrated exactly on first use (a few thousand controlled probe draws,
    well under a second), verified against live draws, and cached both in
    process and on disk keyed by the numpy version.  ``WE`` maps a layer index
    to the fast-path multiplier, ``KE`` to the acceptance bound on the 53-bit
    significand.
    """
    global _ZIGGURAT_TABLES
    if _ZIGGURAT_TABLES is not None:
        return _ZIGGURAT_TABLES
    path = _ziggurat_cache_path()
    tables: Optional[tuple[np.ndarray, np.ndarray]] = None
    try:
        with np.load(path) as data:
            loaded = (data["we"].copy(), data["ke"].copy())
        if _verify_ziggurat_tables(loaded):
            tables = loaded
    except (OSError, KeyError, ValueError):
        tables = None
    if tables is None:
        tables = _calibrate_ziggurat_tables()
        try:  # best-effort cache: never let a read-only tempdir break runs
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npz")
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, we=tables[0], ke=tables[1])
            os.replace(tmp, path)
        except OSError:
            pass
    _ZIGGURAT_TABLES = tables
    return tables


def _verify_ziggurat_tables(tables: tuple[np.ndarray, np.ndarray]) -> bool:
    """Spot-check cached tables against live ``standard_exponential`` draws.

    Probe words are drawn from fresh OS entropy and cover every layer index,
    so a stale or tampered cache file cannot be crafted to pass by matching a
    predictable probe set: each load faces a different check, and each of the
    256 ``WE``/``KE`` entries is exercised at least once.
    """
    we, ke = tables
    if we.shape != (256,) or ke.shape != (256,):
        return False
    probe = np.random.Generator(np.random.PCG64(0))
    rng = np.random.default_rng()  # fresh entropy: unpredictable probes
    significands = rng.integers(0, 1 << _ZIG_RI_BITS, size=256, dtype=np.uint64)

    def check(idx: int, significand: int) -> bool:
        value, consumed = _probe_draw(probe, (significand << 11) | (idx << 3))
        if significand < int(ke[idx]):
            return consumed == 1 and value == float(significand) * we[idx]
        return consumed != 1

    for idx, significand in enumerate(significands.tolist()):
        # One random probe per layer plus both sides of the layer's claimed
        # acceptance boundary, so every WE/KE entry is pinned per load.
        if not check(idx, int(significand)):
            return False
        boundary = int(ke[idx])
        if boundary > 0 and not check(idx, boundary - 1):
            return False
        if boundary < (1 << _ZIG_RI_BITS) and not check(idx, boundary):
            return False
    return True


class BlockedReplicaStreams:
    """Blocked, bitwise-exact consumption of per-replica PCG64 streams.

    Wraps one :class:`numpy.random.Generator` per replica and serves the two
    scalar draw kinds the dynamics engines perform — ``standard_exponential``
    and ``integers(0, high)`` — from pre-drawn raw-word blocks, vectorized
    across replicas.  Each replica's bit stream is consumed in exactly the
    order and quantity the scalar calls would consume it (ziggurat fast path
    re-derived from the block; rare slow paths replayed through a scratch
    generator positioned at the exact stream offset; Lemire-32 bounded
    integers including the half-word buffer), so every value returned is
    bitwise identical to the corresponding scalar ``Generator`` call.

    ``block_words`` tunes the refill granularity; correctness does not depend
    on it (the boundary property tests run it down to one word per block).

    Two execution regimes serve the same draws from the same buffers:
    :meth:`draw_step` runs a tight scalar loop over memoryviews when few
    replicas are active (array-op dispatch overhead would dominate) and the
    vectorized :meth:`standard_exponential` / :meth:`bounded_integers` pair
    otherwise.  Both consume the buffers identically, so the choice is purely
    a per-round cost decision.
    """

    #: Active-replica count below which the scalar draw loop beats the
    #: vectorized path (array-op dispatch costs ~1us per op; the scalar loop
    #: costs ~1us per replica total).
    SCALAR_PATH_MAX = 32

    def __init__(
        self, rngs: Sequence[np.random.Generator], block_words: int = 4096
    ) -> None:
        if block_words <= 0:
            raise ValueError(f"block_words must be positive, got {block_words}")
        self._rngs = list(rngs)
        n_streams = len(self._rngs)
        if n_streams == 0:
            raise ValueError("BlockedReplicaStreams needs at least one generator")
        self._block_words = int(block_words)
        self._words = np.zeros((n_streams, self._block_words), dtype=np.uint64)
        #: Next unconsumed word per replica; == block_words means exhausted.
        self._pos = np.full(n_streams, self._block_words, dtype=np.int64)
        self._base: list[Optional[int]] = [None] * n_streams
        self._inc: list[int] = []
        self._has32 = np.zeros(n_streams, dtype=bool)
        self._buf32 = np.zeros(n_streams, dtype=np.uint64)
        for index, rng in enumerate(self._rngs):
            state = rng.bit_generator.state
            if state.get("bit_generator") != "PCG64":
                raise ValueError(
                    "BlockedReplicaStreams requires PCG64 generators, got "
                    f"{state.get('bit_generator')!r}"
                )
            self._inc.append(state["state"]["inc"])
            self._has32[index] = bool(state["has_uint32"])
            self._buf32[index] = state["uinteger"]
        self._scratch = np.random.Generator(np.random.PCG64(0))
        self._we, self._ke = ziggurat_exponential_tables()
        # Scalar-path mirrors: memoryviews over the same buffers (list-speed
        # element access) plus the tables as plain Python lists.
        self._words_mv = memoryview(self._words.reshape(-1))
        self._pos_mv = memoryview(self._pos)
        self._has32_mv = memoryview(self._has32)
        self._buf32_mv = memoryview(self._buf32)
        self._we_list = self._we.tolist()
        self._ke_list = self._ke.tolist()

    @property
    def n_streams(self) -> int:
        """Number of wrapped per-replica streams."""
        return len(self._rngs)

    @property
    def block_words(self) -> int:
        """Words pre-drawn per refill."""
        return self._block_words

    # ---------------------------------------------------------------- refills

    def _refill(self, replica: int) -> None:
        """Draw the next word block for ``replica`` from its generator.

        ``pos`` beyond the block end (a slow-path replay that ran past the
        buffer) carries over: those words were already consumed logically, so
        the new block starts with them skipped.
        """
        overrun = int(self._pos[replica]) - self._block_words
        rng = self._rngs[replica]
        self._base[replica] = rng.bit_generator.state["state"]["state"]
        self._words[replica] = rng.integers(
            0, 2**64, size=self._block_words, dtype=np.uint64
        )
        self._pos[replica] = overrun

    def _ensure(self, replicas: np.ndarray) -> None:
        """Refill every listed replica whose block is exhausted.

        A slow-path replay can overrun the block by more than one whole block
        length when ``block_words`` is tiny, hence the loop per replica.
        """
        exhausted = self._pos[replicas] >= self._block_words
        if exhausted.any():
            for replica in replicas[exhausted]:
                while self._pos[replica] >= self._block_words:
                    self._refill(int(replica))

    # ----------------------------------------------------------- exponentials

    def standard_exponential(self, replicas: np.ndarray) -> np.ndarray:
        """One ``Generator.standard_exponential()`` draw per listed replica.

        ``replicas`` must not contain duplicates (one draw each).  The
        ziggurat fast path is computed vectorized from each replica's next
        block word; slow-path draws (~2%) are replayed bitwise through a
        scratch generator positioned at the exact stream offset.
        """
        replicas = np.asarray(replicas, dtype=np.int64)
        if replicas.size == 0:
            return np.empty(0, dtype=np.float64)
        self._ensure(replicas)
        words = self._words[replicas, self._pos[replicas]]
        layer = ((words >> np.uint64(3)) & np.uint64(0xFF)).astype(np.int64)
        significand = words >> np.uint64(11)
        values = significand.astype(np.float64) * self._we[layer]
        self._pos[replicas] += 1
        fast = significand < self._ke[layer]
        if not fast.all():
            for slot in np.flatnonzero(~fast):
                values[slot] = self._replay_exponential(int(replicas[slot]))
        return values

    def _replay_exponential(self, replica: int) -> float:
        """Replay one slow-path exponential draw bitwise via numpy itself.

        The scratch generator is positioned at the replica's exact logical
        stream offset (block base advanced by the consumed word count), the
        scalar call runs, and the words it consumed are counted off the LCG
        state so the block position stays exact — even when the draw runs
        past the end of the pre-drawn block.
        """
        start = int(self._pos[replica]) - 1
        inc = self._inc[replica]
        base = self._base[replica]
        assert base is not None
        before = pcg64_state_after(base, inc, start)
        self._scratch.bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": before, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        value = float(self._scratch.standard_exponential())
        after = self._scratch.bit_generator.state["state"]["state"]
        consumed, rolling = 0, before
        while rolling != after:
            rolling = (rolling * PCG64_MULTIPLIER + inc) & _PCG64_MASK
            consumed += 1
        self._pos[replica] = start + consumed
        return value

    # --------------------------------------------------------------- integers

    def bounded_integers(self, replicas: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """One ``Generator.integers(0, high)`` draw per listed replica.

        ``replicas`` must not contain duplicates and every ``high`` must be a
        positive bound below ``2**32`` (grids index their sites well inside
        that).  Implements numpy's exact path for that range: Lemire bounded
        sampling over the buffered 32-bit sub-stream, rejection loop included.
        """
        replicas = np.asarray(replicas, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        results = np.zeros(replicas.shape, dtype=np.int64)
        need = highs > 1  # high == 1 returns 0 without consuming anything
        if not need.any():
            return results
        rows = replicas[need]
        bounds = highs[need].astype(np.uint64)
        candidates = np.empty(rows.shape, dtype=np.uint64)
        from_buffer = self._has32[rows]
        if from_buffer.any():
            buffered = rows[from_buffer]
            candidates[from_buffer] = self._buf32[buffered]
            self._has32[buffered] = False
        fresh = ~from_buffer
        if fresh.any():
            fresh_rows = rows[fresh]
            self._ensure(fresh_rows)
            words = self._words[fresh_rows, self._pos[fresh_rows]]
            self._pos[fresh_rows] += 1
            candidates[fresh] = words & np.uint64(_U32_MASK)
            self._buf32[fresh_rows] = words >> np.uint64(32)
            self._has32[fresh_rows] = True
        # Lemire: scaled = candidate * bound fits u64 exactly (both < 2**32).
        scaled = candidates * bounds
        leftover = scaled & np.uint64(_U32_MASK)
        maybe = leftover < bounds
        if maybe.any():
            thresholds = (np.uint64(1 << 32) - bounds[maybe]) % bounds[maybe]
            rejected = leftover[maybe] < thresholds
            if rejected.any():
                slots = np.flatnonzero(maybe)[rejected]
                for slot in slots:
                    scaled[slot] = self._lemire32_rejection_loop(
                        int(rows[slot]), int(bounds[slot])
                    )
        results[need] = (scaled >> np.uint64(32)).astype(np.int64)
        return results

    def draw_step(
        self,
        replicas: np.ndarray,
        highs: np.ndarray,
        exponentials: bool,
    ) -> tuple[Optional[np.ndarray], np.ndarray]:
        """One dynamics step's draws per replica, picking the cheaper regime.

        For each listed replica (no duplicates): one standard-exponential
        draw (when ``exponentials`` — the continuous scheduler's waiting
        time) followed by one ``integers(0, high)`` candidate draw, exactly
        the scalar engine's per-step order.  Returns ``(exponentials,
        candidates)`` with the first entry ``None`` when not requested.
        Small batches run a scalar loop over the block buffers; large ones
        take the vectorized path.  Both are bitwise identical.

        NOTE: the scalar loop below is deliberately re-inlined (without the
        filtering/clock work) by ``EnsembleDynamics._step_all_scalar`` —
        three sites implement the word-consumption protocol (here scalar,
        here vectorized via the split methods, and the engine's inline
        copy).  Any change to the protocol must touch all three; the
        boundary tests in ``test_rng.py`` / ``test_core_ensemble.py`` pin
        each copy to live ``Generator`` draws, so a missed site fails fast.
        """
        if replicas.size > self.SCALAR_PATH_MAX:
            values = (
                self.standard_exponential(replicas) if exponentials else None
            )
            return values, self.bounded_integers(replicas, highs)
        words_mv = self._words_mv
        pos_mv = self._pos_mv
        has32_mv = self._has32_mv
        buf32_mv = self._buf32_mv
        ke_list = self._ke_list
        we_list = self._we_list
        block = self._block_words
        exp_values: Optional[list[float]] = [] if exponentials else None
        candidates: list[int] = []
        for replica, high in zip(replicas.tolist(), highs.tolist()):
            word_base = replica * block
            if exp_values is not None:
                position = pos_mv[replica]
                if position >= block:
                    self._refill_until_ready(replica)
                    position = pos_mv[replica]
                word = words_mv[word_base + position]
                pos_mv[replica] = position + 1
                significand = word >> 11
                layer = (word >> 3) & 0xFF
                if significand < ke_list[layer]:
                    # Python's int->float conversion is exact below 2**53 and
                    # the multiply is the same IEEE op as numpy's.
                    exp_values.append(significand * we_list[layer])
                else:
                    exp_values.append(self._replay_exponential(replica))
            if high <= 1:
                candidates.append(0)
                continue
            if has32_mv[replica]:
                candidate = buf32_mv[replica]
                has32_mv[replica] = False
            else:
                position = pos_mv[replica]
                if position >= block:
                    self._refill_until_ready(replica)
                    position = pos_mv[replica]
                word = words_mv[word_base + position]
                pos_mv[replica] = position + 1
                candidate = word & _U32_MASK
                buf32_mv[replica] = word >> 32
                has32_mv[replica] = True
            scaled = candidate * high
            leftover = scaled & _U32_MASK
            if leftover < high:
                threshold = ((1 << 32) - high) % high
                while leftover < threshold:
                    scaled = self._next32_scalar(replica) * high
                    leftover = scaled & _U32_MASK
            candidates.append(scaled >> 32)
        return (
            None if exp_values is None else np.asarray(exp_values, dtype=np.float64),
            np.asarray(candidates, dtype=np.int64),
        )

    def _refill_until_ready(self, replica: int) -> None:
        """Refill ``replica`` until its block position is inside the block."""
        while self._pos[replica] >= self._block_words:
            self._refill(replica)

    def scalar_views(self) -> tuple[memoryview, memoryview, memoryview, memoryview]:
        """The ``(words, pos, has32, buf32)`` memoryviews of the buffers.

        The fused engine's scalar round loop inlines the fast paths of
        :meth:`draw_step` against these live views (the same buffers the
        vectorized methods use, so the regimes stay interchangeable).  On a
        block miss or a ziggurat slow path the caller hands control back via
        :meth:`_refill_until_ready` / :meth:`_replay_exponential` /
        :meth:`_next32_scalar`.
        """
        return self._words_mv, self._pos_mv, self._has32_mv, self._buf32_mv

    def ziggurat_lists(self) -> tuple[list, list]:
        """The ``(KE, WE)`` ziggurat tables as plain lists (scalar contract)."""
        return self._ke_list, self._we_list

    def _next32_scalar(self, replica: int) -> int:
        """The replica's next 32-bit sub-stream value (scalar fallback path)."""
        if self._has32[replica]:
            self._has32[replica] = False
            return int(self._buf32[replica])
        while self._pos[replica] >= self._block_words:
            self._refill(replica)
        word = int(self._words[replica, self._pos[replica]])
        self._pos[replica] += 1
        self._buf32[replica] = word >> 32
        self._has32[replica] = True
        return word & _U32_MASK

    def _lemire32_rejection_loop(self, replica: int, bound: int) -> int:
        """Continue a rejected Lemire draw until acceptance (rare path)."""
        threshold = ((1 << 32) - bound) % bound
        while True:
            scaled = self._next32_scalar(replica) * bound
            if (scaled & _U32_MASK) >= threshold:
                return scaled
