"""Random number generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The helpers
here normalise those inputs and derive independent child generators for
replicate experiments so that replicates never share streams.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances are passed through unchanged so that callers can
    share a stream deliberately; integers and ``SeedSequence`` objects create
    a fresh PCG64 generator; ``None`` draws fresh OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    The derivation uses :meth:`numpy.random.SeedSequence.spawn`, which
    guarantees non-overlapping streams.  When ``seed`` is already a
    ``Generator`` the child sequences are drawn from it instead, which keeps
    the call reproducible for a fixed parent state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def replicate_seeds(seed: SeedLike, count: int) -> list[int]:
    """Return ``count`` reproducible integer seeds derived from ``seed``.

    Useful when replicate descriptions need to be serialisable (e.g. stored in
    a result table) rather than carrying generator objects around.
    """
    rngs = spawn_rngs(seed, count)
    return [int(rng.integers(0, 2**31 - 1)) for rng in rngs]


def ensure_distinct(seeds: Sequence[int]) -> None:
    """Raise ``ValueError`` if ``seeds`` contains duplicates.

    Experiment specs call this to guard against accidentally launching
    replicates that would produce identical trajectories.
    """
    if len(set(seeds)) != len(seeds):
        raise ValueError("replicate seeds must be distinct")


def choice_without_replacement(
    rng: np.random.Generator, population: Iterable[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct elements from ``population``.

    Thin wrapper that materialises the population once and validates the
    request, used by the Kawasaki swapper and the planted-configuration
    generators.
    """
    items = np.asarray(list(population))
    if size > items.size:
        raise ValueError(
            f"cannot sample {size} distinct items from a population of {items.size}"
        )
    return rng.choice(items, size=size, replace=False)
