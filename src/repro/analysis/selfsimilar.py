"""Empirical checks of Proposition 1 (self-similarity of sub-neighbourhoods).

Proposition 1: conditioned on a neighbourhood of size ``N`` holding fewer
than ``tau N`` minority agents, a sub-neighbourhood holding a fraction
``gamma`` of its agents contains ``gamma tau N`` minority agents up to
``O(N^{1/2 + eps})`` fluctuations, with probability ``1 - exp(-c N^{2 eps})``.

The Monte-Carlo estimator here draws Bernoulli neighbourhoods, conditions on
the minority-count event by rejection, and records the deviation
``|W' - gamma tau N|`` of the sub-neighbourhood count — which the E10
benchmark compares against the proposition's concentration window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ModelConfig
from repro.errors import AnalysisError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SelfSimilarityEstimate:
    """Monte-Carlo summary of the Proposition 1 deviations."""

    gamma: float
    n_agents: int
    n_samples: int
    n_rejected: int
    deviations: np.ndarray
    window: float

    @property
    def concentration_probability(self) -> float:
        """Empirical ``P(|W' - gamma tau N| < window | W < tau N)``."""
        if self.deviations.size == 0:
            return 0.0
        return float(np.mean(self.deviations < self.window))

    @property
    def mean_deviation(self) -> float:
        """Mean absolute deviation of ``W'`` from ``gamma tau N``."""
        if self.deviations.size == 0:
            return float("nan")
        return float(self.deviations.mean())


def estimate_subneighborhood_concentration(
    config: ModelConfig,
    gamma: float,
    n_samples: int,
    window_constant: float = 1.0,
    epsilon: float = 0.25,
    seed: SeedLike = None,
    max_attempts_factor: int = 50,
) -> SelfSimilarityEstimate:
    """Sample the conditional deviation of Proposition 1 by rejection.

    Each sample draws ``N`` i.i.d. Bernoulli(1/2) types, keeps the draw only
    when the minority count is below ``tau N`` (the conditioning event of the
    proposition), picks a uniformly random sub-neighbourhood containing
    ``round(gamma N)`` of the agents, and records
    ``|W' - gamma tau N|``.  The concentration window is
    ``window_constant * N^{1/2 + epsilon}``.
    """
    if not 0.0 < gamma < 1.0:
        raise AnalysisError(f"gamma must lie in (0, 1), got {gamma}")
    if n_samples <= 0:
        raise AnalysisError(f"n_samples must be positive, got {n_samples}")
    rng = make_rng(seed)
    n = config.neighborhood_agents
    tau = config.tau
    sub_size = int(round(gamma * n))
    if sub_size <= 0 or sub_size >= n:
        raise AnalysisError(
            f"gamma={gamma} yields a degenerate sub-neighbourhood of size {sub_size}"
        )
    target = gamma * tau * n
    window = window_constant * n ** (0.5 + epsilon)

    deviations = []
    rejected = 0
    max_attempts = max_attempts_factor * n_samples
    attempts = 0
    while len(deviations) < n_samples and attempts < max_attempts:
        attempts += 1
        types = rng.random(n) < 0.5  # True marks a minority (-1) agent
        minority = int(types.sum())
        if minority >= tau * n:
            rejected += 1
            continue
        chosen = rng.choice(n, size=sub_size, replace=False)
        sub_minority = int(types[chosen].sum())
        deviations.append(abs(sub_minority - target))
    if not deviations:
        raise AnalysisError(
            "the conditioning event W < tau N never occurred; tau is too small "
            "for this neighbourhood size"
        )
    return SelfSimilarityEstimate(
        gamma=gamma,
        n_agents=n,
        n_samples=len(deviations),
        n_rejected=rejected,
        deviations=np.asarray(deviations, dtype=float),
        window=window,
    )
