"""Trajectory analysis: how a run approached its terminal configuration.

The dynamics engine can record a :class:`~repro.core.dynamics.Trajectory`
(time, flip count, unhappy count, Lyapunov energy, magnetisation).  The
helpers here turn those time series into the scalar diagnostics the Figure 1
benchmark and the ablation benchmark report: termination time, flips per
site, the monotonicity of the energy and the decay profile of the unhappy
population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dynamics import Trajectory
from repro.errors import AnalysisError


@dataclass(frozen=True)
class TrajectorySummary:
    """Scalar summary of a recorded trajectory."""

    final_time: float
    total_flips: int
    initial_unhappy: int
    final_unhappy: int
    initial_energy: int
    final_energy: int
    energy_monotone: bool

    @property
    def energy_gain(self) -> int:
        """Total increase of the Lyapunov energy over the run."""
        return self.final_energy - self.initial_energy

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "final_time": self.final_time,
            "total_flips": float(self.total_flips),
            "initial_unhappy": float(self.initial_unhappy),
            "final_unhappy": float(self.final_unhappy),
            "initial_energy": float(self.initial_energy),
            "final_energy": float(self.final_energy),
            "energy_gain": float(self.energy_gain),
            "energy_monotone": float(self.energy_monotone),
        }


def summarize_trajectory(trajectory: Trajectory) -> TrajectorySummary:
    """Summarise a recorded trajectory; raises if it is empty."""
    if len(trajectory) == 0:
        raise AnalysisError("trajectory is empty; was recording enabled?")
    energy = np.asarray(trajectory.energy)
    return TrajectorySummary(
        final_time=float(trajectory.times[-1]),
        total_flips=int(trajectory.n_flips[-1]),
        initial_unhappy=int(trajectory.n_unhappy[0]),
        final_unhappy=int(trajectory.n_unhappy[-1]),
        initial_energy=int(energy[0]),
        final_energy=int(energy[-1]),
        energy_monotone=bool(np.all(np.diff(energy) >= 0)),
    )


def flips_per_site(trajectory: Trajectory, n_sites: int) -> float:
    """Average number of flips per grid site over the run."""
    if n_sites <= 0:
        raise AnalysisError(f"n_sites must be positive, got {n_sites}")
    if len(trajectory) == 0:
        raise AnalysisError("trajectory is empty")
    return trajectory.n_flips[-1] / n_sites


def unhappy_decay_profile(trajectory: Trajectory) -> np.ndarray:
    """Unhappy count as a fraction of its initial value at every sample.

    Useful for plotting the relaxation of the process; the first entry is 1.0
    by construction (or 0 if the run started already terminated).
    """
    if len(trajectory) == 0:
        raise AnalysisError("trajectory is empty")
    counts = np.asarray(trajectory.n_unhappy, dtype=float)
    initial = counts[0]
    if initial == 0:
        return np.zeros_like(counts)
    return counts / initial


def time_to_fraction_unhappy(trajectory: Trajectory, fraction: float) -> float:
    """First recorded time at which the unhappy count fell to ``fraction`` of its start.

    Returns ``inf`` when the threshold was never reached within the recording.
    """
    if not 0.0 <= fraction <= 1.0:
        raise AnalysisError(f"fraction must lie in [0, 1], got {fraction}")
    profile = unhappy_decay_profile(trajectory)
    below = np.nonzero(profile <= fraction)[0]
    if below.size == 0:
        return float("inf")
    return float(trajectory.times[int(below[0])])
