"""Monochromatic and almost monochromatic regions.

The paper's central observable is the *monochromatic region* of an agent
``u``: the largest-radius neighbourhood (square window) around ``u`` that
contains agents of a single type in the terminated configuration, and whose
size ``M`` Theorem 1 brackets between ``2^{aN}`` and ``2^{bN}``.  Theorem 2
replaces "single type" with "almost monochromatic": the ratio of minority to
majority agents inside the window is at most ``e^{-eps N}``.

Everything here operates on plain ±1 spin arrays so that it can be applied to
snapshots, final states or planted configurations alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.neighborhood import (
    neighborhood_size,
    window_sums,
    wrapped_summed_area_table,
    wrapped_summed_area_table_batch,
)
from repro.errors import AnalysisError
from repro.utils.validation import require_spin_array


def _max_usable_radius(shape: tuple[int, int], max_radius: Optional[int]) -> int:
    """Largest window radius that still fits on the torus."""
    limit = (min(shape) - 1) // 2
    if max_radius is None:
        return limit
    if max_radius < 0:
        raise AnalysisError(f"max_radius must be non-negative, got {max_radius}")
    return min(max_radius, limit)


def region_scan_table(spins: np.ndarray, max_radius: Optional[int] = None) -> np.ndarray:
    """Shared summed-area table for the region scans of one configuration.

    Both :func:`monochromatic_radius_map` and
    :func:`almost_monochromatic_radius_map` resolve window counts from a
    limit-padded :func:`~repro.core.neighborhood.wrapped_summed_area_table`
    of the plus indicator.  Building the table once and passing it to both
    scans (as :func:`repro.analysis.segregation.segregation_metrics` does)
    halves the table-construction cost without changing a single bit of the
    results.
    """
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    return wrapped_summed_area_table(spins == 1, max(limit, 0))


def region_scan_table_batch(
    spins_stack: np.ndarray, max_radius: Optional[int] = None
) -> np.ndarray:
    """Scan tables for a whole ``(R, n, m)`` replica stack, built in one pass.

    Slice ``r`` is bitwise identical to ``region_scan_table(spins_stack[r],
    max_radius)`` — exact integer summed-area tables — but the torus padding
    and the two cumulative sums run once over the stack instead of once per
    replica, which is how
    :func:`repro.analysis.segregation.segregation_metrics_batch` shares one
    table build across an ensemble batch's equal-shape replicas.
    """
    stack = np.asarray(spins_stack)
    if stack.ndim != 3:
        raise AnalysisError(
            f"spins_stack must be a (R, n, m) array, got shape {stack.shape}"
        )
    for replica in stack:
        require_spin_array(replica)
    limit = _max_usable_radius(stack.shape[1:], max_radius)
    return wrapped_summed_area_table_batch(stack == 1, max(limit, 0))


def _resolve_scan_table(
    spins: np.ndarray, limit: int, table: Optional[np.ndarray]
) -> tuple[np.ndarray, int]:
    """Build or validate the scan table for one radius map; returns (table, pad).

    A caller-supplied table must be a ``wrapped_summed_area_table`` of the
    configuration's plus indicator with padding at least ``limit`` so that
    every window of every usable radius lies inside it; ``None`` builds a
    fresh ``limit``-padded one.
    """
    if table is None:
        return wrapped_summed_area_table(spins == 1, limit), limit
    n_rows, n_cols = spins.shape
    pad = (table.shape[0] - 1 - n_rows) // 2
    expected = (n_rows + 2 * pad + 1, n_cols + 2 * pad + 1)
    if pad < limit or table.shape != expected:
        raise AnalysisError(
            f"scan table of shape {table.shape} does not cover grid "
            f"{spins.shape} up to radius {limit}"
        )
    return table, pad


def monochromatic_radius_map(
    spins: np.ndarray,
    max_radius: Optional[int] = None,
    *,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-agent radius of the largest monochromatic window centred at the agent.

    Entry ``(i, j)`` is the largest ``rho`` such that every agent within
    l-infinity distance ``rho`` of ``(i, j)`` has the same type as the agent
    at ``(i, j)`` (0 when even the 3x3 window is mixed... i.e. when only the
    agent itself qualifies).  The scan stops at ``max_radius`` or at the
    largest radius that fits on the torus, whichever is smaller.

    Window monochromaticity is monotone in the radius (a sub-window of a
    uniform window is uniform), so instead of the linear per-radius
    ``window_sums`` scan — a full O(grid) pass per radius, O(limit) passes
    total — the search builds *one* summed-area table padded by ``limit``
    (window sums at any per-site radius are then four table gathers) and runs
    a doubling/bisection schedule over radius levels on the alive set:
    doubling probes ``1, 2, 4, ...`` bracket each surviving site's radius,
    and a per-site parallel bisection pins it exactly.  Total work is
    O(grid * log limit) gathers plus the O((grid side + 2 limit)^2) table
    build, versus O(grid * limit) for the scan.  Bitwise identical to
    :func:`_monochromatic_radius_map_reference` (the retained linear scan),
    which the equivalence tests assert.

    ``table`` optionally supplies a precomputed :func:`region_scan_table` so
    several scans of the same configuration share one build.
    """
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    n_rows, n_cols = spins.shape
    radii = np.zeros(spins.shape, dtype=np.int64)
    if limit < 1:
        return radii

    # One summed-area table over the torus-padded indicator; the window of
    # any radius <= limit around any site lies inside it, so per-site counts
    # are four gathers instead of a grid pass.
    table, pad = _resolve_scan_table(spins, limit, table)

    all_rows, all_cols = np.divmod(np.arange(n_rows * n_cols), n_cols)

    def is_mono(sites: np.ndarray, radius) -> np.ndarray:
        """Whether each site's window of its ``radius`` (scalar or per-site)
        is single-type: the plus count is 0 or the full window population."""
        top = all_rows[sites] - radius + pad
        bottom = all_rows[sites] + radius + pad + 1
        left = all_cols[sites] - radius + pad
        right = all_cols[sites] + radius + pad + 1
        counts = (
            table[bottom, right]
            - table[top, right]
            - table[bottom, left]
            + table[top, left]
        )
        return (counts == (2 * radius + 1) ** 2) | (counts == 0)

    # Doubling phase on the alive set: lo holds the largest probed radius
    # each site is known to satisfy, hi the smallest it is known to fail
    # (sentinel limit + 1 = "never failed"); only sites alive at the previous
    # level are probed again.
    lo = np.zeros(n_rows * n_cols, dtype=np.int64)
    hi = np.full(n_rows * n_cols, limit + 1, dtype=np.int64)
    alive = np.arange(n_rows * n_cols)
    radius = 1
    while alive.size and radius <= limit:
        mono = is_mono(alive, radius)
        lo[alive[mono]] = radius
        hi[alive[~mono]] = radius
        alive = alive[mono]
        radius *= 2

    # Per-site parallel bisection: every unresolved bracket halves per round,
    # each site probing its own midpoint in the same vectorized gather.
    unresolved = np.flatnonzero(hi - lo > 1)
    while unresolved.size:
        mid = (lo[unresolved] + hi[unresolved]) // 2
        mono = is_mono(unresolved, mid)
        lo[unresolved[mono]] = mid[mono]
        hi[unresolved[~mono]] = mid[~mono]
        unresolved = unresolved[hi[unresolved] - lo[unresolved] > 1]
    radii[...] = lo.reshape(n_rows, n_cols)
    return radii


def _monochromatic_radius_map_reference(
    spins: np.ndarray, max_radius: Optional[int] = None
) -> np.ndarray:
    """Linear per-radius scan — the reference :func:`monochromatic_radius_map`.

    Retained for the equivalence tests (and as the easiest statement of the
    semantics): one ``window_sums`` pass per radius over the whole grid,
    stopping once no site is alive.
    """
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    radii = np.zeros(spins.shape, dtype=np.int64)
    plus_indicator = (spins == 1).astype(np.int64)
    alive = np.ones(spins.shape, dtype=bool)
    for radius in range(1, limit + 1):
        counts = window_sums(plus_indicator, radius)
        total = neighborhood_size(radius)
        mono = (counts == total) | (counts == 0)
        alive &= mono
        if not alive.any():
            break
        radii[alive] = radius
    return radii


def monochromatic_radius(
    spins: np.ndarray, site: tuple[int, int], max_radius: Optional[int] = None
) -> int:
    """Radius of the monochromatic region of a single agent.

    Window monochromaticity is monotone in the radius, so instead of scanning
    every radius the search doubles the candidate until a window fails (or
    the limit is reached) and then binary-searches the bracket: O(log rho)
    window checks, each dominated by the largest O(rho^2) window — versus the
    O(rho^3) total work of the linear scan this replaces.
    """
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    n_rows, n_cols = spins.shape
    row, col = site[0] % n_rows, site[1] % n_cols
    center_type = spins[row, col]

    def window_is_monochromatic(radius: int) -> bool:
        rows = np.arange(row - radius, row + radius + 1) % n_rows
        cols = np.arange(col - radius, col + radius + 1) % n_cols
        return bool(np.all(spins[np.ix_(rows, cols)] == center_type))

    if limit < 1 or not window_is_monochromatic(1):
        return 0
    largest_good = 1
    first_bad = 2
    while first_bad <= limit and window_is_monochromatic(first_bad):
        largest_good = first_bad
        first_bad *= 2
    if first_bad > limit:
        first_bad = limit + 1
    while first_bad - largest_good > 1:
        mid = (largest_good + first_bad) // 2
        if window_is_monochromatic(mid):
            largest_good = mid
        else:
            first_bad = mid
    return largest_good


def minority_ratio_map(spins: np.ndarray, radius: int) -> np.ndarray:
    """Per-agent ratio of minority to majority counts in the radius-``radius`` window.

    The ratio is 0 for a monochromatic window and approaches 1 for a perfectly
    mixed one; it is exactly the quantity bounded by ``e^{-eps N}`` in the
    paper's definition of an almost monochromatic region.
    """
    spins = require_spin_array(spins)
    plus = window_sums((spins == 1).astype(np.int64), radius)
    total = neighborhood_size(radius)
    minus = total - plus
    minority = np.minimum(plus, minus).astype(float)
    majority = np.maximum(plus, minus).astype(float)
    return minority / majority


def almost_monochromatic_radius_map(
    spins: np.ndarray,
    ratio_threshold: float,
    max_radius: Optional[int] = None,
    *,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-agent radius of the largest window with minority ratio below threshold.

    Unlike the strictly monochromatic case the property is not monotone in the
    radius (a window can re-qualify after a mixed intermediate shell), so the
    doubling/bisection bracket of :func:`monochromatic_radius_map` does not
    apply.  The *largest-qualifying-radius* formulation does: the answer for a
    site is the largest level of a top-down sweep at which its window
    qualifies, so the scan walks the radius levels from ``limit`` down to 1
    with an active set from which each site leaves at its first (largest)
    qualifying radius.  Window counts come from per-site four-corner gathers
    on one limit-padded summed-area table instead of the full
    ``minority_ratio_map`` grid pass (table build included) the reference
    performs per level, and sites in segregated patches — where all the
    Theorem 2 signal lives — leave the active set near ``limit``, so the
    sweep touches a rapidly shrinking population.  Bitwise identical to
    :func:`_almost_monochromatic_radius_map_reference` (the retained linear
    scan), which the equivalence tests assert.

    ``table`` optionally supplies a precomputed :func:`region_scan_table` so
    several scans of the same configuration share one build.
    """
    if not 0.0 <= ratio_threshold <= 1.0:
        raise AnalysisError(
            f"ratio_threshold must lie in [0, 1], got {ratio_threshold}"
        )
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    n_rows, n_cols = spins.shape
    radii = np.zeros(spins.shape, dtype=np.int64)
    if limit < 1:
        return radii

    table, pad = _resolve_scan_table(spins, limit, table)

    # Flat view of the table plus a per-site base index: at a fixed radius
    # level every window corner sits at one scalar offset from the base, so
    # each level costs four flat gathers on the active set — no per-site
    # index arithmetic beyond a single add.
    flat_table = table.ravel()
    width = table.shape[1]
    flat_radii = radii.ravel()
    all_rows, all_cols = np.divmod(np.arange(n_rows * n_cols), n_cols)
    base = (all_rows + pad) * width + (all_cols + pad)
    active = np.arange(n_rows * n_cols)
    for radius in range(limit, 0, -1):
        below = (radius + 1) * width
        above = radius * width
        plus = (
            flat_table.take(base + (below + radius + 1))
            - flat_table.take(base - (above - radius - 1))
            - flat_table.take(base + (below - radius))
            + flat_table.take(base - (above + radius))
        )
        minus = neighborhood_size(radius) - plus
        # The exact float expression of minority_ratio_map, applied to the
        # active sites only: identical integer counts, identical IEEE
        # division, hence bitwise-identical qualification decisions.
        minority = np.minimum(plus, minus).astype(float)
        majority = np.maximum(plus, minus).astype(float)
        qualifies = minority / majority <= ratio_threshold
        flat_radii[active[qualifies]] = radius
        keep = ~qualifies
        active = active[keep]
        if not active.size:
            break
        base = base[keep]
    return radii


def _almost_monochromatic_radius_map_reference(
    spins: np.ndarray,
    ratio_threshold: float,
    max_radius: Optional[int] = None,
) -> np.ndarray:
    """Linear per-radius scan — the reference for
    :func:`almost_monochromatic_radius_map`.

    One full :func:`minority_ratio_map` grid pass per radius, recording the
    largest qualifying radius per site.  Retained as the equivalence oracle
    for the property tests and the region-scan benchmark; production code
    should always call :func:`almost_monochromatic_radius_map`.
    """
    if not 0.0 <= ratio_threshold <= 1.0:
        raise AnalysisError(
            f"ratio_threshold must lie in [0, 1], got {ratio_threshold}"
        )
    spins = require_spin_array(spins)
    limit = _max_usable_radius(spins.shape, max_radius)
    radii = np.zeros(spins.shape, dtype=np.int64)
    for radius in range(1, limit + 1):
        ratios = minority_ratio_map(spins, radius)
        qualifies = ratios <= ratio_threshold
        radii[qualifies] = radius
    return radii


def paper_ratio_threshold(neighborhood_agents: int, epsilon: float = 0.05) -> float:
    """The paper's almost-monochromatic threshold ``e^{-eps N}``.

    At simulable neighbourhood sizes this is already extremely small (for
    ``N = 49`` and ``eps = 0.05`` it is about ``0.086``), so the default
    ``eps`` keeps the threshold meaningfully away from both 0 and 1.
    """
    if epsilon <= 0:
        raise AnalysisError(f"epsilon must be positive, got {epsilon}")
    return float(math.exp(-epsilon * neighborhood_agents))


def region_sizes_from_radii(radii: np.ndarray) -> np.ndarray:
    """Convert a radius map into region sizes ``(2 rho + 1)^2``."""
    radii = np.asarray(radii)
    return (2 * radii + 1) ** 2


@dataclass(frozen=True)
class RegionStatistics:
    """Summary of region radii/sizes over all agents of a configuration."""

    mean_radius: float
    max_radius: int
    mean_size: float
    max_size: int
    #: Fraction of agents whose region radius is at least the model horizon —
    #: i.e. agents sitting strictly inside a segregated patch at least as
    #: large as their own neighbourhood.
    fraction_at_least_horizon: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "mean_radius": self.mean_radius,
            "max_radius": float(self.max_radius),
            "mean_size": self.mean_size,
            "max_size": float(self.max_size),
            "fraction_at_least_horizon": self.fraction_at_least_horizon,
        }


def summarize_regions(radii: np.ndarray, horizon: int) -> RegionStatistics:
    """Aggregate a radius map into :class:`RegionStatistics`."""
    radii = np.asarray(radii)
    if radii.size == 0:
        raise AnalysisError("cannot summarise an empty radius map")
    sizes = region_sizes_from_radii(radii)
    return RegionStatistics(
        mean_radius=float(radii.mean()),
        max_radius=int(radii.max()),
        mean_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        fraction_at_least_horizon=float(np.mean(radii >= horizon)),
    )


def expected_region_size(
    spins: np.ndarray, max_radius: Optional[int] = None
) -> float:
    """Monte-Carlo analogue of the paper's ``E[M]`` for one configuration.

    The expectation over "an arbitrary agent" is the average of the
    monochromatic region size over all agents of the configuration; averaging
    this quantity over seeds estimates ``E[M]``.
    """
    radii = monochromatic_radius_map(spins, max_radius=max_radius)
    return float(region_sizes_from_radii(radii).mean())


def expected_almost_region_size(
    spins: np.ndarray, ratio_threshold: float, max_radius: Optional[int] = None
) -> float:
    """Monte-Carlo analogue of ``E[M']`` for one configuration."""
    radii = almost_monochromatic_radius_map(
        spins, ratio_threshold, max_radius=max_radius
    )
    return float(region_sizes_from_radii(radii).mean())
