"""Good/bad block classification (Section IV.B).

The almost-monochromatic argument renormalises the grid into m-blocks and
calls a block *good* when every intersection of a w-sized window with the
block has a minority excess below ``N^{1/2 + eps}`` — i.e. the block looks
locally balanced at every scale the dynamics cares about.  Good blocks occur
with probability exponentially close to one (Lemma 11), so the bad blocks
form a sub-critical site-percolation process whose clusters are small
(Lemma 14), while the good blocks form a super-critical process that carries
the chemical firewall (Lemma 13).

The finite-size implementation classifies a block as good when the maximum,
over all horizon-sized windows centred inside the block, of the signed excess
``(# minority) - (window size) / 2`` stays below a threshold of the form
``c * N^{1/2 + eps}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.neighborhood import neighborhood_size, window_sums
from repro.errors import AnalysisError
from repro.percolation.cluster import cluster_radius, cluster_sizes, label_clusters
from repro.percolation.renormalization import BlockGrid, divisible_block_side
from repro.types import AgentType
from repro.utils.validation import require_spin_array


def good_block_threshold(
    config: ModelConfig, epsilon: float = 0.25, constant: float = 1.0
) -> float:
    """The imbalance threshold ``c * N^{1/2 + eps}`` of the good-block definition."""
    if epsilon < 0 or epsilon >= 0.5:
        raise AnalysisError(f"epsilon must lie in [0, 1/2), got {epsilon}")
    if constant <= 0:
        raise AnalysisError(f"constant must be positive, got {constant}")
    return constant * config.neighborhood_agents ** (0.5 + epsilon)


@dataclass(frozen=True)
class BlockClassification:
    """Good/bad classification of a renormalised configuration."""

    block_grid: BlockGrid
    good_blocks: np.ndarray
    threshold: float
    minority_type: AgentType

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        return self.good_blocks.size

    @property
    def n_bad(self) -> int:
        """Number of bad blocks."""
        return int(np.count_nonzero(~self.good_blocks))

    @property
    def bad_fraction(self) -> float:
        """Fraction of bad blocks (Lemma 12 says this vanishes quickly)."""
        return self.n_bad / self.n_blocks if self.n_blocks else 0.0

    def bad_to_good_ratio(self) -> float:
        """Ratio ``N_B / N_G`` appearing in event E of Lemma 17."""
        n_good = self.n_blocks - self.n_bad
        if n_good == 0:
            return float("inf")
        return self.n_bad / n_good

    def largest_bad_cluster_radius(self) -> int:
        """Largest l1 radius among clusters of bad blocks (Lemma 14's quantity)."""
        bad = ~self.good_blocks
        if not bad.any():
            return 0
        labels = label_clusters(bad)
        sizes = cluster_sizes(labels)
        if sizes.size == 0:
            return 0
        best = 0
        for site in np.argwhere(bad):
            radius = cluster_radius(labels, (int(site[0]), int(site[1])))
            best = max(best, radius)
        return best


def classify_blocks(
    spins: np.ndarray,
    config: ModelConfig,
    block_side: Optional[int] = None,
    epsilon: float = 0.25,
    constant: float = 1.0,
    minority_type: AgentType = AgentType.MINUS,
) -> BlockClassification:
    """Classify every block of the configuration as good or bad.

    ``block_side`` defaults to the largest divisor of the grid side not
    exceeding ``2 * (w + 1)`` — the paper's w-block scale — so that blocks
    tile the torus exactly.  A block is *good* when the maximum signed
    minority excess over all horizon windows centred in the block is below
    :func:`good_block_threshold`.
    """
    spins = require_spin_array(spins)
    if spins.shape != config.shape:
        raise AnalysisError(
            f"configuration shape {spins.shape} does not match config {config.shape}"
        )
    if block_side is None:
        block_side = divisible_block_side(min(config.shape), 2 * (config.horizon + 1))
    block_grid = BlockGrid(config.shape, block_side)
    threshold = good_block_threshold(config, epsilon=epsilon, constant=constant)

    minority_indicator = (spins == int(minority_type)).astype(np.int64)
    window_counts = window_sums(minority_indicator, config.horizon)
    excess = window_counts - neighborhood_size(config.horizon) / 2.0
    # A block is bad when any horizon window centred inside it is too unbalanced.
    worst_per_block = block_grid.block_view(excess).max(axis=(2, 3))
    good_blocks = worst_per_block < threshold
    return BlockClassification(
        block_grid=block_grid,
        good_blocks=good_blocks,
        threshold=threshold,
        minority_type=minority_type,
    )


def good_block_probability(
    config: ModelConfig,
    block_side: Optional[int] = None,
    epsilon: float = 0.25,
    constant: float = 1.0,
    n_trials: int = 200,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the probability that a single block is good.

    Lemma 11 lower-bounds this by ``1 - exp(-c N^{2 eps} + o(N^{2 eps}))``;
    the benchmark compares the estimate against the super-critical threshold
    needed by the chemical-firewall construction.
    """
    from repro.core.initializer import random_configuration  # avoid import cycle

    if n_trials <= 0:
        raise AnalysisError(f"n_trials must be positive, got {n_trials}")
    rng = np.random.default_rng(seed)
    good = 0
    for _ in range(n_trials):
        grid = random_configuration(config, rng)
        classification = classify_blocks(
            grid.spins, config, block_side=block_side, epsilon=epsilon, constant=constant
        )
        # Look at the central block only, so trials are (nearly) independent
        # draws of a single-block event.
        center = (
            classification.block_grid.shape[0] // 2,
            classification.block_grid.shape[1] // 2,
        )
        if classification.good_blocks[center]:
            good += 1
    return good / n_trials
