"""Same-type connected clusters of a configuration.

Besides the window-based regions of :mod:`repro.analysis.regions`, the
simulation figures of Schelling-model papers (including Figure 1 here) are
usually read through connected monochromatic clusters: maximal 4-connected
sets of agents sharing one type.  These complement the region statistics and
drive the density-sweep (E13) and Kawasaki-baseline (E14) benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.percolation.cluster import cluster_sizes, label_clusters
from repro.types import AgentType
from repro.utils.validation import require_spin_array


@dataclass(frozen=True)
class ClusterStatistics:
    """Cluster structure of one agent type within a configuration."""

    agent_type: AgentType
    n_clusters: int
    n_agents: int
    largest_cluster: int
    mean_cluster_size: float

    @property
    def largest_cluster_fraction(self) -> float:
        """Largest cluster size divided by the number of agents of this type."""
        if self.n_agents == 0:
            return 0.0
        return self.largest_cluster / self.n_agents

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "agent_type": float(int(self.agent_type)),
            "n_clusters": float(self.n_clusters),
            "n_agents": float(self.n_agents),
            "largest_cluster": float(self.largest_cluster),
            "mean_cluster_size": self.mean_cluster_size,
            "largest_cluster_fraction": self.largest_cluster_fraction,
        }


def type_cluster_statistics(
    spins: np.ndarray, agent_type: AgentType, periodic: bool = True
) -> ClusterStatistics:
    """Cluster statistics of the agents of one type."""
    spins = require_spin_array(spins)
    mask = spins == int(agent_type)
    labels = label_clusters(mask, periodic=periodic)
    sizes = cluster_sizes(labels)
    n_agents = int(mask.sum())
    if sizes.size == 0:
        return ClusterStatistics(agent_type, 0, n_agents, 0, 0.0)
    return ClusterStatistics(
        agent_type=agent_type,
        n_clusters=int(sizes.size),
        n_agents=n_agents,
        largest_cluster=int(sizes.max()),
        mean_cluster_size=float(sizes.mean()),
    )


def both_type_statistics(
    spins: np.ndarray, periodic: bool = True
) -> dict[AgentType, ClusterStatistics]:
    """Cluster statistics for both agent types."""
    return {
        agent_type: type_cluster_statistics(spins, agent_type, periodic=periodic)
        for agent_type in (AgentType.PLUS, AgentType.MINUS)
    }


def cluster_size_distribution(
    spins: np.ndarray, agent_type: AgentType, periodic: bool = True
) -> np.ndarray:
    """Sorted (descending) cluster sizes of one agent type."""
    spins = require_spin_array(spins)
    labels = label_clusters(spins == int(agent_type), periodic=periodic)
    sizes = cluster_sizes(labels)
    return np.sort(sizes)[::-1]


def dominant_type_fraction(spins: np.ndarray) -> float:
    """Fraction of the grid occupied by the more numerous type.

    Equals 1.0 exactly when the grid is completely segregated into a single
    type — the "complete segregation" the paper rules out w.h.p. at
    ``p = 1/2`` and Fontes et al. establish for ``p`` close to 1.
    """
    spins = require_spin_array(spins)
    plus = np.count_nonzero(spins == 1)
    minus = spins.size - plus
    return max(plus, minus) / spins.size


def is_completely_segregated(spins: np.ndarray) -> bool:
    """Whether a single agent type covers the whole grid."""
    spins = require_spin_array(spins)
    return bool(np.all(spins == spins.flat[0]))


def largest_monochromatic_cluster_fraction(spins: np.ndarray) -> float:
    """Largest same-type cluster size divided by the grid size."""
    stats = both_type_statistics(spins)
    largest = max(stats[AgentType.PLUS].largest_cluster, stats[AgentType.MINUS].largest_cluster)
    spins = require_spin_array(spins)
    if spins.size == 0:
        raise AnalysisError("configuration is empty")
    return largest / spins.size
