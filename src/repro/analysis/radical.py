"""Radical regions, unhappy regions and the expandability check.

Section III of the paper builds the trigger of the segregation cascade out of
three nested objects, all centred at the same point:

* an *unhappy region* ``N_{eps' w}`` containing at least
  ``tau eps'^2 N - N^{1/2+eps}`` unhappy minority agents (Lemma 4);
* a *radical region* ``N_{(1+eps') w}`` containing fewer than
  ``tau_hat (1 + eps')^2 N`` minority agents;
* the *expandability* property: a sequence of at most ``(w+1)^2`` admissible
  flips inside the radical region that turns the central ``N_{w/2}`` window
  monochromatic (Lemma 5 shows this exists w.h.p. when ``eps' > f(tau)``).

This module detects radical regions in a configuration, counts unhappy
minority agents in the core, and checks expandability constructively by
greedily applying admissible flips inside the region on a scratch copy of the
state — a sufficient (not necessary) certificate, which is exactly what the
lower-bound experiments need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.initializer import radical_region_threshold
from repro.core.neighborhood import neighborhood_size, square_mask, window_sums
from repro.core.state import ModelState
from repro.errors import AnalysisError
from repro.types import AgentType
from repro.utils.validation import require_spin_array


def radical_region_radius(config: ModelConfig, epsilon_prime: float) -> int:
    """Radius ``floor((1 + eps') w)`` of a radical region."""
    if epsilon_prime <= 0:
        raise AnalysisError(f"epsilon_prime must be positive, got {epsilon_prime}")
    return int(math.floor((1.0 + epsilon_prime) * config.horizon))


def minority_count_in_window(
    spins: np.ndarray, center: tuple[int, int], radius: int, majority_type: AgentType
) -> int:
    """Number of agents of the minority type in the window around ``center``."""
    spins = require_spin_array(spins)
    n_rows, n_cols = spins.shape
    rows = np.arange(center[0] - radius, center[0] + radius + 1) % n_rows
    cols = np.arange(center[1] - radius, center[1] + radius + 1) % n_cols
    window = spins[np.ix_(rows, cols)]
    return int(np.count_nonzero(window == int(majority_type.opposite)))


def is_radical_region(
    spins: np.ndarray,
    config: ModelConfig,
    center: tuple[int, int],
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
) -> bool:
    """Whether the window of radius ``(1+eps')w`` at ``center`` is a radical region."""
    radius = radical_region_radius(config, epsilon_prime)
    threshold = radical_region_threshold(config, epsilon_prime)
    count = minority_count_in_window(spins, center, radius, majority_type)
    return count < threshold


def radical_region_mask(
    spins: np.ndarray,
    config: ModelConfig,
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
) -> np.ndarray:
    """Boolean mask of all centres whose window is a radical region.

    Vectorised over the whole grid with a single window-sum, so scanning for
    radical regions costs the same as one happiness evaluation.
    """
    spins = require_spin_array(spins)
    radius = radical_region_radius(config, epsilon_prime)
    threshold = radical_region_threshold(config, epsilon_prime)
    minority_indicator = (spins == int(majority_type.opposite)).astype(np.int64)
    counts = window_sums(minority_indicator, radius)
    return counts < threshold


def count_radical_regions(
    spins: np.ndarray,
    config: ModelConfig,
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
) -> int:
    """Number of grid sites that are centres of radical regions."""
    return int(radical_region_mask(spins, config, epsilon_prime, majority_type).sum())


def unhappy_core_count(
    state: ModelState,
    center: tuple[int, int],
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
) -> int:
    """Number of unhappy minority agents in the core ``N_{eps' w}`` (Lemma 4)."""
    config = state.config
    core_radius = max(int(math.floor(epsilon_prime * config.horizon)), 0)
    mask = square_mask(config.n_rows, config.n_cols, center, core_radius)
    unhappy = state.unhappy_mask()
    minority = state.grid.spins == int(majority_type.opposite)
    return int(np.count_nonzero(mask & unhappy & minority))


def unhappy_core_target(config: ModelConfig, epsilon_prime: float) -> int:
    """Lemma 4's target count ``floor(tau eps'^2 N - sqrt(N))`` (with eps = 0)."""
    n = config.neighborhood_agents
    value = config.tau * (epsilon_prime**2) * n - math.sqrt(n)
    return max(int(math.floor(value)), 0)


@dataclass(frozen=True)
class ExpansionResult:
    """Outcome of the constructive expandability check."""

    expanded: bool
    n_flips: int
    flip_budget: int
    center: tuple[int, int]

    @property
    def within_budget(self) -> bool:
        """Whether the successful sequence respected the ``(w+1)^2`` budget."""
        return self.expanded and self.n_flips <= self.flip_budget


def try_expand_radical_region(
    config: ModelConfig,
    spins: np.ndarray,
    center: tuple[int, int],
    epsilon_prime: float,
    majority_type: AgentType = AgentType.PLUS,
    flip_budget: Optional[int] = None,
) -> ExpansionResult:
    """Greedy constructive check of Lemma 5's expandability.

    Works on a scratch copy of the configuration: repeatedly flips minority
    agents inside the radical region that are currently flippable (unhappy
    and made happy by the flip), preferring agents closest to the centre,
    until the central ``N_{w/2}`` window is monochromatic of the majority
    type, the flip budget ``(w+1)^2`` is exhausted, or no admissible flip
    remains.  Success is a certificate that the region is expandable; failure
    of the greedy order is not a proof of non-expandability.
    """
    spins = require_spin_array(spins)
    if flip_budget is None:
        flip_budget = (config.horizon + 1) ** 2
    state = ModelState(config, TorusGrid(spins))
    region_radius = radical_region_radius(config, epsilon_prime)
    core_radius = max(config.horizon // 2, 0)
    n_rows, n_cols = config.shape
    region = square_mask(n_rows, n_cols, center, region_radius)
    core = square_mask(n_rows, n_cols, center, core_radius)
    minority_value = int(majority_type.opposite)

    # Pre-compute a centre-first visiting order of the region's sites.
    region_sites = np.argwhere(region)
    dr = np.abs(region_sites[:, 0] - center[0])
    dr = np.minimum(dr, n_rows - dr)
    dc = np.abs(region_sites[:, 1] - center[1])
    dc = np.minimum(dc, n_cols - dc)
    order = np.argsort(np.maximum(dr, dc), kind="stable")
    region_sites = region_sites[order]

    n_flips = 0
    while n_flips < flip_budget:
        core_spins = state.grid.spins[core]
        if np.all(core_spins == int(majority_type)):
            return ExpansionResult(True, n_flips, flip_budget, center)
        flipped_this_pass = False
        for row, col in region_sites:
            if state.grid.spins[row, col] != minority_value:
                continue
            if not state.is_flippable(int(row), int(col)):
                continue
            state.apply_flip(int(row), int(col))
            n_flips += 1
            flipped_this_pass = True
            break
        if not flipped_this_pass:
            break
    core_spins = state.grid.spins[core]
    expanded = bool(np.all(core_spins == int(majority_type)))
    return ExpansionResult(expanded, n_flips, flip_budget, center)
