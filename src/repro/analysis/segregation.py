"""Whole-configuration segregation metrics.

These are the scalar observables the sweep benchmarks report for every
``(tau, w, seed)`` cell: unhappy fraction, local homogeneity (the average of
the paper's ``s(u)``), interface density, mean monochromatic region size and
the largest same-type cluster fraction.  All of them are computed directly
from a spin array plus the model horizon/threshold, so they apply equally to
initial, intermediate and terminated configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.clusters import dominant_type_fraction, largest_monochromatic_cluster_fraction
from repro.analysis.regions import (
    expected_almost_region_size,
    expected_region_size,
    monochromatic_radius_map,
    paper_ratio_threshold,
    region_sizes_from_radii,
)
from repro.core.config import ModelConfig
from repro.core.lyapunov import lyapunov_energy, same_type_count_field
from repro.utils.validation import require_spin_array


def unhappy_fraction(spins: np.ndarray, config: ModelConfig) -> float:
    """Fraction of agents that are unhappy under ``config``'s threshold."""
    spins = require_spin_array(spins)
    same = same_type_count_field(spins, config.horizon)
    return float(np.mean(same < config.happiness_threshold))


def local_homogeneity(spins: np.ndarray, horizon: int) -> float:
    """Average of ``s(u)`` over all agents (0.5 for a random grid, 1.0 when segregated)."""
    spins = require_spin_array(spins)
    same = same_type_count_field(spins, horizon)
    return float(same.mean() / (2 * horizon + 1) ** 2)


def interface_density(spins: np.ndarray) -> float:
    """Fraction of adjacent (4-neighbour, toroidal) pairs with opposite types.

    0 for a fully segregated grid, about 0.5 for an independent random one and
    1.0 for a perfect checkerboard.
    """
    spins = require_spin_array(spins)
    horizontal = spins != np.roll(spins, -1, axis=1)
    vertical = spins != np.roll(spins, -1, axis=0)
    return float((horizontal.mean() + vertical.mean()) / 2.0)


@dataclass(frozen=True)
class SegregationMetrics:
    """Scalar segregation summary of one configuration."""

    unhappy_fraction: float
    local_homogeneity: float
    interface_density: float
    mean_monochromatic_size: float
    mean_almost_monochromatic_size: float
    max_monochromatic_radius: int
    largest_cluster_fraction: float
    dominant_type_fraction: float
    energy: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables / CSV export."""
        return {
            "unhappy_fraction": self.unhappy_fraction,
            "local_homogeneity": self.local_homogeneity,
            "interface_density": self.interface_density,
            "mean_monochromatic_size": self.mean_monochromatic_size,
            "mean_almost_monochromatic_size": self.mean_almost_monochromatic_size,
            "max_monochromatic_radius": float(self.max_monochromatic_radius),
            "largest_cluster_fraction": self.largest_cluster_fraction,
            "dominant_type_fraction": self.dominant_type_fraction,
            "energy": float(self.energy),
        }


def segregation_metrics(
    spins: np.ndarray,
    config: ModelConfig,
    max_region_radius: Optional[int] = None,
    ratio_threshold: Optional[float] = None,
) -> SegregationMetrics:
    """Compute the full :class:`SegregationMetrics` bundle for one configuration.

    ``max_region_radius`` caps the (quadratic-in-radius) region scans; the
    sweep harness sets it to a few multiples of the horizon, which is where
    all of the finite-size signal lives.  ``ratio_threshold`` defaults to the
    paper's ``e^{-eps N}`` with the package default ``eps``.
    """
    spins = require_spin_array(spins)
    if ratio_threshold is None:
        ratio_threshold = paper_ratio_threshold(config.neighborhood_agents)
    radii = monochromatic_radius_map(spins, max_radius=max_region_radius)
    sizes = region_sizes_from_radii(radii)
    return SegregationMetrics(
        unhappy_fraction=unhappy_fraction(spins, config),
        local_homogeneity=local_homogeneity(spins, config.horizon),
        interface_density=interface_density(spins),
        mean_monochromatic_size=float(sizes.mean()),
        mean_almost_monochromatic_size=expected_almost_region_size(
            spins, ratio_threshold, max_radius=max_region_radius
        ),
        max_monochromatic_radius=int(radii.max()),
        largest_cluster_fraction=largest_monochromatic_cluster_fraction(spins),
        dominant_type_fraction=dominant_type_fraction(spins),
        energy=lyapunov_energy(spins, config.horizon),
    )


def segregation_gain(
    initial_spins: np.ndarray, final_spins: np.ndarray, config: ModelConfig
) -> dict[str, float]:
    """Before/after comparison of the main metrics for a single run.

    Returns a dict with ``initial_*``, ``final_*`` and ``delta_*`` entries for
    local homogeneity, interface density and mean monochromatic region size —
    the three quantities whose movement demonstrates self-organised
    segregation in the Figure 1 experiment.
    """
    before = segregation_metrics(initial_spins, config, max_region_radius=2 * config.horizon)
    after = segregation_metrics(final_spins, config, max_region_radius=2 * config.horizon)
    result: dict[str, float] = {}
    for name in ("local_homogeneity", "interface_density", "mean_monochromatic_size"):
        initial_value = getattr(before, name)
        final_value = getattr(after, name)
        result[f"initial_{name}"] = initial_value
        result[f"final_{name}"] = final_value
        result[f"delta_{name}"] = final_value - initial_value
    return result


def expected_monochromatic_size(spins: np.ndarray, max_radius: Optional[int] = None) -> float:
    """Alias of :func:`repro.analysis.regions.expected_region_size` (E[M] estimator)."""
    return expected_region_size(spins, max_radius=max_radius)
