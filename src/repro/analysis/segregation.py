"""Whole-configuration segregation metrics.

These are the scalar observables the sweep benchmarks report for every
``(tau, w, seed)`` cell: unhappy fraction, local homogeneity (the average of
the paper's ``s(u)``), interface density, mean monochromatic region size and
the largest same-type cluster fraction.  All of them are computed directly
from a spin array plus the model horizon/threshold, so they apply equally to
initial, intermediate and terminated configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.clusters import dominant_type_fraction, largest_monochromatic_cluster_fraction
from repro.analysis.regions import (
    almost_monochromatic_radius_map,
    expected_region_size,
    monochromatic_radius_map,
    paper_ratio_threshold,
    region_scan_table,
    region_scan_table_batch,
    region_sizes_from_radii,
)
from repro.core.config import ModelConfig
from repro.core.lyapunov import lyapunov_energy, same_type_count_field
from repro.errors import AnalysisError
from repro.utils.validation import require_spin_array


def default_region_radius(config: ModelConfig) -> int:
    """The region-scan radius cap used by every entry point of the pipeline.

    Region scans cost grows with the radius while all of the finite-size
    signal lives within a few multiples of the horizon, so the metrics cap
    the scans at ``min(4 * w, largest radius that fits on the torus)``.  The
    sweep runner, the CLI and :func:`segregation_gain` all share this one
    helper so the same measurement saturates identically no matter how it is
    invoked (callers can still override the cap explicitly).
    """
    return min(4 * config.horizon, (min(config.shape) - 1) // 2)


def unhappy_fraction(spins: np.ndarray, config: ModelConfig) -> float:
    """Fraction of agents that are unhappy under ``config``'s threshold."""
    spins = require_spin_array(spins)
    same = same_type_count_field(spins, config.horizon)
    return float(np.mean(same < config.happiness_threshold))


def local_homogeneity(spins: np.ndarray, horizon: int) -> float:
    """Average of ``s(u)`` over all agents (0.5 for a random grid, 1.0 when segregated)."""
    spins = require_spin_array(spins)
    same = same_type_count_field(spins, horizon)
    return float(same.mean() / (2 * horizon + 1) ** 2)


def interface_density(spins: np.ndarray) -> float:
    """Fraction of adjacent (4-neighbour, toroidal) pairs with opposite types.

    0 for a fully segregated grid, about 0.5 for an independent random one and
    1.0 for a perfect checkerboard.
    """
    spins = require_spin_array(spins)
    horizontal = spins != np.roll(spins, -1, axis=1)
    vertical = spins != np.roll(spins, -1, axis=0)
    return float((horizontal.mean() + vertical.mean()) / 2.0)


@dataclass(frozen=True)
class SegregationMetrics:
    """Scalar segregation summary of one configuration."""

    unhappy_fraction: float
    local_homogeneity: float
    interface_density: float
    mean_monochromatic_size: float
    mean_almost_monochromatic_size: float
    max_monochromatic_radius: int
    largest_cluster_fraction: float
    dominant_type_fraction: float
    energy: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables / CSV export."""
        return {
            "unhappy_fraction": self.unhappy_fraction,
            "local_homogeneity": self.local_homogeneity,
            "interface_density": self.interface_density,
            "mean_monochromatic_size": self.mean_monochromatic_size,
            "mean_almost_monochromatic_size": self.mean_almost_monochromatic_size,
            "max_monochromatic_radius": float(self.max_monochromatic_radius),
            "largest_cluster_fraction": self.largest_cluster_fraction,
            "dominant_type_fraction": self.dominant_type_fraction,
            "energy": float(self.energy),
        }


def segregation_metrics(
    spins: np.ndarray,
    config: ModelConfig,
    max_region_radius: Optional[int] = None,
    ratio_threshold: Optional[float] = None,
    *,
    table: Optional[np.ndarray] = None,
) -> SegregationMetrics:
    """Compute the full :class:`SegregationMetrics` bundle for one configuration.

    ``max_region_radius`` caps the (quadratic-in-radius) region scans; the
    sweep harness sets it to a few multiples of the horizon, which is where
    all of the finite-size signal lives.  ``ratio_threshold`` defaults to the
    paper's ``e^{-eps N}`` with the package default ``eps``.  ``table``
    optionally supplies this configuration's precomputed
    :func:`~repro.analysis.regions.region_scan_table` (the batch path hands
    each replica its slice of one stack-wide build); omitted, it is built
    here.
    """
    spins = require_spin_array(spins)
    if ratio_threshold is None:
        ratio_threshold = paper_ratio_threshold(config.neighborhood_agents)
    # The two region scans read window counts from the same limit-padded
    # summed-area table, so build it once and hand it to both.
    if table is None:
        table = region_scan_table(spins, max_radius=max_region_radius)
    radii = monochromatic_radius_map(spins, max_radius=max_region_radius, table=table)
    almost_radii = almost_monochromatic_radius_map(
        spins, ratio_threshold, max_radius=max_region_radius, table=table
    )
    sizes = region_sizes_from_radii(radii)
    return SegregationMetrics(
        unhappy_fraction=unhappy_fraction(spins, config),
        local_homogeneity=local_homogeneity(spins, config.horizon),
        interface_density=interface_density(spins),
        mean_monochromatic_size=float(sizes.mean()),
        mean_almost_monochromatic_size=float(
            region_sizes_from_radii(almost_radii).mean()
        ),
        max_monochromatic_radius=int(radii.max()),
        largest_cluster_fraction=largest_monochromatic_cluster_fraction(spins),
        dominant_type_fraction=dominant_type_fraction(spins),
        energy=lyapunov_energy(spins, config.horizon),
    )


def segregation_metrics_batch(
    spins_stack: np.ndarray,
    config: ModelConfig,
    max_region_radius: Optional[int] = None,
    ratio_threshold: Optional[float] = None,
) -> list[SegregationMetrics]:
    """Compute :func:`segregation_metrics` for a whole ``(R, n, n)`` stack.

    This is the measurement back end of the ensemble runner: one call maps
    the full metrics bundle over every replica of a lockstep batch.  The
    region-scan tables of *all* replicas come from one batched summed-area
    build (:func:`~repro.analysis.regions.region_scan_table_batch` — one
    padding and cumsum pass over the stack, each replica's two scans reading
    its slice) and the paper's ratio threshold is resolved once for the
    whole stack, so the bundle costs one stacked table build plus the
    batched scans and cheap scalar metrics per replica.  Entry ``r`` is
    bitwise identical to ``segregation_metrics(spins_stack[r], ...)`` — the
    engine-independence contract the runner's regression tests lock down.
    """
    stack = np.asarray(spins_stack)
    if stack.ndim != 3:
        raise AnalysisError(
            f"spins_stack must be a (R, n, n) array, got shape {stack.shape}"
        )
    if ratio_threshold is None:
        ratio_threshold = paper_ratio_threshold(config.neighborhood_agents)
    tables = region_scan_table_batch(stack, max_radius=max_region_radius)
    return [
        segregation_metrics(
            replica,
            config,
            max_region_radius=max_region_radius,
            ratio_threshold=ratio_threshold,
            table=tables[index],
        )
        for index, replica in enumerate(stack)
    ]


def segregation_gain(
    initial_spins: np.ndarray, final_spins: np.ndarray, config: ModelConfig
) -> dict[str, float]:
    """Before/after comparison of the main metrics for a single run.

    Returns a dict with ``initial_*``, ``final_*`` and ``delta_*`` entries for
    local homogeneity, interface density and mean monochromatic region size —
    the three quantities whose movement demonstrates self-organised
    segregation in the Figure 1 experiment.
    """
    max_region_radius = default_region_radius(config)
    before = segregation_metrics(initial_spins, config, max_region_radius=max_region_radius)
    after = segregation_metrics(final_spins, config, max_region_radius=max_region_radius)
    result: dict[str, float] = {}
    for name in ("local_homogeneity", "interface_density", "mean_monochromatic_size"):
        initial_value = getattr(before, name)
        final_value = getattr(after, name)
        result[f"initial_{name}"] = initial_value
        result[f"final_{name}"] = final_value
        result[f"delta_{name}"] = final_value - initial_value
    return result


def expected_monochromatic_size(spins: np.ndarray, max_radius: Optional[int] = None) -> float:
    """Alias of :func:`repro.analysis.regions.expected_region_size` (E[M] estimator)."""
    return expected_region_size(spins, max_radius=max_radius)
