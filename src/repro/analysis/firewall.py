"""Annular and chemical firewalls.

Lemma 9 of the paper: a monochromatic annulus ("firewall") of width
``sqrt(2) w`` and sufficiently large radius stays monochromatic forever and
shields its interior from the exterior configuration.  Section IV.B replaces
the annulus with a *chemical firewall* — a cycle of good renormalised blocks
surrounding the centre — when the intolerance is too low for the annular
construction.

This module provides:

* detection of monochromatic annuli in a configuration;
* an adversarial robustness check (set the whole exterior to the opposite
  type and verify every firewall/interior agent stays happy), which is the
  finite-size, checkable counterpart of Lemma 9;
* an enclosure test for chemical firewalls on a good/bad block lattice, based
  on the standard duality: a 4-connected cycle of good blocks separates the
  centre from the boundary iff the centre cannot reach the boundary through
  8-connected non-good blocks.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.lyapunov import same_type_count_field
from repro.core.neighborhood import annulus_mask, disc_mask
from repro.core.state import ModelState
from repro.errors import AnalysisError
from repro.types import AgentType
from repro.utils.validation import require_spin_array


def default_firewall_width(config: ModelConfig) -> float:
    """The paper's firewall width ``sqrt(2) * w``."""
    return math.sqrt(2.0) * config.horizon


def firewall_mask(
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
) -> np.ndarray:
    """Boolean mask of the annulus ``A_r(u)`` of Lemma 9."""
    if width is None:
        width = default_firewall_width(config)
    inner = outer_radius - width
    if inner <= 0:
        raise AnalysisError(
            f"outer_radius {outer_radius} must exceed the firewall width {width}"
        )
    return annulus_mask(config.n_rows, config.n_cols, center, inner, outer_radius)


def is_monochromatic_firewall(
    spins: np.ndarray,
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
) -> bool:
    """Whether the annulus around ``center`` is monochromatic (either type)."""
    spins = require_spin_array(spins)
    mask = firewall_mask(config, center, outer_radius, width)
    values = spins[mask]
    if values.size == 0:
        raise AnalysisError("firewall annulus contains no agents")
    return bool(np.all(values == values[0]))


def firewall_agent_type(
    spins: np.ndarray,
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
) -> Optional[AgentType]:
    """Type of a monochromatic firewall, or ``None`` if the annulus is mixed.

    A degenerate annulus containing no agents raises
    :class:`~repro.errors.AnalysisError`, exactly like
    :func:`is_monochromatic_firewall` — an empty firewall is a geometry
    mistake, not a mixed wall.
    """
    spins = require_spin_array(spins)
    mask = firewall_mask(config, center, outer_radius, width)
    values = spins[mask]
    if values.size == 0:
        raise AnalysisError("firewall annulus contains no agents")
    if np.all(values == values[0]):
        return AgentType(int(values[0]))
    return None


@dataclass(frozen=True)
class FirewallRobustness:
    """Result of the adversarial Lemma 9 check."""

    firewall_monochromatic: bool
    firewall_happy_under_adversary: bool
    interior_happy_under_adversary: bool
    n_firewall_agents: int
    n_interior_agents: int

    @property
    def holds(self) -> bool:
        """True when the firewall shields itself and its interior."""
        return (
            self.firewall_monochromatic
            and self.firewall_happy_under_adversary
            and self.interior_happy_under_adversary
        )


def check_firewall_robustness(
    spins: np.ndarray,
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
    interior_type: Optional[AgentType] = None,
) -> FirewallRobustness:
    """Adversarial counterpart of Lemma 9 for a finite configuration.

    Replaces every agent strictly outside the firewall's outer circle with the
    type opposite to the firewall and checks that (a) every firewall agent and
    (b) every interior agent of the firewall's type remains happy.  If that
    holds, no sequence of exterior flips can ever make a firewall agent
    unhappy (exterior flips can only be *less* adversarial than this extreme
    configuration, by monotonicity of the happiness count in the number of
    same-type neighbours).
    """
    spins = require_spin_array(spins)
    wall = firewall_mask(config, center, outer_radius, width)
    interior = disc_mask(config.n_rows, config.n_cols, center, outer_radius) & ~wall
    exterior = ~(wall | interior)
    wall_values = spins[wall]
    monochromatic = bool(wall_values.size and np.all(wall_values == wall_values[0]))
    if not monochromatic:
        return FirewallRobustness(False, False, False, int(wall.sum()), int(interior.sum()))
    wall_type = int(wall_values[0])

    adversarial = spins.copy()
    adversarial[exterior] = -wall_type
    if interior_type is not None:
        adversarial[interior] = int(interior_type)
    same = same_type_count_field(adversarial, config.horizon)
    happy = same >= config.happiness_threshold

    firewall_happy = bool(np.all(happy[wall]))
    interior_same_type = interior & (adversarial == wall_type)
    if interior_same_type.any():
        interior_happy = bool(np.all(happy[interior_same_type]))
    else:
        interior_happy = True
    return FirewallRobustness(
        firewall_monochromatic=monochromatic,
        firewall_happy_under_adversary=firewall_happy,
        interior_happy_under_adversary=interior_happy,
        n_firewall_agents=int(wall.sum()),
        n_interior_agents=int(interior.sum()),
    )


def run_with_adversarial_exterior(
    spins: np.ndarray,
    config: ModelConfig,
    center: tuple[int, int],
    outer_radius: float,
    width: Optional[float] = None,
    seed: Optional[int] = None,
    max_flips: Optional[int] = None,
) -> bool:
    """Dynamic version of the Lemma 9 check: actually run the process.

    Sets the exterior to the opposite type, runs the Glauber dynamics to
    termination and reports whether the firewall annulus is still
    monochromatic of its original type at the end.
    """
    from repro.core.dynamics import GlauberDynamics  # avoid an import cycle

    spins = require_spin_array(spins)
    wall = firewall_mask(config, center, outer_radius, width)
    wall_values = spins[wall]
    if not (wall_values.size and np.all(wall_values == wall_values[0])):
        raise AnalysisError("the firewall annulus is not monochromatic to begin with")
    wall_type = int(wall_values[0])
    interior = disc_mask(config.n_rows, config.n_cols, center, outer_radius) & ~wall
    adversarial = spins.copy()
    adversarial[~(wall | interior)] = -wall_type
    state = ModelState(config, TorusGrid(adversarial))
    dynamics = GlauberDynamics(state, seed=seed)
    dynamics.run(max_flips=max_flips)
    final_wall = state.grid.spins[wall]
    return bool(np.all(final_wall == wall_type))


# --------------------------------------------------------------------------
# Chemical firewalls on the renormalised block lattice
# --------------------------------------------------------------------------

_KING_OFFSETS = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


def is_enclosed_by_good_blocks(
    good_mask: np.ndarray, center_block: tuple[int, int]
) -> bool:
    """Whether a cycle of good blocks separates ``center_block`` from the boundary.

    Duality on the square lattice: a 4-connected circuit of good blocks
    surrounds the centre iff the centre's 8-connected component of non-good
    blocks does not touch the boundary of the array.  A centre that is itself
    good counts as enclosed (the trivial circuit through its own cluster is
    handled by the caller when needed).
    """
    good = np.asarray(good_mask, dtype=bool)
    if good.ndim != 2:
        raise AnalysisError(f"good_mask must be 2-D, got shape {good.shape}")
    n_rows, n_cols = good.shape
    center_block = (center_block[0] % n_rows, center_block[1] % n_cols)
    if good[center_block]:
        return True
    visited = np.zeros_like(good, dtype=bool)
    queue: deque[tuple[int, int]] = deque([center_block])
    visited[center_block] = True
    while queue:
        row, col = queue.popleft()
        if row in (0, n_rows - 1) or col in (0, n_cols - 1):
            return False
        for dr, dc in _KING_OFFSETS:
            nr, nc = row + dr, col + dc
            if not (0 <= nr < n_rows and 0 <= nc < n_cols):
                continue
            if visited[nr, nc] or good[nr, nc]:
                continue
            visited[nr, nc] = True
            queue.append((nr, nc))
    return True


def has_chemical_firewall(
    good_mask: np.ndarray,
    center_block: tuple[int, int],
    inner_radius_blocks: int,
    outer_radius_blocks: int,
) -> bool:
    """Whether a good-block cycle encircles the centre inside the given annulus.

    This is the structural requirement of the r-chemical path (Section IV.B):
    a cycle of good blocks contained in ``N_{3r} \\ N_r`` with the centre in
    its interior.  The check restricts the lattice to the annulus (everything
    inside the inner radius is treated as non-good so a cycle through the core
    cannot cheat) and applies the enclosure duality.
    """
    good = np.asarray(good_mask, dtype=bool).copy()
    if inner_radius_blocks < 0 or outer_radius_blocks <= inner_radius_blocks:
        raise AnalysisError(
            "need 0 <= inner_radius_blocks < outer_radius_blocks, got "
            f"{inner_radius_blocks}, {outer_radius_blocks}"
        )
    n_rows, n_cols = good.shape
    rows = np.arange(n_rows)[:, None]
    cols = np.arange(n_cols)[None, :]
    chebyshev = np.maximum(np.abs(rows - center_block[0]), np.abs(cols - center_block[1]))
    good[chebyshev <= inner_radius_blocks] = False
    good[chebyshev > outer_radius_blocks] = False
    return is_enclosed_by_good_blocks(good, center_block)
