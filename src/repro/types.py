"""Small shared value types used across the ``repro`` package.

The library manipulates two-dimensional integer spin arrays where each entry
is either ``+1`` or ``-1``.  The :class:`AgentType` enum gives those two
values a name, and the remaining enums identify dynamics flavours and
scheduler kinds without resorting to stringly-typed parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AgentType(enum.IntEnum):
    """The two agent types of the Schelling / zero-temperature Ising model."""

    PLUS = 1
    MINUS = -1

    @property
    def opposite(self) -> "AgentType":
        """Return the other agent type."""
        return AgentType.MINUS if self is AgentType.PLUS else AgentType.PLUS


class DynamicsKind(enum.Enum):
    """Which evolution rule a simulation uses."""

    #: Open-system single-agent flips (the paper's model).
    GLAUBER = "glauber"
    #: Closed-system pair swaps (the classical Schelling / Brandt et al. model).
    KAWASAKI = "kawasaki"


class SchedulerKind(enum.Enum):
    """How agent updates are ordered in time."""

    #: Independent rate-1 Poisson clocks (exponential waiting times).
    CONTINUOUS = "continuous"
    #: One uniformly random unhappy agent per discrete step (the equivalent
    #: embedded chain described in Section II.A of the paper).
    DISCRETE = "discrete"


class FlipRule(enum.Enum):
    """When an unhappy agent that has been selected actually changes type."""

    #: Flip only if the flip makes the agent happy (the paper's rule).
    ONLY_IF_HAPPY = "only_if_happy"
    #: Flip whenever unhappy (a variant discussed in Section I.A).
    ALWAYS = "always"


class VariantKind(enum.Enum):
    """Which happiness rule a run applies (Sections I.A / V variants)."""

    #: The paper's one-sided rule: happy iff same-type fraction >= tau.
    BASE = "base"
    #: Two-sided comfort band [tau, tau_high]; no Lyapunov function, so runs
    #: need a step budget.
    TWO_SIDED = "two_sided"
    #: Barmpalias-Elwes-Lewis-Pye per-type intolerances: +1 agents use tau,
    #: -1 agents use tau_minus.
    ASYMMETRIC = "asymmetric"


class Regime(enum.Enum):
    """Qualitative behaviour predicted for an intolerance value (Figure 2)."""

    #: Initial configuration static w.h.p. (tau < 1/4 or tau > 3/4).
    STATIC = "static"
    #: Behaviour not covered by known results.
    UNKNOWN = "unknown"
    #: Expected almost monochromatic region exponential in N (Theorem 2).
    EXPONENTIAL_ALMOST_MONOCHROMATIC = "exponential_almost_monochromatic"
    #: Expected monochromatic region exponential in N (Theorem 1).
    EXPONENTIAL_MONOCHROMATIC = "exponential_monochromatic"
    #: The open boundary case tau = 1/2 (polynomial in 1D, open in 2D).
    BALANCED = "balanced"


@dataclass(frozen=True)
class Site:
    """A grid coordinate.

    Coordinates follow numpy convention: ``row`` indexes the first axis and
    ``col`` the second.  All arithmetic on the torus is performed modulo the
    grid side by the functions that consume sites.
    """

    row: int
    col: int

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(row, col)`` as a plain tuple."""
        return (self.row, self.col)


@dataclass(frozen=True)
class FlipEvent:
    """A single type flip performed by a dynamics engine."""

    #: Simulation time at which the flip occurred (continuous time for the
    #: Poisson-clock scheduler, step index for the discrete scheduler).
    time: float
    #: Location of the flipped agent.
    site: Site
    #: Type of the agent *after* the flip.
    new_type: AgentType


@dataclass(frozen=True)
class SwapEvent:
    """A single pair swap performed by the Kawasaki dynamics engine."""

    time: float
    site_a: Site
    site_b: Site
