"""Input validation helpers.

These helpers centralise the argument checks shared by configuration objects,
analysis routines and percolation substrates, and raise
:class:`repro.errors.ConfigurationError` (a ``ValueError`` subclass) with a
message that names the offending parameter.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError


def require_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def require_positive(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` after checking it is strictly positive."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")
    return value


def require_probability(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` after checking it lies in ``[0, 1]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_in_range(
    value: Any, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Return ``value`` after checking ``low <= value <= high`` (or strict)."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not np.isfinite(value) or not ok:
        raise ConfigurationError(f"{name} must lie in {bounds}, got {value}")
    return value


def require_odd(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive odd integer."""
    value = require_positive_int(value, name)
    if value % 2 == 0:
        raise ConfigurationError(f"{name} must be odd, got {value}")
    return value


def require_spin_array(array: Any, name: str = "configuration") -> np.ndarray:
    """Validate a two-dimensional ±1 spin array and return it as ``int8``.

    The analysis and dynamics code assumes configurations are square or
    rectangular 2-D arrays whose entries are exactly ``+1`` or ``-1``.
    """
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"{name} must be a 2-D array, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    values = np.unique(arr)
    if not np.all(np.isin(values, (-1, 1))):
        raise ConfigurationError(
            f"{name} entries must all be +1 or -1, found values {values[:8]}"
        )
    return arr.astype(np.int8, copy=False)
