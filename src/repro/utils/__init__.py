"""Cross-cutting helpers: validation, statistics and timing utilities."""

from repro.utils.indexset import IndexSampler
from repro.utils.stats import (
    SummaryStats,
    bootstrap_confidence_interval,
    growth_rate_fit,
    mean_confidence_interval,
    summarize,
)
from repro.utils.timer import Timer
from repro.utils.validation import (
    require_in_range,
    require_odd,
    require_positive,
    require_positive_int,
    require_probability,
    require_spin_array,
)

__all__ = [
    "IndexSampler",
    "SummaryStats",
    "Timer",
    "bootstrap_confidence_interval",
    "growth_rate_fit",
    "mean_confidence_interval",
    "require_in_range",
    "require_odd",
    "require_positive",
    "require_positive_int",
    "require_probability",
    "require_spin_array",
    "summarize",
]
