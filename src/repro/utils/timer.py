"""A tiny wall-clock timer used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager wall-clock timer.

    Example::

        with Timer() as timer:
            run_simulation()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds spent inside the ``with`` block (or since entry if inside)."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed
