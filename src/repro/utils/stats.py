"""Statistics helpers for experiment aggregation.

The benchmark harness needs three things repeatedly: summary statistics with
confidence intervals across replicates, bootstrap intervals for skewed
quantities such as region sizes, and ordinary-least-squares growth-rate fits
of ``log2(size)`` against the neighbourhood size ``N`` (the signature of the
paper's exponential-in-``N`` results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a normal-approximation confidence interval."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (for result tables)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize(values: Sequence[float], z: float = 1.96) -> SummaryStats:
    """Summarise ``values`` with a ``z``-sigma normal confidence interval."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half_width = z * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return SummaryStats(
        count=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` for ``values`` using a normal interval."""
    stats = summarize(values, z=z)
    return stats.mean, stats.ci_low, stats.ci_high


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = None,
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` using a percentile bootstrap.

    Region sizes are heavy-tailed (a few agents sit inside very large
    monochromatic regions), so the benchmarks prefer bootstrap intervals over
    normal approximations when sample sizes are small.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    rng = make_rng(seed)
    means = np.empty(n_resamples, dtype=float)
    for i in range(n_resamples):
        resample = rng.choice(arr, size=arr.size, replace=True)
        means[i] = resample.mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(arr.mean()), float(low), float(high)


@dataclass(frozen=True)
class GrowthRateFit:
    """Result of fitting ``log2(y) = rate * x + intercept``."""

    rate: float
    intercept: float
    r_squared: float
    n_points: int

    def predict_log2(self, x: float) -> float:
        """Predicted ``log2(y)`` at ``x``."""
        return self.rate * x + self.intercept


def growth_rate_fit(xs: Sequence[float], ys: Sequence[float]) -> GrowthRateFit:
    """Fit ``log2(ys)`` against ``xs`` with ordinary least squares.

    This is the estimator used to compare the measured growth of
    ``E[M]`` with the theoretical exponents ``a(tau)`` and ``b(tau)``: a
    positive rate indicates exponential growth in the neighbourhood size.
    """
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.shape != y.shape:
        raise ValueError("xs and ys must have the same length")
    if x.size < 2:
        raise ValueError("need at least two points for a growth-rate fit")
    if np.any(y <= 0):
        raise ValueError("ys must be strictly positive to take log2")
    log_y = np.log2(y)
    slope, intercept = np.polyfit(x, log_y, deg=1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((log_y - predicted) ** 2))
    ss_tot = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return GrowthRateFit(
        rate=float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
        n_points=int(x.size),
    )
