"""A dynamic set of integer indices supporting O(1) add/remove/sample.

The Glauber dynamics engine must repeatedly pick a uniformly random element
from the set of currently flippable (or unhappy) agents, and that set changes
by only a handful of elements per flip.  Rebuilding ``np.flatnonzero`` of a
boolean mask on every step would dominate the run time on large grids, so the
engine keeps an :class:`IndexSampler` instead: a compact array of members plus
a position table, which is the classic "randomised set" data structure.
"""

from __future__ import annotations

import numpy as np


class IndexSampler:
    """Set of integers in ``[0, capacity)`` with O(1) add, remove and sample."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        # _members[:size] holds the current elements in arbitrary order.
        self._members = np.empty(self._capacity, dtype=np.int64)
        # _positions[i] is the index of element i inside _members, or -1.
        self._positions = np.full(self._capacity, -1, dtype=np.int64)
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum element value plus one."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self._capacity and self._positions[index] >= 0

    def add(self, index: int) -> None:
        """Insert ``index``; inserting an existing element is a no-op."""
        self._check(index)
        if self._positions[index] >= 0:
            return
        self._members[self._size] = index
        self._positions[index] = self._size
        self._size += 1

    def remove(self, index: int) -> None:
        """Remove ``index``; removing a missing element is a no-op."""
        self._check(index)
        pos = self._positions[index]
        if pos < 0:
            return
        last = self._members[self._size - 1]
        self._members[pos] = last
        self._positions[last] = pos
        self._positions[index] = -1
        self._size -= 1

    def update_membership(self, index: int, member: bool) -> None:
        """Add or remove ``index`` according to the boolean ``member``."""
        if member:
            self.add(index)
        else:
            self.remove(index)

    def sample(self, rng: np.random.Generator) -> int:
        """Return a uniformly random element; raises ``IndexError`` if empty."""
        if self._size == 0:
            raise IndexError("cannot sample from an empty IndexSampler")
        pos = int(rng.integers(0, self._size))
        return int(self._members[pos])

    def to_array(self) -> np.ndarray:
        """Return the current members as a sorted array (copy)."""
        return np.sort(self._members[: self._size].copy())

    def clear(self) -> None:
        """Remove every element."""
        self._positions[self._members[: self._size]] = -1
        self._size = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self._capacity:
            raise IndexError(
                f"index {index} out of range for capacity {self._capacity}"
            )
