"""A dynamic set of integer indices supporting O(1) add/remove/sample.

The Glauber dynamics engine must repeatedly pick a uniformly random element
from the set of currently flippable (or unhappy) agents, and that set changes
by only a handful of elements per flip.  Rebuilding ``np.flatnonzero`` of a
boolean mask on every step would dominate the run time on large grids, so the
engine keeps an :class:`IndexSampler` instead: a compact array of members plus
a position table, which is the classic "randomised set" data structure.
"""

from __future__ import annotations

import numpy as np


class IndexSampler:
    """Set of integers in ``[0, capacity)`` with O(1) add, remove and sample."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        # _members[:size] holds the current elements in arbitrary order.
        self._members = np.empty(self._capacity, dtype=np.int64)
        # _positions[i] is the index of element i inside _members, or -1.
        self._positions = np.full(self._capacity, -1, dtype=np.int64)
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum element value plus one."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self._capacity and self._positions[index] >= 0

    def add(self, index: int) -> None:
        """Insert ``index``; inserting an existing element is a no-op."""
        self._check(index)
        if self._positions[index] >= 0:
            return
        self._members[self._size] = index
        self._positions[index] = self._size
        self._size += 1

    def remove(self, index: int) -> None:
        """Remove ``index``; removing a missing element is a no-op."""
        self._check(index)
        pos = self._positions[index]
        if pos < 0:
            return
        last = self._members[self._size - 1]
        self._members[pos] = last
        self._positions[last] = pos
        self._positions[index] = -1
        self._size -= 1

    def update_membership(self, index: int, member: bool) -> None:
        """Add or remove ``index`` according to the boolean ``member``."""
        if member:
            self.add(index)
        else:
            self.remove(index)

    def sample(self, rng: np.random.Generator) -> int:
        """Return a uniformly random element; raises ``IndexError`` if empty."""
        if self._size == 0:
            raise IndexError("cannot sample from an empty IndexSampler")
        pos = int(rng.integers(0, self._size))
        return int(self._members[pos])

    def to_array(self) -> np.ndarray:
        """Return the current members as a sorted array (copy)."""
        return np.sort(self._members[: self._size].copy())

    def clear(self) -> None:
        """Remove every element."""
        self._positions[self._members[: self._size]] = -1
        self._size = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self._capacity:
            raise IndexError(
                f"index {index} out of range for capacity {self._capacity}"
            )


class BatchedIndexSet:
    """A family of randomised index sets backed by three shared arrays.

    One row per set: a packed ``(n_sets, capacity)`` member array, a
    ``(n_sets, capacity)`` position table and an ``(n_sets,)`` count vector —
    the array-backed analogue of ``n_sets`` independent :class:`IndexSampler`
    objects, laid out for the vectorized ensemble engine.  The swap-remove
    algorithm (and therefore the member ordering every RNG draw depends on) is
    exactly :class:`IndexSampler`'s, so a row evolved through the same
    operation sequence holds the same packed layout bit for bit — the
    equivalence the hypothesis suite in ``tests/test_utils_indexset.py`` pins
    against the scalar reference.

    Three access regimes coexist:

    * **bulk build** (:meth:`fill_from_masks`) — the whole family initialised
      from boolean membership masks in a handful of array ops, replacing
      per-index insertion loops;
    * **vectorized reads** (:meth:`counts`, :meth:`sample_rows`) — counts and
      member lookups for many rows per numpy call, which is what the fused
      flip loop consumes;
    * **ordered updates** (:meth:`apply_ops`, :meth:`add_many`,
      :meth:`remove_many`) — the per-flip membership deltas.  These are
      inherently sequential *within* a row (every operation reads the count
      and the packed tail its predecessors wrote), so they run as one tight
      scalar loop over memoryviews of the backing arrays, which matches
      Python-list speed while keeping the storage arrays shared with the
      vectorized readers.
    """

    __slots__ = (
        "_n_sets",
        "_capacity",
        "_members",
        "_positions",
        "_counts",
        "_members_mv",
        "_positions_mv",
        "_counts_mv",
    )

    def __init__(self, n_sets: int, capacity: int) -> None:
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._n_sets = int(n_sets)
        self._capacity = int(capacity)
        self._members = np.zeros((n_sets, capacity), dtype=np.int64)
        self._positions = np.full((n_sets, capacity), -1, dtype=np.int64)
        self._counts = np.zeros(n_sets, dtype=np.int64)
        # Flat scalar views for the sequential update loop; ~60% cheaper per
        # element access than ndarray scalar indexing.
        self._members_mv = memoryview(self._members.reshape(-1))
        self._positions_mv = memoryview(self._positions.reshape(-1))
        self._counts_mv = memoryview(self._counts)

    # -------------------------------------------------------------- inspection

    @property
    def n_sets(self) -> int:
        """Number of rows (independent sets) in the family."""
        return self._n_sets

    @property
    def capacity(self) -> int:
        """Maximum element value plus one, shared by every row."""
        return self._capacity

    @property
    def counts(self) -> np.ndarray:
        """Per-row element counts — the live array, not a copy.

        Callers treat it as read-only; the engine reads it every round for
        termination checks and sampler sizes, so handing out the live array
        avoids a per-round allocation.
        """
        return self._counts

    def count(self, row: int) -> int:
        """Number of elements currently in ``row``."""
        return self._counts_mv[row]

    def counts_view(self) -> memoryview:
        """Memoryview over the per-row counts (scalar fast-path contract).

        The fused engine's scalar round loop reads counts and members
        element-wise; these views expose the live buffers at list speed.
        Callers must treat them as read-only.
        """
        return self._counts_mv

    def members_view(self) -> memoryview:
        """Flat memoryview over the packed members, ``row * capacity + k``.

        Read-only companion of :meth:`counts_view`; entry ``row * capacity +
        position`` is the member a uniform draw of ``position`` selects.
        """
        return self._members_mv

    def contains(self, row: int, index: int) -> bool:
        """Whether ``index`` is currently a member of ``row``."""
        return self._positions_mv[row * self._capacity + index] >= 0

    def storage(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live backing arrays ``(members, positions, counts)``, flattened.

        The flip-loop backends (see :mod:`repro.core.backends`) run the
        coded-op membership loop directly over these buffers — members and
        positions as flat ``row * capacity + k`` views of the packed 2-D
        arrays, counts as the per-row vector.  Mutating them outside the
        class's own invariants (packed prefixes, position back-pointers,
        ``-1`` for absent) corrupts the family; backends replicate
        :meth:`apply_coded_ops` exactly, which preserves them.
        """
        return (
            self._members.reshape(-1),
            self._positions.reshape(-1),
            self._counts,
        )

    def packed_members(self, row: int) -> np.ndarray:
        """Copy of ``row``'s packed member array in internal order.

        The order is a function of the operation history (exactly
        :class:`IndexSampler`'s), which is what the layout-equivalence tests
        compare; use :meth:`to_array` for a canonical sorted view.
        """
        return self._members[row, : self._counts_mv[row]].copy()

    def to_array(self, row: int) -> np.ndarray:
        """Sorted copy of ``row``'s members."""
        return np.sort(self.packed_members(row))

    # -------------------------------------------------------------- bulk build

    def clear(self) -> None:
        """Empty every row."""
        self._positions.fill(-1)
        self._counts.fill(0)

    def fill_from_masks(self, masks: np.ndarray) -> None:
        """Rebuild every row from an ``(n_sets, capacity)`` boolean mask.

        Equivalent to clearing and adding each row's true indices in
        increasing order (the insertion order of the scalar engines'
        ``recompute_all``), but fully vectorized: one ``nonzero`` plus a few
        scatters for the whole family, with no Python-per-index work.
        """
        masks = np.asarray(masks, dtype=bool)
        if masks.shape != (self._n_sets, self._capacity):
            raise ValueError(
                f"masks shape {masks.shape} does not match "
                f"({self._n_sets}, {self._capacity})"
            )
        rows, indices = np.nonzero(masks)
        counts = np.count_nonzero(masks, axis=1)
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        offsets = np.arange(rows.size, dtype=np.int64) - starts[rows]
        self._positions.fill(-1)
        self._members[rows, offsets] = indices
        self._positions[rows, indices] = offsets
        self._counts[:] = counts

    def add_many(self, rows: np.ndarray, indices: np.ndarray) -> None:
        """Append ``indices[k]`` to ``rows[k]``, vectorized, in array order.

        Pairs must be grouped by row (all of a row's additions contiguous, in
        their insertion order) and must not repeat an index within a row;
        already-present elements are skipped, exactly like repeated
        :meth:`IndexSampler.add` calls.  Appends commute with nothing reading
        the tail, so unlike removals they vectorize without losing the
        sequential layout.
        """
        rows = np.asarray(rows, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if rows.size == 0:
            return
        fresh = self._positions[rows, indices] < 0
        rows, indices = rows[fresh], indices[fresh]
        if rows.size == 0:
            return
        boundaries = np.flatnonzero(np.concatenate(([True], rows[1:] != rows[:-1])))
        group_sizes = np.diff(np.concatenate((boundaries, [rows.size])))
        ranks = np.arange(rows.size, dtype=np.int64) - np.repeat(
            boundaries, group_sizes
        )
        offsets = self._counts[rows] + ranks
        self._members[rows, offsets] = indices
        self._positions[rows, indices] = offsets
        self._counts[rows[boundaries]] += group_sizes

    def remove_many(self, rows: np.ndarray, indices: np.ndarray) -> None:
        """Remove ``indices[k]`` from ``rows[k]`` in array order.

        Removals are order-entangled: each swap-remove reads the packed tail
        its predecessors may have rewritten, so the exact scalar semantics run
        in the sequential :meth:`apply_ops` loop.  Missing elements are
        skipped, like :meth:`IndexSampler.remove`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self.apply_ops(
            rows.tolist(),
            np.asarray(indices, dtype=np.int64).tolist(),
            [False] * rows.size,
        )

    # ------------------------------------------------------------ ordered ops

    def apply_ops(
        self, rows: list, indices: list, member: list
    ) -> None:
        """Set membership of ``indices[k]`` in ``rows[k]``, strictly in order.

        The engine's per-flip path: one interleaved stream of add/remove
        decisions (``member[k]`` true adds, false removes; no-ops when the
        membership already matches), applied in exactly the order given.  The
        loop is scalar by necessity — operation ``k`` on a row reads state
        written by operation ``k-1`` through the count and the packed tail —
        but runs on memoryviews with no per-op method dispatch, which
        profiles at list speed.
        """
        members_mv = self._members_mv
        positions_mv = self._positions_mv
        counts_mv = self._counts_mv
        capacity = self._capacity
        for row, index, add in zip(rows, indices, member):
            base = row * capacity
            position = positions_mv[base + index]
            if add:
                if position >= 0:
                    continue
                count = counts_mv[row]
                members_mv[base + count] = index
                positions_mv[base + index] = count
                counts_mv[row] = count + 1
            else:
                if position < 0:
                    continue
                count = counts_mv[row] - 1
                counts_mv[row] = count
                last = members_mv[base + count]
                members_mv[base + position] = last
                positions_mv[base + last] = position
                positions_mv[base + index] = -1

    def apply_coded_ops(
        self,
        rows: list,
        indices: list,
        toggled: list,
        members: list,
        row_offset: int,
    ) -> None:
        """Paired membership updates driven by two-bit change/state codes.

        The fused flip kernel's hot path: for each position ``k``, bit ``b``
        of ``toggled[k]`` says whether the membership of ``indices[k]`` in
        row ``rows[k] + b * row_offset`` must be set to bit ``b`` of
        ``members[k]``.  Updates are applied in ``k`` order with bit 0 before
        bit 1 — the same interleaving as two :meth:`apply_ops` streams zipped
        per site — but one loop iteration handles both rows of a site, which
        halves the per-operation dispatch cost.
        """
        members_mv = self._members_mv
        positions_mv = self._positions_mv
        counts_mv = self._counts_mv
        capacity = self._capacity
        offset_base = row_offset * capacity
        for row, index, toggle, member in zip(rows, indices, toggled, members):
            base = row * capacity
            if toggle & 1:
                target = base + index
                position = positions_mv[target]
                if member & 1:
                    if position < 0:
                        count = counts_mv[row]
                        members_mv[base + count] = index
                        positions_mv[target] = count
                        counts_mv[row] = count + 1
                elif position >= 0:
                    count = counts_mv[row] - 1
                    counts_mv[row] = count
                    last = members_mv[base + count]
                    members_mv[base + position] = last
                    positions_mv[base + last] = position
                    positions_mv[target] = -1
            if toggle & 2:
                pair_row = row + row_offset
                pair_base = base + offset_base
                target = pair_base + index
                position = positions_mv[target]
                if member & 2:
                    if position < 0:
                        count = counts_mv[pair_row]
                        members_mv[pair_base + count] = index
                        positions_mv[target] = count
                        counts_mv[pair_row] = count + 1
                elif position >= 0:
                    count = counts_mv[pair_row] - 1
                    counts_mv[pair_row] = count
                    last = members_mv[pair_base + count]
                    members_mv[pair_base + position] = last
                    positions_mv[pair_base + last] = position
                    positions_mv[target] = -1

    # ---------------------------------------------------------------- sampling

    def sample_rows(self, rows: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Members at packed positions ``draws`` of ``rows`` (vectorized).

        ``draws[k]`` must lie in ``[0, count(rows[k]))``; the caller supplies
        the uniform draws (the engine gets them from its blocked RNG streams),
        so this is a pure gather.
        """
        return self._members[rows, draws]
