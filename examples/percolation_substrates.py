"""Exercise the percolation substrates used by the paper's proofs.

Three independent demonstrations, matching the three external theorems the
paper builds on:

* first-passage percolation — the time constant and Kesten's sqrt(k)
  concentration of the point-to-point passage time (Theorem 3);
* chemical distance in supercritical site percolation — the Garet-Marchand
  stretch factor staying close to 1 (Theorem 4);
* sub-critical cluster radii — Grimmett's exponential tail decay (Theorem 5).

Usage::

    python examples/percolation_substrates.py [--trials 80]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.percolation import (
    estimate_chemical_stretch,
    estimate_radius_tail,
    estimate_theta,
    study_passage_times,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=80, help="Monte-Carlo trials per point")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    print("First-passage percolation (Kesten, Theorem 3)")
    print("  k   E[T_k]    T_k/k   std/sqrt(k)")
    for k in (8, 16, 32):
        study = study_passage_times(k, args.trials, seed=rng)
        print(
            f"  {k:3d} {np.mean(study.samples):8.3f} "
            f"{study.time_constant_estimate:8.3f} {study.normalized_fluctuation:10.3f}"
        )

    print("\nChemical distance (Garet-Marchand, Theorem 4), p = 0.85")
    print("  ||x||_1   connected   mean stretch   P(stretch >= 1.25)")
    for separation in (8, 16, 24):
        estimate = estimate_chemical_stretch(0.85, separation, args.trials, seed=rng)
        mean_stretch = float(np.mean(estimate.stretches)) if estimate.stretches.size else float("nan")
        print(
            f"  {separation:7d} {estimate.connection_rate:10.2f} "
            f"{mean_stretch:13.3f} {estimate.exceed_probability(0.25):18.3f}"
        )

    print("\nSub-critical cluster radius tail (Grimmett, Theorem 5), p = 0.35")
    tail = estimate_radius_tail(
        0.35, [1, 2, 3, 4, 6], box_radius=8, n_trials=max(args.trials * 5, 200), seed=rng
    )
    print("  radius   P(radius >= k)")
    for radius, probability in zip(tail.radii, tail.probabilities):
        print(f"  {int(radius):6d} {probability:15.4f}")
    print(f"  fitted decay rate psi(p) ~ {tail.decay_rate():.3f}")

    print("\nPercolation probability theta(p) on a finite box")
    for p_open in (0.45, 0.65, 0.85):
        theta = estimate_theta(p_open, box_side=25, n_trials=args.trials // 2, seed=rng)
        print(f"  p = {p_open:.2f}: theta ~ {theta.theta:.3f} (spanning fraction {theta.spanning_fraction:.3f})")


if __name__ == "__main__":
    main()
