"""Demonstrate the paper's two key proof gadgets on planted configurations.

1. A *radical region* (Lemma 5): a window of radius (1 + eps') w with very few
   minority agents.  We plant one, verify the greedy expansion certificate and
   run the dynamics to show it seeds a monochromatic patch.
2. A *firewall* (Lemma 9): a monochromatic annulus of width sqrt(2) w.  We
   plant one, make the entire exterior adversarial and show the annulus and
   its interior survive the dynamics untouched.

Usage::

    python examples/firewall_and_radical_regions.py [--horizon 3] [--tau 0.42] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ModelConfig
from repro.analysis import (
    check_firewall_robustness,
    monochromatic_radius,
    try_expand_radical_region,
)
from repro.analysis.firewall import run_with_adversarial_exterior
from repro.core import (
    Simulation,
    planted_annulus_configuration,
    planted_radical_region_configuration,
)
from repro.theory import trigger_epsilon
from repro.types import AgentType
from repro.viz import render_ascii


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=3, help="neighbourhood radius w")
    parser.add_argument("--tau", type=float, default=0.42, help="intolerance threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def radical_region_demo(args: argparse.Namespace) -> None:
    side = 12 * (2 * args.horizon + 1)
    config = ModelConfig.square(side=side, horizon=args.horizon, tau=args.tau)
    center = (side // 2, side // 2)
    epsilon_prime = max(trigger_epsilon(args.tau) * 1.2, 0.3)
    print("=== Radical region (Lemma 5 / Lemma 10) ===")
    print(f"Model: {config.describe()}")
    print(f"Trigger infimum f(tau) = {trigger_epsilon(args.tau):.3f}; using eps' = {epsilon_prime:.3f}")

    grid = planted_radical_region_configuration(config, center, epsilon_prime, seed=args.seed)
    expansion = try_expand_radical_region(config, grid.spins, center, epsilon_prime)
    print(
        f"Greedy expansion certificate: expanded={expansion.expanded} "
        f"using {expansion.n_flips} of {expansion.flip_budget} allowed flips"
    )

    simulation = Simulation(config, seed=args.seed, initial_grid=grid)
    result = simulation.run()
    final_radius = monochromatic_radius(result.final_spins, center, max_radius=4 * config.horizon)
    print(
        f"After running the dynamics to termination, the planted centre sits in a "
        f"monochromatic region of radius {final_radius} "
        f"(size {(2 * final_radius + 1) ** 2} agents)\n"
    )


def firewall_demo(args: argparse.Namespace) -> None:
    # The annulus check is documented to need tau <= ~0.44 at small horizons;
    # clamp so the demo always shows the intended behaviour.
    tau = min(args.tau, 0.42)
    side = 16 * args.horizon
    config = ModelConfig.square(side=side, horizon=args.horizon, tau=tau)
    center = (side // 2, side // 2)
    outer_radius = 4.0 * args.horizon
    print("=== Firewall (Lemma 9) ===")
    print(f"Model: {config.describe()}")
    grid = planted_annulus_configuration(
        config,
        center,
        outer_radius,
        annulus_type=AgentType.PLUS,
        interior_type=AgentType.PLUS,
        seed=args.seed,
    )
    robustness = check_firewall_robustness(grid.spins, config, center, outer_radius)
    survives = run_with_adversarial_exterior(
        grid.spins, config, center, outer_radius, seed=args.seed
    )
    print(
        f"Static adversarial check holds: {robustness.holds} "
        f"({robustness.n_firewall_agents} firewall agents)"
    )
    print(f"Firewall survives a full adversarial dynamics run: {survives}")
    print("\nPlanted configuration (firewall annulus of + agents in a random sea):")
    print(render_ascii(grid.spins, max_side=min(side, 64)))


def main() -> None:
    args = parse_args()
    radical_region_demo(args)
    firewall_demo(args)


if __name__ == "__main__":
    main()
