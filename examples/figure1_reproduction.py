"""Reproduce Figure 1: snapshots of self-organised segregation over time.

Runs the (scaled-down) Figure 1 configuration, collects the initial, two
intermediate and the terminated configuration, writes each panel as a PPM
image using the paper's colour legend (green/blue happy, white/yellow
unhappy), and prints per-panel segregation metrics.

Set ``REPRO_FULL_SCALE=1`` to use the paper's exact parameters
(1000 x 1000 grid, w = 10, tau = 0.42); expect a long run.

Usage::

    python examples/figure1_reproduction.py [--outdir figure1_panels] [--seed 2017]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.segregation import unhappy_fraction
from repro.core.lyapunov import same_type_count_field
from repro.experiments import figure1_snapshots
from repro.viz import render_ascii, write_configuration_image


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--outdir", type=str, default="figure1_panels", help="directory for PPM panels"
    )
    parser.add_argument("--seed", type=int, default=2017, help="random seed")
    parser.add_argument(
        "--intermediate", type=int, default=2, help="number of intermediate panels"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    result = figure1_snapshots(seed=args.seed, n_intermediate=args.intermediate)
    config = result.config
    print(f"Model: {config.describe()}")
    print(f"Total flips to termination: {result.total_flips}\n")
    print(result.metrics.to_markdown(float_format=".4g"))

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for index, snapshot in enumerate(result.snapshots):
        same = same_type_count_field(snapshot.spins, config.horizon)
        happy = same >= config.happiness_threshold
        path = outdir / f"panel_{index}.ppm"
        write_configuration_image(snapshot.spins, path, happy_mask=happy)
        print(
            f"panel {index}: flips={snapshot.n_flips:8d} "
            f"unhappy={unhappy_fraction(snapshot.spins, config):.4f} -> {path}"
        )

    print("\nFinal configuration (ASCII, downsampled):")
    print(render_ascii(result.snapshots[-1].spins, max_side=60))


if __name__ == "__main__":
    main()
