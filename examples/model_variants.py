"""Model variants: two-sided comfort bands and per-type intolerances.

The paper's concluding remarks point out that its model is biased towards
segregation (agents never flip when surrounded by their own type) and suggest
studying a variant where agents are uncomfortable both as a minority and as a
majority; Section I.B also discusses the Barmpalias et al. model with a
different intolerance per agent type.  This example runs both variants next
to the baseline model on the same initial configuration and compares the
outcomes.

Usage::

    python examples/model_variants.py [--side 48] [--horizon 2] [--tau 0.45] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ModelConfig
from repro.analysis import segregation_metrics
from repro.core import GlauberDynamics, ModelState, random_configuration
from repro.core.variants import AsymmetricModelState, TwoSidedModelState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=48)
    parser.add_argument("--horizon", type=int, default=2)
    parser.add_argument("--tau", type=float, default=0.45)
    parser.add_argument("--tau-high", type=float, default=0.80)
    parser.add_argument("--tau-minus", type=float, default=0.30)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def report(label: str, state, config: ModelConfig, n_flips: int) -> None:
    metrics = segregation_metrics(
        state.grid.spins, config, max_region_radius=4 * config.horizon
    )
    print(
        f"{label:22s} flips={n_flips:6d} homogeneity={metrics.local_homogeneity:.3f} "
        f"mean_mono_size={metrics.mean_monochromatic_size:8.1f} "
        f"unhappy={metrics.unhappy_fraction:.3f}"
    )


def main() -> None:
    args = parse_args()
    config = ModelConfig.square(side=args.side, horizon=args.horizon, tau=args.tau)
    initial = random_configuration(config, seed=args.seed)
    budget = 20 * config.n_sites
    print(f"Model: {config.describe()}")
    print(
        f"Variants: two-sided band [{args.tau}, {args.tau_high}], "
        f"per-type intolerances (tau_plus={args.tau}, tau_minus={args.tau_minus})\n"
    )

    baseline = ModelState(config, initial.copy())
    base_result = GlauberDynamics(baseline, seed=args.seed).run()
    report("paper model", baseline, config, base_result.n_flips)

    two_sided = TwoSidedModelState(config, tau_high=args.tau_high, grid=initial.copy())
    two_result = GlauberDynamics(two_sided, seed=args.seed).run(max_steps=budget)
    report("two-sided comfort", two_sided, config, two_result.n_flips)

    asymmetric = AsymmetricModelState(config, tau_minus=args.tau_minus, grid=initial.copy())
    asym_result = GlauberDynamics(asymmetric, seed=args.seed).run(max_steps=budget)
    report("per-type intolerance", asymmetric, config, asym_result.n_flips)

    print(
        "\nThe two-sided band caps how segregated a neighbourhood may become, so it "
        "ends less homogeneous than the paper's model; lowering the -1 agents' "
        "intolerance freezes them and shifts the flip activity onto +1 agents."
    )


if __name__ == "__main__":
    main()
