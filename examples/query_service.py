"""Sweep-as-a-service, end to end: sweep → store → query → HTTP.

Runs a small checkpointed sweep (leaving a complete artifact store with
``manifest.json``, ``metrics.jsonl`` and ``summary.json``), then exercises
the serving layer three ways:

1. re-executes one cell from the manifest and confirms the regenerated rows
   match the recorded ones bitwise (``repro reproduce``'s core check);
2. answers parameter-point queries in process — exact grid point, bilinear
   interpolation between grid points, nearest cell for an off-grid point —
   through the LRU answer cache, printing the hit/miss counters;
3. starts the stdlib HTTP endpoint on an ephemeral port and performs the
   same queries over ``GET /query``, plus ``/stats`` for the live counters.

Usage::

    python examples/query_service.py [--side 12] [--replicates 2] [--keep]

With ``--keep`` the store directory is printed and preserved so you can
point ``repro query``/``repro serve`` at it afterwards.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import QueryEngine, reproduce_store
from repro.core.config import ModelConfig
from repro.experiments.runner import run_sweep
from repro.experiments.spec import SweepSpec
from repro.serving import make_server


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=12, help="grid side length")
    parser.add_argument(
        "--replicates", type=int, default=2, help="replicates per sweep cell"
    )
    parser.add_argument(
        "--keep",
        action="store_true",
        help="preserve the store directory for repro query / repro serve",
    )
    return parser.parse_args()


def build_store(args: argparse.Namespace, directory: Path) -> None:
    """Run a 2x2 (tau, rho) sweep with checkpointing into ``directory``."""
    sweep = SweepSpec(
        name="service-demo",
        base_config=ModelConfig.square(side=args.side, horizon=1, tau=0.3),
        taus=(0.3, 0.45),
        densities=(0.4, 0.6),
        n_replicates=args.replicates,
        seed=42,
    )
    print(f"Sweeping {len(list(sweep.cells()))} cells into {directory} ...")
    run_sweep(sweep, checkpoint_dir=directory)
    summary = json.loads((directory / "summary.json").read_text())
    print(
        f"Store complete: {summary['n_summarized']}/{summary['n_cells']} "
        "cells summarized in summary.json"
    )


def show(label: str, answer: dict) -> None:
    """Print one query answer compactly."""
    mean = answer["metrics"]["final_unhappy_fraction"]["mean"]
    print(
        f"  {label:<14} source={answer['source']:<13} "
        f"cached={str(answer['cached']):<5} final_unhappy_fraction.mean={mean:.4f}"
    )


def main() -> None:
    args = parse_args()
    directory = Path(tempfile.mkdtemp(prefix="repro-store-")) / "store"
    try:
        build_store(args, directory)

        print("\nReproducing one cell from the manifest (bitwise):")
        report = reproduce_store(
            directory, cell="service-demo[w=1,tau=0.3000,p=0.400]"
        )
        print(f"  status={report.results[0].status} ok={report.ok}")

        print("\nIn-process queries through the LRU cache:")
        engine = QueryEngine(directory, interpolate=True)
        show("exact", engine.answer("tau=0.3,rho=0.4,w=1"))
        show("exact again", engine.answer("tau=0.3,rho=0.4,w=1"))
        show("interpolated", engine.answer("tau=0.375,rho=0.5,w=1"))
        show("nearest", engine.answer("tau=0.9,rho=0.9,w=1"))
        print(f"  cache counters: {engine.cache.stats()}")

        print("\nSame store over HTTP:")
        server = make_server(directory, port=0, interpolate=True)
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"  listening on {base}")
        try:
            for path in (
                "/query?point=tau=0.3,rho=0.4,w=1",
                "/query?tau=0.375&rho=0.5&w=1",
                "/stats",
            ):
                with urllib.request.urlopen(base + path, timeout=10) as response:
                    body = json.loads(response.read())
                if "source" in body:
                    print(f"  GET {path} -> source={body['source']}")
                else:
                    print(f"  GET {path} -> cache={body['cache']}")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        if args.keep:
            print(f"\nStore kept at: {directory}")
            print(f"  try: PYTHONPATH=src python -m repro serve --store {directory}")
    finally:
        if not args.keep:
            shutil.rmtree(directory.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
