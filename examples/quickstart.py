"""Quickstart: run the Schelling / Glauber segregation model once.

Draws a Bernoulli(1/2) initial configuration on a torus, runs the paper's
Glauber dynamics to termination, and prints before/after segregation metrics
together with ASCII renderings of the two configurations.

Usage::

    python examples/quickstart.py [--side 80] [--horizon 3] [--tau 0.45] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ModelConfig, segregation_metrics, simulate
from repro.theory import classify_regime, lower_exponent, upper_exponent
from repro.viz import render_ascii, side_by_side


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=80, help="grid side length")
    parser.add_argument("--horizon", type=int, default=3, help="neighbourhood radius w")
    parser.add_argument("--tau", type=float, default=0.45, help="intolerance threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = ModelConfig.square(side=args.side, horizon=args.horizon, tau=args.tau)
    print(f"Model: {config.describe()}")
    print(f"Predicted regime (Figure 2): {classify_regime(config.tau).value}")
    if classify_regime(config.tau).value.startswith("exponential"):
        print(
            "Theorem exponents: "
            f"a(tau) = {lower_exponent(config.tau):.4f}, "
            f"b(tau) = {upper_exponent(config.tau):.4f}"
        )

    result = simulate(config, seed=args.seed, record_trajectory=True)
    print(
        f"\nRun finished: terminated={result.terminated}, "
        f"flips={result.n_flips}, continuous time={result.final_time:.2f}"
    )

    max_radius = 4 * config.horizon
    before = segregation_metrics(result.initial_spins, config, max_region_radius=max_radius)
    after = segregation_metrics(result.final_spins, config, max_region_radius=max_radius)
    print("\nMetric                        initial      final")
    for name in (
        "unhappy_fraction",
        "local_homogeneity",
        "interface_density",
        "mean_monochromatic_size",
        "largest_cluster_fraction",
    ):
        print(f"{name:28s} {getattr(before, name):10.4f} {getattr(after, name):10.4f}")

    print("\nInitial (left) vs terminated (right) configuration:")
    print(
        side_by_side(
            render_ascii(result.initial_spins, max_side=40),
            render_ascii(result.final_spins, max_side=40),
        )
    )


if __name__ == "__main__":
    main()
