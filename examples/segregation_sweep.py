"""Intolerance sweep: reproduce the qualitative content of Figures 2 and 3.

Sweeps the intolerance across the regimes of Figure 2, runs a few replicates
per value, and prints a table of final segregation metrics next to the regime
predicted by the paper and the theoretical exponents a(tau)/b(tau).  The raw
replicate rows are also written to CSV for later plotting.

Usage::

    python examples/segregation_sweep.py [--horizon 2] [--replicates 3] [--out sweep.csv]
"""

from __future__ import annotations

import argparse

from repro.experiments import figure2_interval_sweep, figure3_exponent_table
from repro.theory import segregation_expected


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=2, help="neighbourhood radius w")
    parser.add_argument("--replicates", type=int, default=3, help="replicates per tau")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument("--out", type=str, default=None, help="optional CSV output path")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print("Empirical sweep across the intolerance axis (Figure 2 regimes)")
    table = figure2_interval_sweep(
        horizon=args.horizon, n_replicates=args.replicates, seed=args.seed
    )
    print(table.to_markdown(float_format=".3g"))

    segregating = [row for row in table if segregation_expected(float(row["tau"]))]
    static_like = [row for row in table if not segregation_expected(float(row["tau"]))]
    if segregating and static_like:
        seg_mean = sum(
            float(row["final_mean_monochromatic_size_mean"]) for row in segregating
        ) / len(segregating)
        static_mean = sum(
            float(row["final_mean_monochromatic_size_mean"]) for row in static_like
        ) / len(static_like)
        print(
            f"\nMean final monochromatic-region size — segregating regimes: "
            f"{seg_mean:.1f}, other regimes: {static_mean:.1f}"
        )

    print("\nTheoretical exponent multipliers (Figure 3):")
    exponents = figure3_exponent_table(taus=[0.36, 0.40, 0.44, 0.46, 0.48])
    print(exponents.to_markdown(float_format=".4f"))

    if args.out:
        path = table.to_csv(args.out)
        print(f"\nWrote aggregated sweep rows to {path}")


if __name__ == "__main__":
    main()
