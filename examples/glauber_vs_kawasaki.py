"""Compare the paper's Glauber dynamics with the Kawasaki (swap) baseline.

Both dynamics start from the same Bernoulli(1/2) configuration.  Glauber
dynamics flips individual agents (open system — the type balance drifts),
Kawasaki dynamics swaps unhappy opposite-type pairs (closed system — the type
balance is conserved exactly).  The example prints final segregation metrics
for both, illustrating the model classes discussed in Section I.A.

Usage::

    python examples/glauber_vs_kawasaki.py [--side 50] [--horizon 2] [--tau 0.45] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ModelConfig
from repro.analysis import segregation_metrics
from repro.core import GlauberDynamics, KawasakiDynamics, ModelState, random_configuration


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=50)
    parser.add_argument("--horizon", type=int, default=2)
    parser.add_argument("--tau", type=float, default=0.45)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kawasaki-proposals", type=int, default=20000)
    return parser.parse_args()


def report(label: str, state: ModelState, config: ModelConfig) -> None:
    metrics = segregation_metrics(
        state.grid.spins, config, max_region_radius=4 * config.horizon
    )
    print(
        f"{label:10s} homogeneity={metrics.local_homogeneity:.3f} "
        f"mean_mono_size={metrics.mean_monochromatic_size:8.1f} "
        f"unhappy={metrics.unhappy_fraction:.4f} "
        f"magnetisation={state.grid.magnetization():+.4f}"
    )


def main() -> None:
    args = parse_args()
    config = ModelConfig.square(side=args.side, horizon=args.horizon, tau=args.tau)
    initial = random_configuration(config, seed=args.seed)
    print(f"Model: {config.describe()}")
    print(f"Initial magnetisation: {initial.magnetization():+.4f}\n")

    glauber_state = ModelState(config, initial.copy())
    report("initial", glauber_state, config)

    glauber_result = GlauberDynamics(glauber_state, seed=args.seed).run()
    print(f"\nGlauber: {glauber_result.n_flips} flips, terminated={glauber_result.terminated}")
    report("glauber", glauber_state, config)

    kawasaki_state = ModelState(config, initial.copy())
    kawasaki_result = KawasakiDynamics(kawasaki_state, seed=args.seed).run(
        max_proposals=args.kawasaki_proposals
    )
    print(
        f"\nKawasaki: {kawasaki_result.n_swaps} swaps out of "
        f"{kawasaki_result.n_proposals} proposals, converged={kawasaki_result.converged}"
    )
    report("kawasaki", kawasaki_state, config)

    drift = abs(glauber_state.grid.magnetization() - initial.magnetization())
    conserved = abs(kawasaki_state.grid.magnetization() - initial.magnetization())
    print(
        f"\nMagnetisation drift — Glauber (open system): {drift:.4f}, "
        f"Kawasaki (closed system): {conserved:.6f}"
    )


if __name__ == "__main__":
    main()
