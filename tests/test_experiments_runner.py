"""Tests for the replicate/sweep runner."""

import json
from pathlib import Path

import pytest

from repro.core.config import ModelConfig
from repro.core.variants import VariantSpec
from repro.experiments.runner import (
    aggregate_sweep,
    run_experiment,
    run_replicate,
    run_sweep,
)
from repro.experiments.spec import ExperimentSpec, SweepSpec


@pytest.fixture
def small_spec() -> ExperimentSpec:
    config = ModelConfig.square(side=20, horizon=1, tau=0.4)
    return ExperimentSpec(name="unit", config=config, n_replicates=2, seed=7)


class TestRunReplicate:
    def test_row_contents(self, small_spec):
        row = run_replicate(small_spec, 0, 123)
        assert row["experiment"] == "unit"
        assert row["terminated"] is True or row["terminated"] is False
        assert row["tau"] == 0.4
        assert "final_mean_monochromatic_size" in row
        assert "initial_local_homogeneity" in row
        assert row["wall_clock_seconds"] >= 0

    def test_deterministic_given_seed(self, small_spec):
        a = run_replicate(small_spec, 0, 99)
        b = run_replicate(small_spec, 0, 99)
        assert a["n_flips"] == b["n_flips"]
        assert a["final_energy"] == b["final_energy"]

    def test_segregation_metrics_improve(self, small_spec):
        row = run_replicate(small_spec, 0, 5)
        assert row["final_local_homogeneity"] >= row["initial_local_homogeneity"]


class TestRunExperiment:
    def test_replicate_count(self, small_spec):
        table = run_experiment(small_spec)
        assert len(table) == small_spec.n_replicates

    def test_replicates_use_distinct_seeds(self, small_spec):
        table = run_experiment(small_spec)
        seeds = table.column("seed")
        assert len(set(seeds)) == len(seeds)


class TestRunSweep:
    def test_sweep_rows_and_progress(self):
        base = ModelConfig.square(side=20, horizon=1, tau=0.4)
        sweep = SweepSpec(
            name="sweep", base_config=base, taus=[0.35, 0.45], n_replicates=2, seed=0
        )
        visited = []
        table = run_sweep(sweep, progress=lambda cell: visited.append(cell.name))
        assert len(table) == 4
        assert len(visited) == 2

    def test_progress_callback_fires_exactly_once_per_cell(self):
        """Smoke test for the typed ``progress`` hook: one call per cell, in
        cell order, with the cell's ExperimentSpec."""
        base = ModelConfig.square(side=18, horizon=1, tau=0.4)
        sweep = SweepSpec(
            name="progress",
            base_config=base,
            taus=[0.35, 0.4, 0.45],
            n_replicates=1,
            seed=2,
        )
        visited: list[ExperimentSpec] = []
        run_sweep(sweep, progress=visited.append)
        assert [cell.name for cell in visited] == [
            cell.name for cell in sweep.cells()
        ]
        assert all(isinstance(cell, ExperimentSpec) for cell in visited)

    def test_ensemble_size_produces_identical_rows(self):
        base = ModelConfig.square(side=18, horizon=1, tau=0.4)
        sweep = SweepSpec(
            name="sweep", base_config=base, taus=[0.35, 0.45], n_replicates=3, seed=4
        )
        serial = run_sweep(sweep)
        vectorized = run_sweep(sweep, ensemble_size=3)
        strip = lambda table: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in table.rows
        ]
        assert strip(serial) == strip(vectorized)

    def test_aggregate_sweep(self):
        base = ModelConfig.square(side=20, horizon=1, tau=0.4)
        sweep = SweepSpec(
            name="sweep", base_config=base, taus=[0.35, 0.45], n_replicates=2, seed=1
        )
        table = run_sweep(sweep)
        summary = aggregate_sweep(table, group_keys=("tau",))
        assert len(summary) == 2
        assert "final_mean_monochromatic_size_mean" in summary[0]
        assert summary[0]["n"] == 2


class TestTrajectoryRecording:
    def _sweep(self, record=True):
        base = ModelConfig.square(side=12, horizon=1, tau=0.4)
        return SweepSpec(
            name="traj",
            base_config=base,
            taus=[0.35, 0.4],
            n_replicates=2,
            seed=3,
            record_trajectory=record,
            record_every=25,
        )

    def test_rows_gain_traj_columns(self):
        table = run_sweep(self._sweep())
        for row in table.rows:
            assert "traj_final_energy" in row
            assert "traj_energy_monotone" in row
            assert row["traj_energy_monotone"] == 1.0
            assert row["traj_total_flips"] == float(row["n_flips"])

    def test_no_traj_columns_by_default(self):
        table = run_sweep(self._sweep(record=False))
        assert not any(key.startswith("traj_") for key in table.rows[0])

    def test_ensemble_and_scalar_rows_identical_with_recording(self):
        sweep = self._sweep()
        strip = lambda table: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in table.rows
        ]
        serial = run_sweep(sweep)
        batched = run_sweep(sweep, ensemble_size=2)
        assert strip(serial) == strip(batched)

    def test_parallel_rows_identical_with_recording(self):
        sweep = self._sweep()
        strip = lambda table: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in table.rows
        ]
        serial = run_sweep(sweep)
        parallel = run_sweep(sweep, workers=2, ensemble_size=2)
        assert strip(serial) == strip(parallel)


def _strip_timings(table):
    return [
        {k: v for k, v in row.items() if k != "wall_clock_seconds"}
        for row in table.rows
    ]


class TestGoldenRows:
    """The measurement pipeline must keep producing the pre-batching rows.

    ``tests/data/golden_sweep_rows.json`` was captured from the serial runner
    *before* the batched region scans and ``segregation_metrics_batch``
    landed; every execution path must still reproduce those rows bitwise
    (timings aside), which pins the whole pipeline — metrics included — to
    the original semantics.
    """

    GOLDEN_PATH = Path(__file__).parent / "data" / "golden_sweep_rows.json"

    def _sweep(self) -> SweepSpec:
        base = ModelConfig.square(side=22, horizon=2, tau=0.45)
        return SweepSpec(
            name="golden", base_config=base, taus=[0.4, 0.45], n_replicates=2, seed=2024
        )

    def _normalized_rows(self, table) -> list[dict]:
        # A JSON round-trip mirrors how the fixture was written (tuples to
        # lists, numpy scalars to Python numbers) without perturbing floats.
        return json.loads(json.dumps(_strip_timings(table)))

    @pytest.mark.parametrize(
        "run_kwargs",
        [{}, {"ensemble_size": 2}, {"workers": 2, "ensemble_size": 2}],
        ids=["serial", "ensemble", "parallel"],
    )
    def test_rows_match_pre_batching_capture(self, run_kwargs):
        golden = json.loads(self.GOLDEN_PATH.read_text())
        table = run_sweep(self._sweep(), **run_kwargs)
        assert self._normalized_rows(table) == golden

    def test_shared_memory_transfer_matches_capture(self):
        from repro.experiments import shm
        from repro.experiments.parallel import run_sweep_parallel

        if not shm.shm_available():
            pytest.skip("no usable shared memory on this host")
        golden = json.loads(self.GOLDEN_PATH.read_text())
        table = run_sweep_parallel(self._sweep(), workers=2, transfer="shm")
        assert self._normalized_rows(table) == golden

    def test_retried_rows_match_capture_bitwise(self):
        # Supervised retry must not perturb a single bit of the output:
        # per-cell seeds never depend on the attempt, so a sweep that
        # crashed and retried converges to exactly the golden rows.
        from repro.experiments.faults import FaultPlan
        from repro.experiments.parallel import run_sweep_parallel

        golden = json.loads(self.GOLDEN_PATH.read_text())
        table = run_sweep_parallel(
            self._sweep(),
            workers=2,
            fault_plan=FaultPlan().crash(0).memory_error(1, attempts=2),
            retries=2,
            on_error="retry",
            backoff=0.0,
            transfer="pickle",
            chunk_size=1,
        )
        assert table.failures == []
        assert self._normalized_rows(table) == golden


class TestVariantCells:
    """Variant cells produce engine-independent rows across all three paths."""

    def _variant_sweep(self, variant, record=False):
        base = ModelConfig.square(side=16, horizon=1, tau=0.45)
        return SweepSpec(
            name="variant",
            base_config=base,
            taus=[0.4, 0.45],
            n_replicates=3,
            seed=3,
            max_steps=5 * base.n_sites,
            record_trajectory=record,
            record_every=25,
            variant=variant,
        )

    @pytest.mark.parametrize(
        "variant",
        [VariantSpec.two_sided(0.8), VariantSpec.asymmetric(0.3)],
        ids=["two_sided", "asymmetric"],
    )
    def test_ensemble_rows_match_serial_rows(self, variant):
        sweep = self._variant_sweep(variant)
        serial = run_sweep(sweep)
        batched = run_sweep(sweep, ensemble_size=2)
        assert _strip_timings(serial) == _strip_timings(batched)

    @pytest.mark.parametrize(
        "variant",
        [VariantSpec.two_sided(0.8), VariantSpec.asymmetric(0.3)],
        ids=["two_sided", "asymmetric"],
    )
    def test_parallel_ensemble_rows_match_serial_rows(self, variant):
        sweep = self._variant_sweep(variant)
        serial = run_sweep(sweep)
        parallel = run_sweep(sweep, workers=2, ensemble_size=2)
        assert _strip_timings(serial) == _strip_timings(parallel)

    def test_variant_rows_with_trajectories_match(self):
        sweep = self._variant_sweep(VariantSpec.asymmetric(0.3), record=True)
        serial = run_sweep(sweep)
        batched = run_sweep(sweep, ensemble_size=2)
        assert _strip_timings(serial) == _strip_timings(batched)
        assert all("traj_final_energy" in row for row in serial.rows)

    def test_variant_columns_present(self):
        sweep = self._variant_sweep(VariantSpec.two_sided(0.8))
        table = run_sweep(sweep)
        for row in table.rows:
            assert row["variant"] == "two_sided"
            assert row["tau_high"] == 0.8
            assert "tau_minus" not in row

    def test_base_rows_record_base_variant(self):
        base = ModelConfig.square(side=16, horizon=1, tau=0.4)
        spec = ExperimentSpec(name="unit", config=base, n_replicates=1, seed=1)
        table = run_experiment(spec)
        assert table[0]["variant"] == "base"
        assert "tau_high" not in table[0]

    def test_two_sided_cells_report_step_capped_runs(self):
        # A tiny budget leaves every replicate unterminated; the rows must
        # say so instead of the cell hanging.
        base = ModelConfig.square(side=24, horizon=2, tau=0.45)
        spec = ExperimentSpec(
            name="budget",
            config=base,
            n_replicates=2,
            seed=11,
            max_steps=50,
            variant=VariantSpec.two_sided(0.8),
        )
        for table in (run_experiment(spec), run_experiment(spec, ensemble_size=2)):
            for row in table.rows:
                assert row["terminated"] is False
                assert row["n_flips"] <= 50
