"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(args: list[str]) -> tuple[int, str]:
    """Run the CLI with captured stdout."""
    buffer = io.StringIO()
    code = main(args, out=buffer)
    return code, buffer.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_reports_thresholds_and_regime(self):
        code, output = run_cli(["info", "--tau", "0.45", "--horizon", "2"])
        assert code == 0
        assert "tau1" in output
        assert "exponential_monochromatic" in output
        assert "a(tau)" in output
        assert "unhappy probability" in output

    def test_static_tau_omits_exponents(self):
        code, output = run_cli(["info", "--tau", "0.1"])
        assert code == 0
        assert "static" in output
        assert "a(tau)" not in output


class TestSimulate:
    def test_runs_and_reports_metrics(self, tmp_path):
        csv_path = tmp_path / "run.csv"
        code, output = run_cli(
            [
                "simulate",
                "--side", "30",
                "--horizon", "2",
                "--tau", "0.45",
                "--seed", "3",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert "terminated=True" in output
        assert "final_local_homogeneity" in output
        assert csv_path.exists()

    def test_ascii_rendering(self):
        code, output = run_cli(
            ["simulate", "--side", "24", "--horizon", "1", "--tau", "0.4", "--ascii"]
        )
        assert code == 0
        assert "#" in output or "." in output

    def test_max_flips_budget(self):
        code, output = run_cli(
            [
                "simulate",
                "--side", "30",
                "--horizon", "2",
                "--tau", "0.45",
                "--max-flips", "5",
            ]
        )
        assert code == 0
        assert "flips=5" in output
        assert "terminated=False" in output


class TestSimulateVariants:
    BASE_ARGS = [
        "simulate",
        "--side", "20",
        "--horizon", "1",
        "--tau", "0.4",
        "--seed", "2",
    ]

    def test_two_sided_variant_runs_with_max_steps(self):
        code, output = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--max-steps", "50"]
        )
        assert code == 0
        assert "variant=two_sided[tau_high=0.8000]" in output
        # A 50-step budget cannot exhaust a 400-site grid's unhappiness:
        # the flag must report the honest outcome.
        assert "terminated=False" in output

    def test_variant_gets_default_step_budget(self):
        # No --max-steps: the CLI must cap the non-terminating variants
        # itself instead of hanging.
        code, output = run_cli(self.BASE_ARGS + ["--variant", "two-sided"])
        assert code == 0
        assert "terminated=" in output

    def test_asymmetric_variant_runs(self):
        code, output = run_cli(
            self.BASE_ARGS + ["--variant", "asymmetric", "--tau-minus", "0.3"]
        )
        assert code == 0
        assert "variant=asymmetric[tau_minus=0.3000]" in output

    def test_base_variant_unbudgeted_run_reports_termination(self):
        code, output = run_cli(self.BASE_ARGS)
        assert code == 0
        assert "terminated=True" in output

    def test_inapplicable_variant_parameter_rejected(self):
        # Exactly the sweep subcommand's rejection rules.
        code, _ = run_cli(self.BASE_ARGS + ["--tau-high", "0.9"])
        assert code == 2
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "asymmetric", "--tau-high", "0.9"]
        )
        assert code == 2
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-minus", "0.2"]
        )
        assert code == 2

    def test_tau_high_below_tau_rejected(self):
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-high", "0.3"]
        )
        assert code == 2

    def test_invalid_tau_high_rejected(self):
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-high", "1.4"]
        )
        assert code == 2

    def test_nonpositive_max_steps_rejected(self):
        code, _ = run_cli(self.BASE_ARGS + ["--max-steps", "0"])
        assert code == 2


class TestSweep:
    def test_sweep_with_explicit_taus(self, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code, output = run_cli(
            [
                "sweep",
                "--horizon", "1",
                "--taus", "0.35,0.45",
                "--replicates", "2",
                "--side", "24",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert "0.35" in output and "0.45" in output
        assert csv_path.exists()
        assert csv_path.read_text().count("\n") >= 3

    def test_bad_taus_returns_error_code(self):
        code, _ = run_cli(["sweep", "--taus", "0.4,banana", "--horizon", "1"])
        assert code == 2

    def test_workers_and_ensemble_flags(self):
        code, output = run_cli(
            [
                "sweep",
                "--horizon", "1",
                "--taus", "0.4,0.45",
                "--replicates", "2",
                "--side", "20",
                "--workers", "2",
                "--ensemble", "2",
            ]
        )
        assert code == 0
        assert "workers=2, ensemble=2" in output
        assert "0.45" in output

    def test_execution_flags_match_serial_aggregates(self, tmp_path):
        """The vectorized/parallel path writes the same aggregates as serial."""
        args = [
            "sweep",
            "--horizon", "1",
            "--taus", "0.4",
            "--replicates", "2",
            "--side", "20",
        ]
        serial_csv = tmp_path / "serial.csv"
        fast_csv = tmp_path / "fast.csv"
        code, _ = run_cli(args + ["--csv", str(serial_csv)])
        assert code == 0
        code, _ = run_cli(
            args + ["--csv", str(fast_csv), "--workers", "2", "--ensemble", "2"]
        )
        assert code == 0
        assert serial_csv.read_text() == fast_csv.read_text()

    def test_nonpositive_workers_rejected(self):
        code, _ = run_cli(
            ["sweep", "--taus", "0.4", "--horizon", "1", "--side", "20", "--workers", "0"]
        )
        assert code == 2


class TestSweepTrajectory:
    def test_record_trajectory_adds_aggregated_columns(self):
        code, output = run_cli(
            [
                "sweep",
                "--horizon",
                "1",
                "--taus",
                "0.4",
                "--replicates",
                "2",
                "--side",
                "12",
                "--record-trajectory",
            ]
        )
        assert code == 0
        assert "traj_energy_gain_mean" in output
        assert "traj_energy_monotone_mean" in output

    def test_invalid_record_every_rejected(self):
        code, _ = run_cli(
            ["sweep", "--taus", "0.4", "--record-every", "0"]
        )
        assert code == 2


class TestSweepVariants:
    BASE_ARGS = [
        "sweep",
        "--horizon", "1",
        "--taus", "0.4,0.45",
        "--replicates", "2",
        "--side", "20",
    ]

    def test_two_sided_variant_runs_with_default_budget(self):
        code, output = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-high", "0.8"]
        )
        assert code == 0
        assert "variant=two_sided[tau_high=0.8000]" in output

    def test_asymmetric_variant_runs(self):
        code, output = run_cli(
            self.BASE_ARGS + ["--variant", "asymmetric", "--tau-minus", "0.3"]
        )
        assert code == 0
        assert "variant=asymmetric[tau_minus=0.3000]" in output

    def test_variant_flags_compose_with_execution_flags(self, tmp_path):
        """Variant sweeps produce identical aggregates on every engine."""
        args = self.BASE_ARGS + ["--variant", "asymmetric", "--tau-minus", "0.3"]
        serial_csv = tmp_path / "serial.csv"
        fast_csv = tmp_path / "fast.csv"
        code, _ = run_cli(args + ["--csv", str(serial_csv)])
        assert code == 0
        code, _ = run_cli(
            args + ["--csv", str(fast_csv), "--workers", "2", "--ensemble", "2"]
        )
        assert code == 0
        assert serial_csv.read_text() == fast_csv.read_text()

    def test_tau_high_below_swept_taus_rejected(self):
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-high", "0.3"]
        )
        assert code == 2

    def test_invalid_tau_high_rejected(self):
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-high", "1.4"]
        )
        assert code == 2

    def test_nonpositive_max_steps_rejected(self):
        code, _ = run_cli(self.BASE_ARGS + ["--max-steps", "0"])
        assert code == 2

    def test_inapplicable_variant_parameter_rejected(self):
        # Passing the wrong variant's knob is a mistake, not a no-op.
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "asymmetric", "--tau-high", "0.9"]
        )
        assert code == 2
        code, _ = run_cli(
            self.BASE_ARGS + ["--variant", "two-sided", "--tau-minus", "0.2"]
        )
        assert code == 2
        code, _ = run_cli(self.BASE_ARGS + ["--tau-high", "0.9"])
        assert code == 2

    def test_variant_defaults_apply_without_explicit_parameters(self):
        code, output = run_cli(self.BASE_ARGS + ["--variant", "two-sided"])
        assert code == 0
        assert "variant=two_sided[tau_high=0.8000]" in output
        code, output = run_cli(self.BASE_ARGS + ["--variant", "asymmetric"])
        assert code == 0
        assert "variant=asymmetric[tau_minus=0.3000]" in output

    def test_unknown_variant_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--variant", "sideways"])


class TestCheckpointCommand:
    """``repro checkpoint verify|repair`` audit and repair sweep stores."""

    def _make_store(self, tmp_path):
        from repro.core.config import ModelConfig
        from repro.experiments.parallel import run_sweep_parallel
        from repro.experiments.spec import SweepSpec

        sweep = SweepSpec(
            name="cli-store",
            base_config=ModelConfig.square(side=10, horizon=1, tau=0.3),
            taus=[0.3, 0.4],
            n_replicates=1,
            seed=5,
        )
        directory = tmp_path / "store"
        run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        return directory

    def test_verify_healthy_store_exits_zero_with_json_report(self, tmp_path):
        import json

        directory = self._make_store(tmp_path)
        code, output = run_cli(["checkpoint", "verify", str(directory)])
        assert code == 0
        report = json.loads(output)
        assert report["ok"] is True
        assert report["records"]["valid"] == 2

    def test_verify_damaged_store_exits_one(self, tmp_path):
        import json

        directory = self._make_store(tmp_path)
        metrics = directory / "metrics.jsonl"
        metrics.write_bytes(metrics.read_bytes()[:-20])  # torn tail
        code, output = run_cli(["checkpoint", "verify", str(directory)])
        assert code == 1
        report = json.loads(output)
        assert report["ok"] is False
        assert [p["kind"] for p in report["problems"]] == ["torn-tail"]

    def test_repair_truncates_and_reports(self, tmp_path):
        import json

        directory = self._make_store(tmp_path)
        metrics = directory / "metrics.jsonl"
        metrics.write_bytes(metrics.read_bytes()[:-20])
        code, output = run_cli(["checkpoint", "repair", str(directory)])
        assert code == 0
        report = json.loads(output)
        assert report["repair"]["performed"] is True
        assert report["repair"]["bytes_dropped"] > 0
        code, _ = run_cli(["checkpoint", "verify", str(directory)])
        assert code == 0

    def test_checkpoint_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["checkpoint"])


class TestSweepSupervisorFlags:
    """--retries / --cell-timeout / --on-error reach the supervisor."""

    BASE_ARGS = [
        "sweep",
        "--taus",
        "0.35",
        "--replicates",
        "1",
        "--side",
        "10",
        "--horizon",
        "1",
    ]

    def test_supervised_flags_accepted_and_sweep_runs(self):
        code, output = run_cli(
            self.BASE_ARGS
            + ["--retries", "2", "--on-error", "skip", "--cell-timeout", "120"]
        )
        assert code == 0
        assert "tau" in output

    def test_invalid_on_error_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                self.BASE_ARGS + ["--on-error", "explode"]
            )


class TestServingCommands:
    """The serving subcommands: summarize, query, serve (reproduce has its
    own module, ``test_serving_reproduce.py``)."""

    @pytest.fixture
    def store(self, tmp_path):
        """A tiny completed checkpointed sweep to serve."""
        directory = tmp_path / "store"
        code, _ = run_cli(
            [
                "sweep",
                "--horizon", "1",
                "--side", "10",
                "--taus", "0.3,0.45",
                "--replicates", "1",
                "--seed", "9",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0
        return directory

    def test_sweep_checkpoint_writes_summary(self, store):
        assert (store / "summary.json").exists()

    def test_summarize_rewrites_offline(self, store):
        import json

        original = (store / "summary.json").read_bytes()
        (store / "summary.json").unlink()
        code, output = run_cli(["summarize", str(store)])
        assert code == 0
        assert "2/2 cell(s) summarized" in output
        assert (store / "summary.json").read_bytes() == original
        assert json.loads(original)["complete"] is True

    def test_summarize_empty_directory_exits_one(self, tmp_path, capsys):
        code, _ = run_cli(["summarize", str(tmp_path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_exact_point(self, store):
        import json

        code, output = run_cli(
            ["query", "tau=0.3", "--store", str(store)]
        )
        assert code == 0
        answer = json.loads(output)
        assert answer["source"] == "exact"
        assert answer["point"]["w"] == 1.0  # pinned by the store
        assert "final_unhappy_fraction" in answer["metrics"]

    def test_query_nearest_with_interpolate_flag(self, store):
        import json

        code, output = run_cli(
            ["query", "tau=0.37", "--store", str(store), "--interpolate"]
        )
        assert code == 0
        answer = json.loads(output)
        # single rho/w: tau-only grid has no (rho, tau) plane to
        # interpolate, so the engine falls back to the nearest cell
        assert answer["source"] in ("interpolated", "nearest")

    def test_query_miss_exits_one(self, store, capsys):
        code, _ = run_cli(
            [
                "query", "tau=0.9", "--store", str(store),
                "--max-distance", "0.1",
            ]
        )
        assert code == 1
        assert "miss:" in capsys.readouterr().err

    def test_query_malformed_exits_two(self, store, capsys):
        code, _ = run_cli(["query", "sigma=1", "--store", str(store)])
        assert code == 2
        assert "unknown query axis" in capsys.readouterr().err

    def test_query_missing_store_exits_two(self, tmp_path, capsys):
        code, _ = run_cli(
            ["query", "tau=0.3", "--store", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_missing_store_before_binding(self, tmp_path, capsys):
        code, _ = run_cli(
            ["serve", "--store", str(tmp_path / "nope"), "--port", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_parser_accepts_policy_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--store", "s", "--port", "0",
                "--interpolate", "--on-miss", "compute",
                "--max-distance", "1.5", "--cache-size", "16",
            ]
        )
        assert args.command == "serve"
        assert args.on_miss == "compute"
        assert args.cache_size == 16

    def test_serve_parser_accepts_lifecycle_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--store", "a", "--store", "b", "--port", "0",
                "--allow-damaged", "--max-compute", "4",
                "--refresh-interval", "2.5", "--drain-timeout", "3",
            ]
        )
        assert args.store == ["a", "b"]
        assert args.allow_damaged is True
        assert args.max_compute == 4
        assert args.refresh_interval == 2.5
        assert args.drain_timeout == 3.0

    def test_query_repeated_store_flags_federate(self, store, tmp_path):
        import json
        import shutil

        second = tmp_path / "second"
        shutil.copytree(store, second)
        code, output = run_cli(
            [
                "query", "tau=0.3",
                "--store", str(store), "--store", str(second),
            ]
        )
        assert code == 0
        answer = json.loads(output)
        assert answer["source"] == "exact"
        # federated answers are tagged with the owning store; identical
        # cells tie-break on the store tag, not registration order
        assert answer["cells"][0]["store"] in (str(store), str(second))

    def test_query_duplicate_store_flags_rejected(self, store, capsys):
        code, _ = run_cli(
            ["query", "tau=0.3", "--store", str(store), "--store", str(store)]
        )
        assert code == 2
        assert "duplicate" in capsys.readouterr().err


def _corrupt_second_record(store):
    """Bit-flip a digit inside the second metrics record (CRC mismatch)."""
    metrics = store / "metrics.jsonl"
    lines = metrics.read_bytes().splitlines(keepends=True)
    assert len(lines) >= 2
    target = lines[1]
    for index, byte in enumerate(target):
        if chr(byte).isdigit():
            replacement = b"1" if chr(byte) != "1" else b"2"
            lines[1] = target[:index] + replacement + target[index + 1 :]
            break
    metrics.write_bytes(b"".join(lines))


class TestStartupVerification:
    """query/serve audit their stores at startup (ISSUE 10 satellite)."""

    @pytest.fixture
    def damaged(self, tmp_path):
        """A checkpointed store whose second record fails its CRC."""
        directory = tmp_path / "damaged"
        code, _ = run_cli(
            [
                "sweep",
                "--horizon", "1",
                "--side", "10",
                "--taus", "0.3,0.45",
                "--replicates", "1",
                "--seed", "9",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0
        _corrupt_second_record(directory)
        return directory

    def test_query_refuses_damaged_store_with_named_damage(
        self, damaged, capsys
    ):
        code, _ = run_cli(["query", "tau=0.3", "--store", str(damaged)])
        assert code == 1
        err = capsys.readouterr().err
        assert "failed its integrity audit" in err
        assert "crc-mismatch" in err
        assert "--allow-damaged" in err

    def test_serve_refuses_damaged_store_before_binding(
        self, damaged, capsys
    ):
        code, _ = run_cli(
            ["serve", "--store", str(damaged), "--port", "0"]
        )
        assert code == 1
        assert "failed its integrity audit" in capsys.readouterr().err

    def test_allow_damaged_serves_only_verified_clean_cells(
        self, damaged, capsys
    ):
        import json

        # the intact first record still answers...
        code, output = run_cli(
            ["query", "tau=0.3", "--store", str(damaged), "--allow-damaged"]
        )
        assert code == 0
        assert json.loads(output)["source"] == "exact"
        assert "verified-clean" in capsys.readouterr().err

        # ...but the corrupt record's cell is gone, even though the on-disk
        # summary.json (written before the damage) still lists it
        code, _ = run_cli(
            [
                "query", "tau=0.45", "--store", str(damaged),
                "--allow-damaged", "--max-distance", "0.01",
            ]
        )
        assert code == 1
        assert "miss:" in capsys.readouterr().err

    def test_clean_store_passes_the_audit_silently(self, tmp_path, capsys):
        directory = tmp_path / "clean"
        code, _ = run_cli(
            [
                "sweep", "--horizon", "1", "--side", "10", "--taus", "0.3",
                "--replicates", "1", "--seed", "2",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code, _ = run_cli(["query", "tau=0.3", "--store", str(directory)])
        assert code == 0
        assert "WARNING" not in capsys.readouterr().err


class TestServeDrain:
    """End-to-end SIGTERM drain of a real `repro serve` process."""

    def test_sigterm_drains_gracefully(self, tmp_path):
        import json
        import os
        import re
        import signal
        import subprocess
        import sys
        import threading
        import urllib.error
        import urllib.request

        directory = tmp_path / "store"
        code, _ = run_cli(
            [
                "sweep", "--horizon", "1", "--side", "10", "--taus",
                "0.3,0.45", "--replicates", "1", "--seed", "9",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0

        import repro

        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_root, env.get("PYTHONPATH", "")) if part
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(directory), "--port", "0",
                "--on-miss", "compute", "--max-distance", "0.01",
                "--drain-timeout", "30",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"

            def get_json(path, timeout=30):
                with urllib.request.urlopen(
                    f"{base}{path}", timeout=timeout
                ) as response:
                    return response.status, json.loads(response.read())

            assert get_json("/readyz") == (200, {"ready": True})

            # a compute-on-miss request is slow enough to still be in
            # flight when the signal lands
            inflight_result = {}

            def slow_request():
                inflight_result["value"] = get_json("/query?tau=0.5")

            worker = threading.Thread(target=slow_request)
            worker.start()
            deadline = 50
            for _ in range(deadline):
                if not worker.is_alive():
                    break  # completed before the signal: still a valid run
                try:
                    _, stats = get_json("/stats", timeout=5)
                except (OSError, urllib.error.URLError):
                    continue
                if stats["service"]["inflight_requests"] >= 2:
                    break  # the slow request + this /stats probe

            process.send_signal(signal.SIGTERM)
            worker.join(timeout=60)
            assert not worker.is_alive()
            status, body = inflight_result["value"]
            assert status == 200  # in-flight work finished during drain
            assert body["source"] == "computed"

            # new connections are refused (socket closed) or told 503
            try:
                status, _ = get_json("/query?tau=0.3", timeout=5)
                assert status == 503
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
            except (OSError, urllib.error.URLError):
                pass  # connection refused: the listener is gone

            assert process.wait(timeout=60) == 0
            remaining = process.stdout.read()
            assert "draining" in remaining
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
