"""Cross-consistency tests: variant ensembles must match scalar variant runs.

PR 1's contract — replica ``r`` of an ensemble reproduces the scalar run
seeded with ``replica_seeds[r]`` bit for bit — is extended here to the
Section I.A/V model variants: :class:`TwoSidedEnsemble` against
``Simulation(..., variant=VariantSpec.two_sided(...))`` and
:class:`AsymmetricEnsemble` against the asymmetric scalar runs, across
schedulers and both tau bookkeeping regimes.  Budgets matter more here than
for the base model (the two-sided variant has no Lyapunov function), so the
suite also locks down per-replica step budgets and termination reporting.
"""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.simulation import Simulation
from repro.core.variants import (
    AsymmetricEnsemble,
    TwoSidedEnsemble,
    VariantSpec,
)
from repro.errors import ConfigurationError
from repro.types import SchedulerKind, VariantKind

SCHEDULERS = [SchedulerKind.CONTINUOUS, SchedulerKind.DISCRETE]
#: One intolerance at or below 1/2 and one above — the two bookkeeping
#: regimes of the flippability rule (see test_core_ensemble).
TAUS = [0.35, 0.55]


def scalar_variant_reference(
    config: ModelConfig,
    variant: VariantSpec,
    seed: int,
    max_flips=None,
    max_steps=None,
):
    """The scalar variant run an ensemble replica with this seed must match."""
    simulation = Simulation(config, seed=seed, variant=variant)
    return simulation.run(max_flips=max_flips, max_steps=max_steps)


def assert_replicas_match(ensemble, result, variant, max_flips=None, max_steps=None):
    """Every replica equals its scalar variant twin, field by field."""
    for replica, seed in enumerate(ensemble.replica_seeds):
        reference = scalar_variant_reference(
            ensemble.config, variant, seed, max_flips=max_flips, max_steps=max_steps
        )
        assert np.array_equal(
            reference.final_spins, result.final_spins[replica]
        ), f"final grids diverge for replica {replica}"
        assert reference.n_flips == result.n_flips[replica]
        assert reference.n_steps == result.n_steps[replica]
        assert reference.terminated == bool(result.terminated[replica])
        assert reference.final_time == result.final_time[replica]


class TestTwoSidedEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_replicas_match_scalar_runs_exactly(self, scheduler, tau):
        config = ModelConfig.square(side=18, horizon=2, tau=tau, scheduler=scheduler)
        variant = VariantSpec.two_sided(0.8)
        budget = 10 * config.n_sites
        ensemble = variant.make_ensemble(config, n_replicas=3, seed=42)
        assert isinstance(ensemble, TwoSidedEnsemble)
        result = ensemble.run(max_steps=budget)
        assert_replicas_match(ensemble, result, variant, max_steps=budget)

    def test_flip_budget_matches_scalar_runs(self):
        config = ModelConfig.square(side=18, horizon=2, tau=0.45)
        variant = VariantSpec.two_sided(0.75)
        ensemble = variant.make_ensemble(config, n_replicas=3, seed=5)
        result = ensemble.run(max_flips=40)
        assert_replicas_match(ensemble, result, variant, max_flips=40)
        assert (result.n_flips <= 40).all()

    def test_trajectory_replicas_match_scalar_endpoints(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.45)
        variant = VariantSpec.two_sided(0.9)
        budget = 5 * config.n_sites
        ensemble = variant.make_ensemble(config, n_replicas=3, seed=17)
        result = ensemble.run(max_steps=budget, record_trajectory=True)
        for replica, seed in enumerate(ensemble.replica_seeds):
            scalar = Simulation(config, seed=seed, variant=variant).run(
                max_steps=budget, record_trajectory=True, record_every=1
            )
            view = result.trajectory.replica(replica)
            assert view.energy[0] == scalar.trajectory.energy[0]
            assert view.energy[-1] == scalar.trajectory.energy[-1]
            assert view.n_flips[-1] == scalar.n_flips
            assert view.times[-1] == scalar.final_time
            assert view.n_unhappy[-1] == scalar.trajectory.n_unhappy[-1]
            assert view.magnetization[-1] == scalar.trajectory.magnetization[-1]

    def test_tau_high_below_tau_rejected(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.6)
        with pytest.raises(ConfigurationError):
            TwoSidedEnsemble(config, tau_high=0.4, n_replicas=2, seed=1)

    def test_reduces_to_base_ensemble_when_upper_bound_is_one(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.4)
        base = VariantSpec.base().make_ensemble(config, n_replicas=2, seed=9)
        capped = VariantSpec.two_sided(1.0).make_ensemble(config, n_replicas=2, seed=9)
        base_result = base.run()
        capped_result = capped.run(max_steps=50 * config.n_sites)
        assert np.array_equal(base_result.final_spins, capped_result.final_spins)
        assert np.array_equal(base_result.n_flips, capped_result.n_flips)
        assert capped_result.all_terminated


class TestAsymmetricEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_replicas_match_scalar_runs_exactly(self, scheduler, tau):
        config = ModelConfig.square(side=18, horizon=2, tau=tau, scheduler=scheduler)
        variant = VariantSpec.asymmetric(0.3)
        budget = 20 * config.n_sites
        ensemble = variant.make_ensemble(config, n_replicas=3, seed=42)
        assert isinstance(ensemble, AsymmetricEnsemble)
        result = ensemble.run(max_steps=budget)
        assert_replicas_match(ensemble, result, variant, max_steps=budget)

    def test_equal_intolerances_match_base_ensemble(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.45)
        base = VariantSpec.base().make_ensemble(config, n_replicas=3, seed=23)
        equal = VariantSpec.asymmetric(config.tau).make_ensemble(
            config, n_replicas=3, seed=23
        )
        base_result = base.run()
        equal_result = equal.run()
        assert np.array_equal(base_result.final_spins, equal_result.final_spins)
        assert np.array_equal(base_result.n_flips, equal_result.n_flips)
        assert np.array_equal(base_result.final_time, equal_result.final_time)

    def test_masks_match_fresh_scalar_variant_state(self):
        config = ModelConfig.square(side=18, horizon=2, tau=0.55)
        variant = VariantSpec.asymmetric(0.35)
        ensemble = variant.make_ensemble(config, n_replicas=3, seed=21)
        ensemble.run(max_flips=50)
        for replica in range(3):
            reference = variant.make_state(config)
            reference.apply_spin_array(ensemble.replica_spins(replica))
            assert np.array_equal(ensemble.happy_mask(replica), reference.happy_mask())
            assert np.array_equal(
                ensemble.flippable_mask(replica), reference.flippable_mask()
            )
            assert ensemble.unhappy_counts()[replica] == reference.n_unhappy


class TestStepBudgets:
    """Two-sided ensembles must honour budgets and report non-termination."""

    def test_step_budget_is_honoured_per_replica(self):
        # Natural termination of this configuration takes ~200 steps per
        # replica (see the equivalence tests); a budget of 50 must cut every
        # replica short and be reported as non-termination, not hang.
        config = ModelConfig.square(side=24, horizon=2, tau=0.45)
        ensemble = TwoSidedEnsemble(config, tau_high=0.8, n_replicas=4, seed=11)
        result = ensemble.run(max_steps=50)
        assert (result.n_steps <= 50).all()
        assert not result.terminated.any()
        assert not result.all_terminated
        assert (ensemble.flippable_counts() > 0).all()

    def test_resuming_after_budget_continues_each_replica(self):
        config = ModelConfig.square(side=24, horizon=2, tau=0.45)
        ensemble = TwoSidedEnsemble(config, tau_high=0.8, n_replicas=2, seed=11)
        first = ensemble.run(max_steps=50)
        second = ensemble.run(max_steps=50)
        # Budgets are per run call; counters accumulate across calls.
        assert (first.n_steps == 50).all()
        assert (second.n_steps <= 50).all()
        assert (ensemble.n_steps >= first.n_steps).all()

    def test_terminated_mask_is_per_replica(self):
        # With a generous budget every replica of this configuration settles;
        # the mask must agree with the per-replica flippable sets.
        config = ModelConfig.square(side=16, horizon=1, tau=0.45)
        ensemble = TwoSidedEnsemble(config, tau_high=0.9, n_replicas=3, seed=7)
        result = ensemble.run(max_steps=50 * config.n_sites)
        for replica in range(3):
            expected = ensemble.flippable_counts()[replica] == 0
            assert bool(result.terminated[replica]) == expected


class TestVariantSpecValidation:
    def test_kind_round_trips_through_pickle(self):
        import pickle

        for variant in (
            VariantSpec.base(),
            VariantSpec.two_sided(0.8),
            VariantSpec.asymmetric(0.3),
        ):
            assert pickle.loads(pickle.dumps(variant)) == variant

    def test_two_sided_requires_tau_high(self):
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.TWO_SIDED)

    def test_asymmetric_requires_tau_minus(self):
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.ASYMMETRIC)

    def test_base_rejects_variant_parameters(self):
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.BASE, tau_high=0.8)
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.BASE, tau_minus=0.3)

    def test_cross_variant_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.TWO_SIDED, tau_high=0.8, tau_minus=0.3)
        with pytest.raises(ConfigurationError):
            VariantSpec(kind=VariantKind.ASYMMETRIC, tau_minus=0.3, tau_high=0.8)

    def test_guarantees_termination_only_for_base(self):
        assert VariantSpec.base().guarantees_termination
        assert not VariantSpec.two_sided(0.8).guarantees_termination
        assert not VariantSpec.asymmetric(0.3).guarantees_termination

    def test_describe_names_parameters(self):
        assert VariantSpec.base().describe() == "base"
        assert "tau_high=0.8" in VariantSpec.two_sided(0.8).describe()
        assert "tau_minus=0.3" in VariantSpec.asymmetric(0.3).describe()
