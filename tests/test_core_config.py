"""Tests for the model configuration."""

import math

import pytest

from repro.core.config import ModelConfig, default_figure1_config
from repro.errors import ConfigurationError
from repro.types import FlipRule, SchedulerKind


class TestConstruction:
    def test_square_helper(self):
        config = ModelConfig.square(side=20, horizon=2, tau=0.4)
        assert config.shape == (20, 20)
        assert config.n_sites == 400

    def test_rectangular(self):
        config = ModelConfig(n_rows=10, n_cols=15, horizon=1, tau=0.3)
        assert config.shape == (10, 15)
        assert config.n_sites == 150

    def test_derived_neighborhood_size(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.5)
        assert config.neighborhood_agents == 25

    def test_threshold_rounds_up(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        assert config.happiness_threshold == math.ceil(0.45 * 25)
        assert config.happiness_threshold == 12

    def test_effective_tau_at_least_tau(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        assert config.effective_tau >= config.tau
        assert config.effective_tau == pytest.approx(12 / 25)

    def test_tau_prime_formula(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.48)
        n = config.neighborhood_agents
        assert config.tau_prime == pytest.approx((0.48 * n - 2) / (n - 1))

    def test_defaults_match_paper(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        assert config.density == 0.5
        assert config.scheduler is SchedulerKind.CONTINUOUS
        assert config.flip_rule is FlipRule.ONLY_IF_HAPPY

    def test_frozen(self):
        config = ModelConfig.square(side=20, horizon=1, tau=0.4)
        with pytest.raises(AttributeError):
            config.tau = 0.5

    def test_describe_mentions_parameters(self):
        text = ModelConfig.square(side=20, horizon=2, tau=0.42).describe()
        assert "w=2" in text
        assert "0.42" in text


class TestValidation:
    def test_rejects_tau_above_one(self):
        with pytest.raises(ConfigurationError):
            ModelConfig.square(side=20, horizon=1, tau=1.2)

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            ModelConfig.square(side=20, horizon=1, tau=-0.1)

    def test_rejects_zero_horizon(self):
        with pytest.raises(ConfigurationError):
            ModelConfig.square(side=20, horizon=0, tau=0.4)

    def test_rejects_horizon_too_large_for_grid(self):
        with pytest.raises(ConfigurationError):
            ModelConfig.square(side=5, horizon=3, tau=0.4)

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            ModelConfig.square(side=20, horizon=1, tau=0.4, density=1.5)

    def test_rejects_stringly_scheduler(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(
                n_rows=20, n_cols=20, horizon=1, tau=0.4, scheduler="continuous"
            )

    def test_rejects_stringly_flip_rule(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(n_rows=20, n_cols=20, horizon=1, tau=0.4, flip_rule="always")


class TestWithers:
    def test_with_tau(self):
        config = ModelConfig.square(side=20, horizon=2, tau=0.4)
        other = config.with_tau(0.45)
        assert other.tau == 0.45
        assert other.horizon == config.horizon
        assert config.tau == 0.4  # original untouched

    def test_with_horizon_updates_derived(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.4)
        other = config.with_horizon(3)
        assert other.neighborhood_agents == 49
        assert other.happiness_threshold == math.ceil(0.4 * 49)

    def test_with_density(self):
        config = ModelConfig.square(side=20, horizon=2, tau=0.4)
        assert config.with_density(0.7).density == 0.7


class TestFigure1Config:
    def test_full_scale_matches_paper(self):
        config = default_figure1_config()
        assert config.shape == (1000, 1000)
        assert config.neighborhood_agents == 441
        assert config.tau == pytest.approx(0.42)

    def test_scaled_version_keeps_parameters(self):
        config = default_figure1_config(scale=0.1)
        assert config.n_rows == 100
        assert config.horizon == 10
        assert config.tau == pytest.approx(0.42)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            default_figure1_config(scale=0.0)
        with pytest.raises(ConfigurationError):
            default_figure1_config(scale=2.0)
