"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    bootstrap_confidence_interval,
    growth_rate_fit,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.ci_low < stats.mean < stats.ci_high

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max", "ci_low", "ci_high"}


class TestMeanConfidenceInterval:
    def test_interval_brackets_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert low <= mean <= high

    def test_wider_z_gives_wider_interval(self):
        _, low1, high1 = mean_confidence_interval([1.0, 2.0, 3.0], z=1.0)
        _, low2, high2 = mean_confidence_interval([1.0, 2.0, 3.0], z=3.0)
        assert (high2 - low2) > (high1 - low1)


class TestBootstrap:
    def test_interval_contains_mean_of_constant_data(self):
        mean, low, high = bootstrap_confidence_interval([2.0] * 10, seed=0)
        assert mean == low == high == 2.0

    def test_deterministic_given_seed(self):
        a = bootstrap_confidence_interval([1.0, 5.0, 2.0, 8.0], seed=3)
        b = bootstrap_confidence_interval([1.0, 5.0, 2.0, 8.0], seed=3)
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0, 2.0], confidence=1.5)


class TestGrowthRateFit:
    def test_exact_exponential_recovered(self):
        xs = [10, 20, 30, 40]
        ys = [2.0 ** (0.3 * x) for x in xs]
        fit = growth_rate_fit(xs, ys)
        assert fit.rate == pytest.approx(0.3, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_log2(self):
        fit = growth_rate_fit([1, 2, 3], [2.0, 4.0, 8.0])
        assert fit.predict_log2(4) == pytest.approx(4.0, abs=1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            growth_rate_fit([1, 2], [1.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            growth_rate_fit([1], [2.0])

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            growth_rate_fit([1, 2], [1.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(
        rate=st.floats(min_value=-0.5, max_value=0.5),
        intercept=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_recovers_arbitrary_exact_fits(self, rate, intercept):
        xs = np.array([5.0, 10.0, 15.0, 20.0])
        ys = 2.0 ** (rate * xs + intercept)
        fit = growth_rate_fit(xs, ys)
        assert fit.rate == pytest.approx(rate, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-6)
