"""Tests for the result table."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.results import ResultTable


@pytest.fixture
def table() -> ResultTable:
    table = ResultTable()
    table.add_row(tau=0.4, replicate=0, size=10.0)
    table.add_row(tau=0.4, replicate=1, size=14.0)
    table.add_row(tau=0.45, replicate=0, size=30.0)
    return table


class TestBasics:
    def test_length_and_iteration(self, table):
        assert len(table) == 3
        assert len(list(table)) == 3
        assert table[0]["tau"] == 0.4

    def test_rows_are_copies(self, table):
        rows = table.rows
        rows[0]["tau"] = 99
        assert table[0]["tau"] == 0.4

    def test_extend_and_construct_from_rows(self, table):
        other = ResultTable(table.rows)
        other.extend([{"tau": 0.5, "replicate": 0, "size": 1.0}])
        assert len(other) == 4
        assert len(table) == 3

    def test_columns_order(self, table):
        assert table.columns() == ["tau", "replicate", "size"]

    def test_column_and_numeric_column(self, table):
        assert table.column("size") == [10.0, 14.0, 30.0]
        assert table.numeric_column("size").sum() == pytest.approx(54.0)

    def test_missing_column_rejected(self, table):
        with pytest.raises(ExperimentError):
            table.numeric_column("missing")

    def test_filter(self, table):
        subset = table.filter(lambda row: row["tau"] == 0.4)
        assert len(subset) == 2


class TestAggregation:
    def test_group_summary_means(self, table):
        summary = table.group_summary(["tau"], ["size"])
        assert len(summary) == 2
        first = summary[0]
        assert first["tau"] == 0.4
        assert first["size_mean"] == pytest.approx(12.0)
        assert first["n"] == 2
        assert "size_ci_low" in first

    def test_group_summary_preserves_group_order(self, table):
        summary = table.group_summary(["tau"], ["size"])
        assert [row["tau"] for row in summary] == [0.4, 0.45]

    def test_empty_table_rejected(self):
        with pytest.raises(ExperimentError):
            ResultTable().group_summary(["tau"], ["size"])

    def test_missing_value_key_skipped(self, table):
        summary = table.group_summary(["tau"], ["absent"])
        assert "absent_mean" not in summary[0]


class TestExport:
    def test_to_csv(self, table, tmp_path):
        path = table.to_csv(tmp_path / "table.csv")
        content = path.read_text()
        assert "tau,replicate,size" in content
        assert content.count("\n") >= 4

    def test_to_markdown(self, table):
        markdown = table.to_markdown()
        assert markdown.startswith("| tau | replicate | size |")
