"""Hypothesis tests of the backends' ``apply_coded_ops`` ports.

Every flip-loop backend carries its own implementation of
:meth:`~repro.utils.indexset.BatchedIndexSet.apply_coded_ops` — interpreted
kernel, njit kernel, or C — and each must mutate the three storage arrays
*identically* to the reference method: same packed member order, same
position back-pointers, same counts.  The suite drives the reference and a
backend port over identical families and asserts the full storage state
matches element for element, across random op streams and the three edge
regimes the engine actually produces: an empty op stream (a round with no
flips), an all-sites-unhappy round (every site inserted into both families),
and a set-emptying round (every member removed).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backends.registry import available_backends, create_backend
from repro.utils.indexset import BatchedIndexSet

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every backend importable on this host, including the interpreted one.
BACKENDS = available_backends()

#: Rows per family half (the engine's replica count analogue).
N_ROWS = 3
#: Members per row (the engine's site count analogue).
CAPACITY = 11


def _family(masks: np.ndarray) -> BatchedIndexSet:
    """A ``(2 * N_ROWS, CAPACITY)`` family initialised from ``masks``."""
    sets = BatchedIndexSet(2 * N_ROWS, CAPACITY)
    sets.fill_from_masks(masks)
    return sets


def _storage_state(sets: BatchedIndexSet):
    """Copies of the three backing arrays, for exact comparison."""
    members, positions, counts = sets.storage()
    return members.copy(), positions.copy(), counts.copy()


def _assert_same_storage(reference: BatchedIndexSet, actual: BatchedIndexSet):
    """The two families' backing arrays must agree bit for bit.

    Comparing the raw storage (not just sorted memberships) pins the packed
    layout itself — the thing every subsequent RNG draw depends on.
    """
    ref_members, ref_positions, ref_counts = _storage_state(reference)
    act_members, act_positions, act_counts = _storage_state(actual)
    np.testing.assert_array_equal(ref_counts, act_counts)
    np.testing.assert_array_equal(ref_positions, act_positions)
    # Members past the packed count are stale storage; compare the live
    # prefixes only (the reference leaves different garbage than a port may).
    for row in range(2 * N_ROWS):
        count = int(ref_counts[row])
        np.testing.assert_array_equal(
            ref_members[row * CAPACITY : row * CAPACITY + count],
            act_members[row * CAPACITY : row * CAPACITY + count],
        )


def _apply_reference(sets: BatchedIndexSet, ops) -> None:
    rows, indices, toggled, members = ops
    sets.apply_coded_ops(
        list(rows), list(indices), list(toggled), list(members), N_ROWS
    )


def _apply_backend(name: str, sets: BatchedIndexSet, ops) -> None:
    rows, indices, toggled, members = ops
    create_backend(name).apply_coded_ops(
        sets, rows, indices, toggled, members, N_ROWS
    )


masks_strategy = st.integers(min_value=0, max_value=2**31 - 1).map(
    lambda seed: np.random.default_rng(seed).random((2 * N_ROWS, CAPACITY))
    < 0.5
)

ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_ROWS - 1),
        st.integers(min_value=0, max_value=CAPACITY - 1),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=40,
)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestCodedOpsBackends:
    @COMMON_SETTINGS
    @given(masks=masks_strategy, ops=ops_strategy)
    def test_random_op_streams_match_reference(self, backend_name, masks, ops):
        """Arbitrary coded-op streams leave identical storage everywhere."""
        columns = (
            tuple(op[0] for op in ops),
            tuple(op[1] for op in ops),
            tuple(op[2] for op in ops),
            tuple(op[3] for op in ops),
        )
        reference = _family(masks)
        actual = _family(masks)
        _apply_reference(reference, columns)
        _apply_backend(backend_name, actual, columns)
        _assert_same_storage(reference, actual)

    @COMMON_SETTINGS
    @given(masks=masks_strategy)
    def test_empty_op_stream_is_a_noop(self, backend_name, masks):
        """A flip-less round streams zero ops and must change nothing."""
        before = _family(masks)
        actual = _family(masks)
        _apply_backend(backend_name, actual, ((), (), (), ()))
        _assert_same_storage(before, actual)

    def test_all_sites_unhappy_round(self, backend_name):
        """Inserting every site into both family halves fills every row."""
        empty = np.zeros((2 * N_ROWS, CAPACITY), dtype=bool)
        ops = (
            tuple(
                row for row in range(N_ROWS) for _ in range(CAPACITY)
            ),
            tuple(
                index for _ in range(N_ROWS) for index in range(CAPACITY)
            ),
            (3,) * (N_ROWS * CAPACITY),
            (3,) * (N_ROWS * CAPACITY),
        )
        reference = _family(empty)
        actual = _family(empty)
        _apply_reference(reference, ops)
        _apply_backend(backend_name, actual, ops)
        _assert_same_storage(reference, actual)
        assert (actual.storage()[2] == CAPACITY).all()

    def test_set_emptying_round(self, backend_name):
        """Removing every member empties every row, layouts agreeing."""
        full = np.ones((2 * N_ROWS, CAPACITY), dtype=bool)
        ops = (
            tuple(
                row for row in range(N_ROWS) for _ in range(CAPACITY)
            ),
            tuple(
                index for _ in range(N_ROWS) for index in range(CAPACITY)
            ),
            (3,) * (N_ROWS * CAPACITY),
            (0,) * (N_ROWS * CAPACITY),
        )
        reference = _family(full)
        actual = _family(full)
        _apply_reference(reference, ops)
        _apply_backend(backend_name, actual, ops)
        _assert_same_storage(reference, actual)
        assert (actual.storage()[2] == 0).all()

    def test_redundant_ops_are_tolerated(self, backend_name):
        """Adding a present member / removing an absent one is a no-op."""
        masks = np.zeros((2 * N_ROWS, CAPACITY), dtype=bool)
        masks[0, 2] = True
        ops = (
            (0, 0, 0),
            (2, 2, 5),
            (3, 1, 1),
            (3, 0, 0),  # re-add present, then remove it; remove absent 5
        )
        reference = _family(masks)
        actual = _family(masks)
        _apply_reference(reference, ops)
        _apply_backend(backend_name, actual, ops)
        _assert_same_storage(reference, actual)
