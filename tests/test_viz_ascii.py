"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.viz.ascii_art import (
    downsample_majority,
    render_ascii,
    render_with_happiness,
    side_by_side,
)


class TestDownsample:
    def test_factor_one_is_copy(self):
        spins = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        out = downsample_majority(spins, 1)
        assert np.array_equal(out, spins)
        out[0, 0] = -1
        assert spins[0, 0] == 1

    def test_majority_vote(self):
        spins = np.ones((4, 4), dtype=np.int8)
        spins[:2, :2] = -1
        spins[0, 2] = -1
        out = downsample_majority(spins, 2)
        assert out[0, 0] == -1
        assert out[0, 1] == 1  # 3 plus vs 1 minus
        assert out.shape == (2, 2)

    def test_tie_resolves_to_plus(self):
        spins = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        assert downsample_majority(spins, 2)[0, 0] == 1

    def test_invalid_factor(self):
        with pytest.raises(AnalysisError):
            downsample_majority(np.ones((4, 4), dtype=np.int8), 0)

    def test_factor_larger_than_grid_rejected(self):
        with pytest.raises(AnalysisError):
            downsample_majority(np.ones((4, 4), dtype=np.int8), 5)


class TestRenderAscii:
    def test_glyphs_and_shape(self):
        spins = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        text = render_ascii(spins)
        assert text.splitlines() == ["#.", ".#"]

    def test_custom_glyphs(self):
        spins = np.array([[1, -1]], dtype=np.int8)
        assert render_ascii(spins, glyphs={1: "X", -1: "O"}) == "XO"

    def test_large_grid_downsampled(self):
        spins = np.ones((200, 200), dtype=np.int8)
        text = render_ascii(spins, max_side=50)
        lines = text.splitlines()
        assert len(lines) <= 50
        assert len(lines[0]) <= 50


class TestRenderWithHappiness:
    def test_four_glyphs(self):
        spins = np.array([[1, 1], [-1, -1]], dtype=np.int8)
        happy = np.array([[True, False], [True, False]])
        text = render_with_happiness(spins, happy)
        assert text.splitlines() == ["#+", ".-"]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            render_with_happiness(
                np.ones((2, 2), dtype=np.int8), np.ones((3, 3), dtype=bool)
            )

    def test_cropped_to_max_side(self):
        spins = np.ones((100, 100), dtype=np.int8)
        happy = np.ones((100, 100), dtype=bool)
        text = render_with_happiness(spins, happy, max_side=10)
        assert len(text.splitlines()) == 10


class TestSideBySide:
    def test_joins_lines(self):
        combined = side_by_side("ab\ncd", "XY\nZW", gap=2)
        assert combined.splitlines() == ["ab  XY", "cd  ZW"]

    def test_uneven_heights_padded(self):
        combined = side_by_side("ab", "XY\nZW")
        lines = combined.splitlines()
        assert len(lines) == 2
        assert lines[1].endswith("ZW")
