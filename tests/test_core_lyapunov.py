"""Tests for the Lyapunov / energy functions."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import (
    checkerboard_configuration,
    random_configuration,
    uniform_configuration,
)
from repro.core.lyapunov import (
    agreement_pairs,
    lyapunov_energy,
    max_energy,
    same_type_count_field,
)
from repro.core.neighborhood import neighborhood_size
from repro.core.state import ModelState
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=18, horizon=2, tau=0.45)


class TestEnergy:
    def test_monochromatic_grid_has_max_energy(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        assert lyapunov_energy(spins, config.horizon) == max_energy(
            config.n_rows, config.n_cols, config.horizon
        )

    def test_max_energy_value(self):
        assert max_energy(10, 10, 2) == 100 * 25

    def test_checkerboard_energy_formula(self, config):
        # On a checkerboard every agent agrees with the like-coloured cells of
        # its window; for horizon 2 that is 13 of 25 cells.
        spins = checkerboard_configuration(config).spins
        field = same_type_count_field(spins, 2)
        assert np.all(field == 13)

    def test_energy_between_bounds(self, config):
        spins = random_configuration(config, seed=0).spins
        energy = lyapunov_energy(spins, config.horizon)
        assert config.n_sites <= energy <= max_energy(
            config.n_rows, config.n_cols, config.horizon
        )

    def test_energy_symmetric_under_global_flip(self, config):
        spins = random_configuration(config, seed=1).spins
        assert lyapunov_energy(spins, 2) == lyapunov_energy(-spins, 2)

    def test_agreement_pairs_identity(self, config):
        spins = random_configuration(config, seed=2).spins
        energy = lyapunov_energy(spins, config.horizon)
        pairs = agreement_pairs(spins, config.horizon)
        assert energy == spins.size + 2 * pairs

    def test_field_matches_state(self, config):
        grid = random_configuration(config, seed=3)
        state = ModelState(config, grid)
        field = same_type_count_field(grid.spins, config.horizon)
        assert np.array_equal(field, state.same_type_counts())


class TestMonotonicityUnderDynamics:
    def test_energy_non_decreasing_over_full_run(self, config):
        state = ModelState(config, random_configuration(config, seed=4))
        energies = [state.energy()]
        dynamics = GlauberDynamics(state, seed=5)
        while not dynamics.is_terminated:
            if dynamics.step() is not None:
                energies.append(state.energy())
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_final_energy_not_less_than_initial(self, config):
        state = ModelState(config, random_configuration(config, seed=6))
        initial = state.energy()
        GlauberDynamics(state, seed=7).run()
        assert state.energy() >= initial
