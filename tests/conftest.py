"""Shared fixtures for the test suite.

The fixtures provide small, fast model configurations and deterministic
random generators so that every test runs in milliseconds and is reproducible
in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.initializer import random_configuration
from repro.core.state import ModelState


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> ModelConfig:
    """A small torus with horizon 1 (3x3 neighbourhoods)."""
    return ModelConfig.square(side=12, horizon=1, tau=0.4)


@pytest.fixture
def medium_config() -> ModelConfig:
    """A medium torus with horizon 2 (5x5 neighbourhoods), tau in Theorem 1 range."""
    return ModelConfig.square(side=30, horizon=2, tau=0.45)


@pytest.fixture
def small_grid(small_config, rng) -> TorusGrid:
    """A random configuration on the small torus."""
    return random_configuration(small_config, rng)


@pytest.fixture
def medium_grid(medium_config, rng) -> TorusGrid:
    """A random configuration on the medium torus."""
    return random_configuration(medium_config, rng)


@pytest.fixture
def medium_state(medium_config, medium_grid) -> ModelState:
    """A model state ready for dynamics tests."""
    return ModelState(medium_config, medium_grid)


def brute_force_window_sum(array: np.ndarray, row: int, col: int, radius: int) -> int:
    """Reference implementation of a wrapped window sum (used in several tests)."""
    n_rows, n_cols = array.shape
    total = 0
    for dr in range(-radius, radius + 1):
        for dc in range(-radius, radius + 1):
            total += int(array[(row + dr) % n_rows, (col + dc) % n_cols])
    return total
