"""Tests for the wall-clock timer."""

import time

import pytest

from repro.utils.timer import Timer


def test_elapsed_measures_time():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.elapsed >= 0.009


def test_elapsed_before_start_raises():
    timer = Timer()
    with pytest.raises(RuntimeError):
        _ = timer.elapsed


def test_elapsed_inside_block_is_running():
    with Timer() as timer:
        first = timer.elapsed
        time.sleep(0.005)
        second = timer.elapsed
    assert second > first


def test_elapsed_frozen_after_exit():
    with Timer() as timer:
        time.sleep(0.002)
    frozen = timer.elapsed
    time.sleep(0.005)
    assert timer.elapsed == frozen


def test_reusable():
    timer = Timer()
    with timer:
        time.sleep(0.002)
    first = timer.elapsed
    with timer:
        pass
    assert timer.elapsed <= first
