"""Determinism and equivalence tests for the parallel sweep runner."""

import json
import os
import pickle

import pytest

from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.experiments import shm
from repro.experiments.parallel import (
    SweepCellError,
    _run_chunk,
    default_chunk_size,
    default_worker_count,
    pack_rows,
    run_sweep_parallel,
    unpack_rows,
)
from repro.experiments.runner import run_experiment, run_sweep
from repro.experiments.spec import ExperimentSpec, SweepSpec

#: Timings differ between runs/engines by construction; everything else must
#: be byte-identical.
TIMING_COLUMNS = {"wall_clock_seconds"}


def comparable_rows(table):
    """The table's rows with the timing columns stripped."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in table.rows
    ]


@pytest.fixture
def small_sweep() -> SweepSpec:
    """A 2 x 2 x 2 sweep (taus x densities x replicates) of small cells."""
    base = ModelConfig.square(side=18, horizon=1, tau=0.4)
    return SweepSpec(
        name="parallel-unit",
        base_config=base,
        taus=[0.35, 0.45],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=13,
    )


class TestParallelDeterminism:
    def test_workers_1_and_4_produce_identical_tables(self, small_sweep):
        serial = run_sweep_parallel(small_sweep, workers=1)
        parallel = run_sweep_parallel(small_sweep, workers=4)
        assert len(serial) == 2 * 2 * 2
        assert comparable_rows(serial) == comparable_rows(parallel)

    def test_parallel_matches_serial_run_sweep(self, small_sweep):
        serial = run_sweep(small_sweep)
        parallel = run_sweep(small_sweep, workers=3)
        assert comparable_rows(serial) == comparable_rows(parallel)

    def test_chunk_size_does_not_change_rows(self, small_sweep):
        one = run_sweep_parallel(small_sweep, workers=2, chunk_size=1)
        three = run_sweep_parallel(small_sweep, workers=2, chunk_size=3)
        assert comparable_rows(one) == comparable_rows(three)

    def test_progress_fires_once_per_cell_in_cell_order(self, small_sweep):
        expected = [cell.name for cell in small_sweep.cells()]
        visited: list[str] = []
        run_sweep_parallel(
            small_sweep, workers=4, progress=lambda cell: visited.append(cell.name)
        )
        assert visited == expected


class TestEnsembleExecution:
    def test_ensemble_rows_match_scalar_rows(self):
        config = ModelConfig.square(side=18, horizon=1, tau=0.4)
        spec = ExperimentSpec(name="cell", config=config, n_replicates=5, seed=11)
        scalar = run_experiment(spec)
        batched = run_experiment(spec, ensemble_size=2)  # uneven batches: 2+2+1
        assert comparable_rows(scalar) == comparable_rows(batched)

    def test_parallel_ensemble_sweep_matches_serial(self, small_sweep):
        serial = run_sweep(small_sweep)
        combined = run_sweep(small_sweep, workers=2, ensemble_size=2)
        assert comparable_rows(serial) == comparable_rows(combined)


class TestValidationAndDefaults:
    def test_rejects_nonpositive_workers(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=0)

    def test_rejects_nonpositive_chunk_size(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=2, chunk_size=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(64, 2) == 8


class TestPackedRowTransfer:
    def test_pack_unpack_roundtrip(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        rows = [
            {"a": 1, "b": 2.5, "c": "x"},
            {"a": 3, "b": -1.0, "c": "y"},
        ]
        packed = pack_rows(rows)
        assert packed["keys"] == ["a", "b", "c"]
        assert unpack_rows(packed) == rows

    def test_empty_rows(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        assert unpack_rows(pack_rows([])) == []

    def test_non_uniform_rows_fall_back_verbatim(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        rows = [{"a": 1}, {"a": 2, "b": 3}]
        packed = pack_rows(rows)
        assert "rows" in packed
        assert unpack_rows(packed) == rows

    def test_packed_payload_carries_keys_once(self):
        key = "a_rather_long_metric_column_name"
        rows = [{key: index} for index in range(64)]
        packed_size = len(pickle.dumps(pack_rows(rows)))
        raw_size = len(pickle.dumps(rows))
        assert packed_size < raw_size / 2


class TestWorkerCount:
    """``default_worker_count`` must respect cgroup/affinity limits."""

    def test_uses_scheduler_affinity_when_available(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False)
        assert default_worker_count() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_worker_count() == 5

    def test_falls_back_to_cpu_count_on_os_error(self, monkeypatch):
        def unavailable(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", unavailable, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert default_worker_count() == 2

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_worker_count() == 1


def _poisoned_sweep(sweep: SweepSpec, poison_index: int):
    """The sweep's cells with one cell made to fail inside the runner.

    ``record_every=0`` passes the frozen spec through pickling untouched but
    raises ``StateError`` the moment the replicate's run starts — a genuine
    in-worker failure, not a construction-time one.
    """
    cells = list(sweep.cells())
    object.__setattr__(cells[poison_index], "record_every", 0)

    class _CellListSweep:
        def cells(self):
            return iter(cells)

    return _CellListSweep()


class TestWorkerFailure:
    def test_failure_names_cell_and_index(self, small_sweep):
        poisoned = _poisoned_sweep(small_sweep, poison_index=2)
        expected_name = list(small_sweep.cells())[2].name
        with pytest.raises(SweepCellError) as excinfo:
            run_sweep_parallel(poisoned, workers=2, chunk_size=1)
        assert excinfo.value.cell_index == 2
        assert excinfo.value.cell_name == expected_name
        assert expected_name in str(excinfo.value)
        assert "StateError" in str(excinfo.value)

    def test_failure_wrapped_on_inline_path_too(self, small_sweep):
        poisoned = _poisoned_sweep(small_sweep, poison_index=0)
        with pytest.raises(SweepCellError) as excinfo:
            run_sweep_parallel(poisoned, workers=1)
        assert excinfo.value.cell_index == 0

    def test_error_survives_pickling_with_identity(self):
        error = SweepCellError("cell 3 failed", cell_index=3, cell_name="cell-3")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SweepCellError)
        assert str(clone) == "cell 3 failed"
        assert clone.cell_index == 3
        assert clone.cell_name == "cell-3"

    def test_completed_prefix_is_checkpointed_before_reraise(
        self, small_sweep, tmp_path
    ):
        poisoned = _poisoned_sweep(small_sweep, poison_index=2)
        with pytest.raises(SweepCellError):
            run_sweep_parallel(
                poisoned, workers=2, chunk_size=1, checkpoint_dir=tmp_path
            )
        recorded = [
            json.loads(line)["cell_index"]
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert recorded == [0, 1]

    def test_crashed_sweep_resumes_into_identical_table(
        self, small_sweep, tmp_path
    ):
        poisoned = _poisoned_sweep(small_sweep, poison_index=2)
        with pytest.raises(SweepCellError):
            run_sweep_parallel(
                poisoned, workers=2, chunk_size=1, checkpoint_dir=tmp_path
            )
        resumed = run_sweep_parallel(
            small_sweep, workers=2, checkpoint_dir=tmp_path
        )
        assert comparable_rows(resumed) == comparable_rows(run_sweep(small_sweep))


class TestSharedMemoryCodec:
    def test_raw_column_tags(self):
        assert shm._raw_column_tag([True, False]) == "bool"
        assert shm._raw_column_tag([1, -2, 3]) == "int64"
        assert shm._raw_column_tag([0.5, -1.25]) == "float64"
        assert shm._raw_column_tag([1, 2.5]) is None  # mixed
        assert shm._raw_column_tag([True, 1]) is None  # bool is not int here
        assert shm._raw_column_tag(["a", "b"]) is None
        assert shm._raw_column_tag([2**63, 0]) is None  # overflows int64
        assert shm._raw_column_tag([]) is None

    @pytest.mark.skipif(not shm.shm_available(), reason="no usable shared memory")
    def test_roundtrip_preserves_values_and_types(self):
        rows = [
            {"name": "cell-a", "seed": 7, "rate": 0.1, "ok": True},
            {"name": "cell-b", "seed": -(2**40), "rate": -3.5, "ok": False},
        ]
        batches = [
            (4, pack_rows(rows)),
            (5, pack_rows([])),
            (6, {"rows": [{"a": 1}, {"b": 2}]}),  # non-uniform fallback
        ]
        name, size = shm.encode_chunk(batches)
        decoded = dict(shm.decode_chunk(name, size))
        out = unpack_rows(decoded[4])
        assert out == rows
        for row in out:
            assert type(row["seed"]) is int
            assert type(row["rate"]) is float
            assert type(row["ok"]) is bool
            assert type(row["name"]) is str
        assert unpack_rows(decoded[5]) == []
        assert unpack_rows(decoded[6]) == [{"a": 1}, {"b": 2}]

    @pytest.mark.skipif(not shm.shm_available(), reason="no usable shared memory")
    def test_worker_entry_point_uses_shared_memory(self, small_sweep):
        chunk = list(enumerate(small_sweep.cells()))[:1]
        payload = _run_chunk(chunk, None, transfer="shm")
        assert payload[0] == "shm"
        via_shm = dict(shm.decode_chunk(payload[1], payload[2]))
        via_pickle = dict(_run_chunk(chunk, None, transfer="pickle")[1])
        strip = lambda packed: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in unpack_rows(packed)
        ]
        assert strip(via_shm[0]) == strip(via_pickle[0])

    def test_discard_unknown_segment_is_silent(self):
        shm.discard_chunk("psm_no_such_segment_abcdef")


class TestTransferEquivalence:
    """Both transports (and auto) must produce bitwise-identical tables."""

    @pytest.mark.parametrize("transfer", ["shm", "pickle", "auto"])
    def test_transfer_matches_serial(self, small_sweep, transfer):
        serial = run_sweep(small_sweep)
        parallel = run_sweep_parallel(small_sweep, workers=2, transfer=transfer)
        assert comparable_rows(parallel) == comparable_rows(serial)

    def test_invalid_transfer_rejected(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=2, transfer="carrier-pigeon")
