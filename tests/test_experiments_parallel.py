"""Determinism and equivalence tests for the parallel sweep runner."""

import pytest

from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    default_chunk_size,
    default_worker_count,
    run_sweep_parallel,
)
from repro.experiments.runner import run_experiment, run_sweep
from repro.experiments.spec import ExperimentSpec, SweepSpec

#: Timings differ between runs/engines by construction; everything else must
#: be byte-identical.
TIMING_COLUMNS = {"wall_clock_seconds"}


def comparable_rows(table):
    """The table's rows with the timing columns stripped."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in table.rows
    ]


@pytest.fixture
def small_sweep() -> SweepSpec:
    """A 2 x 2 x 2 sweep (taus x densities x replicates) of small cells."""
    base = ModelConfig.square(side=18, horizon=1, tau=0.4)
    return SweepSpec(
        name="parallel-unit",
        base_config=base,
        taus=[0.35, 0.45],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=13,
    )


class TestParallelDeterminism:
    def test_workers_1_and_4_produce_identical_tables(self, small_sweep):
        serial = run_sweep_parallel(small_sweep, workers=1)
        parallel = run_sweep_parallel(small_sweep, workers=4)
        assert len(serial) == 2 * 2 * 2
        assert comparable_rows(serial) == comparable_rows(parallel)

    def test_parallel_matches_serial_run_sweep(self, small_sweep):
        serial = run_sweep(small_sweep)
        parallel = run_sweep(small_sweep, workers=3)
        assert comparable_rows(serial) == comparable_rows(parallel)

    def test_chunk_size_does_not_change_rows(self, small_sweep):
        one = run_sweep_parallel(small_sweep, workers=2, chunk_size=1)
        three = run_sweep_parallel(small_sweep, workers=2, chunk_size=3)
        assert comparable_rows(one) == comparable_rows(three)

    def test_progress_fires_once_per_cell_in_cell_order(self, small_sweep):
        expected = [cell.name for cell in small_sweep.cells()]
        visited: list[str] = []
        run_sweep_parallel(
            small_sweep, workers=4, progress=lambda cell: visited.append(cell.name)
        )
        assert visited == expected


class TestEnsembleExecution:
    def test_ensemble_rows_match_scalar_rows(self):
        config = ModelConfig.square(side=18, horizon=1, tau=0.4)
        spec = ExperimentSpec(name="cell", config=config, n_replicates=5, seed=11)
        scalar = run_experiment(spec)
        batched = run_experiment(spec, ensemble_size=2)  # uneven batches: 2+2+1
        assert comparable_rows(scalar) == comparable_rows(batched)

    def test_parallel_ensemble_sweep_matches_serial(self, small_sweep):
        serial = run_sweep(small_sweep)
        combined = run_sweep(small_sweep, workers=2, ensemble_size=2)
        assert comparable_rows(serial) == comparable_rows(combined)


class TestValidationAndDefaults:
    def test_rejects_nonpositive_workers(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=0)

    def test_rejects_nonpositive_chunk_size(self, small_sweep):
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=2, chunk_size=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(64, 2) == 8


class TestPackedRowTransfer:
    def test_pack_unpack_roundtrip(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        rows = [
            {"a": 1, "b": 2.5, "c": "x"},
            {"a": 3, "b": -1.0, "c": "y"},
        ]
        packed = pack_rows(rows)
        assert packed["keys"] == ["a", "b", "c"]
        assert unpack_rows(packed) == rows

    def test_empty_rows(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        assert unpack_rows(pack_rows([])) == []

    def test_non_uniform_rows_fall_back_verbatim(self):
        from repro.experiments.parallel import pack_rows, unpack_rows

        rows = [{"a": 1}, {"a": 2, "b": 3}]
        packed = pack_rows(rows)
        assert "rows" in packed
        assert unpack_rows(packed) == rows

    def test_packed_payload_carries_keys_once(self):
        import pickle

        from repro.experiments.parallel import pack_rows

        key = "a_rather_long_metric_column_name"
        rows = [{key: index} for index in range(64)]
        packed_size = len(pickle.dumps(pack_rows(rows)))
        raw_size = len(pickle.dumps(rows))
        assert packed_size < raw_size / 2
