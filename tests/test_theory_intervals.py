"""Tests for the Figure 2 regime classification."""

import pytest

from repro.errors import ConfigurationError
from repro.theory.intervals import (
    classify_regime,
    figure2_intervals,
    segregation_expected,
    static_expected,
)
from repro.theory.thresholds import tau1, tau2
from repro.types import Regime


class TestClassifyRegime:
    @pytest.mark.parametrize("tau", [0.0, 0.1, 0.24, 0.76, 0.9, 1.0])
    def test_static_regions(self, tau):
        assert classify_regime(tau) is Regime.STATIC

    @pytest.mark.parametrize("tau", [0.25, 0.30, 0.34, 0.70, 0.75])
    def test_unknown_regions(self, tau):
        assert classify_regime(tau) is Regime.UNKNOWN

    @pytest.mark.parametrize("tau", [0.35, 0.40, 0.43, 0.60, 0.62])
    def test_almost_monochromatic_regions(self, tau):
        assert classify_regime(tau) is Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC

    @pytest.mark.parametrize("tau", [0.44, 0.46, 0.49, 0.51, 0.56])
    def test_monochromatic_regions(self, tau):
        assert classify_regime(tau) is Regime.EXPONENTIAL_MONOCHROMATIC

    def test_half_is_balanced(self):
        assert classify_regime(0.5) is Regime.BALANCED

    def test_boundaries_follow_paper_inclusivity(self):
        # Theorem 2 covers (tau2, tau1]; Theorem 1 covers (tau1, 1/2).
        assert classify_regime(tau1()) is Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC
        assert classify_regime(tau1() + 1e-6) is Regime.EXPONENTIAL_MONOCHROMATIC
        assert classify_regime(tau2()) is Regime.UNKNOWN
        assert classify_regime(tau2() + 1e-6) is Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC

    def test_symmetry(self):
        for tau in (0.30, 0.36, 0.45, 0.49):
            assert classify_regime(tau) is classify_regime(1.0 - tau)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_regime(1.1)


class TestIntervals:
    def test_every_tau_is_covered_exactly_once(self):
        intervals = figure2_intervals()
        for tau in [i / 200 for i in range(201)]:
            hits = [interval for interval in intervals if interval.contains(tau)]
            assert len(hits) >= 1, f"tau={tau} uncovered"
            regimes = {interval.regime for interval in hits}
            assert len(regimes) == 1, f"tau={tau} has ambiguous regime {regimes}"

    def test_interval_descriptions(self):
        descriptions = [interval.describe() for interval in figure2_intervals()]
        assert any("Theorem 1" not in d and "static" in d for d in descriptions)
        assert all("->" in d for d in descriptions)

    def test_interval_sources_recorded(self):
        sources = {interval.source for interval in figure2_intervals()}
        assert "Theorem 1" in sources
        assert "Theorem 2" in sources


class TestPredicates:
    def test_segregation_expected(self):
        assert segregation_expected(0.45)
        assert segregation_expected(0.40)
        assert not segregation_expected(0.2)
        assert not segregation_expected(0.5)

    def test_static_expected(self):
        assert static_expected(0.1)
        assert static_expected(0.9)
        assert not static_expected(0.45)
