"""Tests for the binary entropy helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.theory.entropy import (
    binary_entropy,
    binary_entropy_complement,
    binomial_tail_exponent,
)


class TestBinaryEntropy:
    def test_endpoints_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_known_value(self):
        # H(1/4) = 2 - (3/4) log2 3
        assert binary_entropy(0.25) == pytest.approx(2.0 - 0.75 * np.log2(3.0))

    def test_symmetric(self):
        for x in (0.1, 0.3, 0.42):
            assert binary_entropy(x) == pytest.approx(binary_entropy(1.0 - x))

    def test_array_input(self):
        values = binary_entropy(np.array([0.0, 0.5, 1.0]))
        assert values.shape == (3,)
        assert values[1] == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            binary_entropy(1.5)
        with pytest.raises(ConfigurationError):
            binary_entropy(-0.1)

    def test_scalar_returns_float(self):
        assert isinstance(binary_entropy(0.3), float)

    @settings(max_examples=50, deadline=None)
    @given(x=st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_between_zero_and_one(self, x):
        value = binary_entropy(x)
        assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(x=st.floats(min_value=0.001, max_value=0.499))
    def test_strictly_increasing_below_half(self, x):
        assert binary_entropy(x) < binary_entropy(x + 0.0005)


class TestComplement:
    def test_complement_definition(self):
        for x in (0.0, 0.2, 0.5, 0.9):
            assert binary_entropy_complement(x) == pytest.approx(1.0 - binary_entropy(x))

    def test_zero_at_half(self):
        assert binary_entropy_complement(0.5) == pytest.approx(0.0)

    def test_one_at_endpoints(self):
        assert binary_entropy_complement(0.0) == pytest.approx(1.0)
        assert binary_entropy_complement(1.0) == pytest.approx(1.0)


class TestBinomialTailExponent:
    def test_equals_complement(self):
        assert binomial_tail_exponent(0.3) == pytest.approx(binary_entropy_complement(0.3))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            binomial_tail_exponent(1.2)

    def test_matches_actual_binomial_decay(self):
        # The exact tail P(Bin(N, 1/2) <= fN) should decay at roughly
        # 2^{-[1-H(f)]N}; compare log-probabilities at two sizes.
        from scipy import stats

        fraction = 0.35
        exponent = binomial_tail_exponent(fraction)
        for n in (200, 400):
            log_prob = stats.binom.logcdf(int(fraction * n), n, 0.5) / np.log(2.0)
            assert log_prob / n == pytest.approx(-exponent, abs=0.05)
