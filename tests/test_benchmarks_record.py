"""Tests for the benchmark record writer in ``benchmarks/_record.py``."""

import importlib.util
import json
from pathlib import Path

import pytest


@pytest.fixture
def record_module():
    """The ``benchmarks/_record.py`` module, loaded from its file path."""
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "_record.py"
    spec = importlib.util.spec_from_file_location("bench_record", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def results_dir(record_module, tmp_path, monkeypatch):
    """Redirect the module's results directory into the test's tmp dir."""
    monkeypatch.setattr(record_module, "RESULTS_DIR", tmp_path)
    return tmp_path


class TestRecordBenchmark:
    def test_writes_named_record(self, record_module, results_dir):
        path = record_module.record_benchmark(
            "unit_smoke",
            metrics={"speedup": 2.5},
            config={"side": 64},
            quick_mode=True,
        )
        assert path == results_dir / "BENCH_unit_smoke.json"
        record = json.loads(path.read_text())
        assert record["name"] == "unit_smoke"
        assert record["metrics"] == {"speedup": 2.5}
        assert record["config"] == {"side": 64}
        assert record["quick_mode"] is True
        assert record["python"] and record["numpy"]

    def test_no_temp_files_after_success(self, record_module, results_dir):
        record_module.record_benchmark("clean", metrics={}, quick_mode=True)
        assert [entry.name for entry in results_dir.iterdir()] == [
            "BENCH_clean.json"
        ]

    def test_failed_dump_unlinks_temp_file(
        self, record_module, results_dir, monkeypatch
    ):
        def exploding_dump(*args, **kwargs):
            raise ValueError("simulated serialization failure")

        monkeypatch.setattr(record_module.json, "dump", exploding_dump)
        with pytest.raises(ValueError):
            record_module.record_benchmark("torn", metrics={}, quick_mode=True)
        assert list(results_dir.iterdir()) == []  # no mkstemp leftovers

    def test_write_after_failure_still_succeeds(
        self, record_module, results_dir, monkeypatch
    ):
        real_dump = record_module.json.dump
        calls = {"n": 0}

        def flaky_dump(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("simulated full disk")
            return real_dump(*args, **kwargs)

        monkeypatch.setattr(record_module.json, "dump", flaky_dump)
        with pytest.raises(OSError):
            record_module.record_benchmark("retry", metrics={}, quick_mode=True)
        path = record_module.record_benchmark(
            "retry", metrics={"ok": 1}, quick_mode=True
        )
        record = json.loads(path.read_text())
        assert record["metrics"] == {"ok": 1}
        assert [entry.name for entry in results_dir.iterdir()] == [
            "BENCH_retry.json"
        ]
